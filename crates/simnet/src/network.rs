//! The discrete-event simulation kernel: event queue, address resolution,
//! link modelling and node lifecycle.

use crate::address::{SimAddress, TransportKind};
use crate::datagram::Datagram;
use crate::firewall::FirewallPolicy;
use crate::id::{NodeId, SubnetId, TimerToken};
use crate::link::{LinkSpec, LinkTable};
use crate::node::{Command, NodeConfig, NodeContext, SimNode};
use crate::stats::{DropReason, DropSummary, TrafficStats};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceBuffer, TraceEvent};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashSet};

/// Default upper bound on a single datagram's payload (1 MiB); JXTA messages
/// in the paper are ~2 KB, so this is generous while still catching runaway
/// serialisation bugs.
pub const DEFAULT_MAX_DATAGRAM: usize = 1 << 20;

/// The first host address the builder hands out (10.0.0.1). Hosts are
/// assigned sequentially from here, which is what lets the kernel resolve
/// a unicast address with an array index instead of a hash lookup.
const HOST_BASE: u32 = 0x0A00_0001;

#[derive(Debug)]
enum EventKind {
    Start {
        node: NodeId,
    },
    Deliver {
        dst: NodeId,
        datagram: Datagram,
    },
    Timer {
        node: NodeId,
        token: TimerToken,
        tag: u64,
    },
}

#[derive(Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct NodeSlot {
    node: Option<Box<dyn SimNode>>,
    subnet: SubnetId,
    firewall: FirewallPolicy,
    interfaces: Vec<SimAddress>,
    rx_overhead: SimDuration,
    tx_overhead: SimDuration,
    rng: StdRng,
    stats: TrafficStats,
    alive: bool,
}

/// Builds a [`Network`]: nodes, topology, link characteristics and tracing.
///
/// # Examples
///
/// ```
/// use simnet::{NetworkBuilder, NodeConfig, SimNode, NodeContext, Datagram, SubnetId};
///
/// struct Silent;
/// impl SimNode for Silent {
///     fn on_datagram(&mut self, _ctx: &mut NodeContext<'_>, _dg: Datagram) {}
///     fn as_any(&self) -> &dyn std::any::Any { self }
///     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
/// }
///
/// let mut builder = NetworkBuilder::new(42);
/// let a = builder.add_node(Box::new(Silent), NodeConfig::lan_peer(SubnetId(0)));
/// let mut net = builder.build();
/// net.run_until_idle();
/// assert!(net.is_alive(a));
/// ```
pub struct NetworkBuilder {
    seed: u64,
    links: LinkTable,
    trace_capacity: Option<usize>,
    max_datagram: usize,
    nodes: Vec<(Box<dyn SimNode>, NodeConfig)>,
}

impl NetworkBuilder {
    /// Creates a builder; `seed` drives every random decision of the run
    /// (loss, jitter, per-node RNGs), so equal seeds give equal runs.
    pub fn new(seed: u64) -> Self {
        NetworkBuilder {
            seed,
            links: LinkTable::new(LinkSpec::lan()),
            trace_capacity: None,
            max_datagram: DEFAULT_MAX_DATAGRAM,
            nodes: Vec::new(),
        }
    }

    /// Adds a node; returns the id it will have in the built network.
    pub fn add_node(&mut self, node: Box<dyn SimNode>, config: NodeConfig) -> NodeId {
        assert!(
            !config.transports.is_empty(),
            "a node needs at least one transport"
        );
        let id = NodeId::from_raw(self.nodes.len() as u32);
        self.nodes.push((node, config));
        id
    }

    /// Replaces the default link spec used between any pair of subnets
    /// without an explicit override.
    pub fn default_link(&mut self, spec: LinkSpec) -> &mut Self {
        self.links.set_default(spec);
        self
    }

    /// Sets the link spec between two subnets, both directions.
    pub fn link(&mut self, a: SubnetId, b: SubnetId, spec: LinkSpec) -> &mut Self {
        self.links.set_symmetric(a, b, spec);
        self
    }

    /// Enables tracing with the given record capacity.
    pub fn enable_trace(&mut self, capacity: usize) -> &mut Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Overrides the maximum accepted datagram payload size.
    pub fn max_datagram(&mut self, bytes: usize) -> &mut Self {
        self.max_datagram = bytes;
        self
    }

    /// Finalises the network. Every node's `on_start` is scheduled at time 0
    /// in node-id order.
    pub fn build(self) -> Network {
        let mut addr_table: Vec<Option<NodeId>> = Vec::with_capacity(self.nodes.len());
        let mut mcast_groups: BTreeMap<SubnetId, Vec<NodeId>> = BTreeMap::new();
        let mut slots = Vec::with_capacity(self.nodes.len());
        let mut next_host: u32 = HOST_BASE;
        for (idx, (node, config)) in self.nodes.into_iter().enumerate() {
            let host = next_host;
            next_host += 1;
            addr_table.push(Some(NodeId::from_raw(idx as u32)));
            let mut interfaces = Vec::new();
            for transport in &config.transports {
                let port = match transport {
                    TransportKind::Tcp => 9701,
                    TransportKind::Http => 9702,
                    TransportKind::Multicast => 0,
                    TransportKind::Bluetooth => 9703,
                };
                let addr = SimAddress::new(*transport, host, port);
                if *transport == TransportKind::Multicast {
                    mcast_groups
                        .entry(config.subnet)
                        .or_default()
                        .push(NodeId::from_raw(idx as u32));
                }
                interfaces.push(addr);
            }
            slots.push(NodeSlot {
                node: Some(node),
                subnet: config.subnet,
                firewall: config.firewall,
                interfaces,
                rx_overhead: config.rx_overhead,
                tx_overhead: config.tx_overhead,
                rng: StdRng::seed_from_u64(
                    self.seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(idx as u64),
                ),
                stats: TrafficStats::default(),
                alive: true,
            });
        }
        let mut network = Network {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            slots,
            addr_table,
            mcast_groups,
            mcast_scratch: Vec::new(),
            command_scratch: Vec::new(),
            events_processed: 0,
            links: self.links,
            cancelled_timers: HashSet::new(),
            next_timer: 0,
            master_rng: StdRng::seed_from_u64(self.seed),
            trace: match self.trace_capacity {
                Some(cap) => TraceBuffer::with_capacity(cap),
                None => TraceBuffer::disabled(),
            },
            drop_counts: [0; DropReason::ALL.len()],
            max_datagram: self.max_datagram,
            next_host,
            blocked_pairs: HashSet::new(),
        };
        for idx in 0..network.slots.len() {
            network.push_event(
                SimTime::ZERO,
                EventKind::Start {
                    node: NodeId::from_raw(idx as u32),
                },
            );
        }
        network
    }
}

/// The simulation kernel.
///
/// Owns the nodes, the virtual clock and the event queue. Drive it with
/// [`Network::run_until`], [`Network::run_for`] or [`Network::run_until_idle`],
/// and interact with node state through [`Network::invoke`] /
/// [`Network::node_ref`].
pub struct Network {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Scheduled>>,
    slots: Vec<NodeSlot>,
    /// Host-indexed address table: `addr_table[host - HOST_BASE]` names the
    /// node that currently owns that host (`None` after the host is
    /// abandoned by a re-assignment). Unicast resolution is an array index
    /// plus an interface check instead of a hash lookup per send.
    addr_table: Vec<Option<NodeId>>,
    /// Per-subnet multicast membership in node-id order, fixed at build time
    /// (a node's transports never change): a multicast send walks its own
    /// subnet's members instead of every slot in the network.
    mcast_groups: BTreeMap<SubnetId, Vec<NodeId>>,
    /// Reusable buffer for the alive-member subset of one multicast fan-out.
    mcast_scratch: Vec<NodeId>,
    /// Reusable command buffer handed to node handlers, so steady-state event
    /// processing allocates nothing per event.
    command_scratch: Vec<Command>,
    events_processed: u64,
    links: LinkTable,
    cancelled_timers: HashSet<TimerToken>,
    next_timer: u64,
    master_rng: StdRng,
    trace: TraceBuffer,
    /// Per-reason drop counters, indexed by [`DropReason::index`]. A dense
    /// array (not a hash map) so summary/export order never depends on
    /// insertion or hash order — see the determinism contract.
    drop_counts: [u64; DropReason::ALL.len()],
    max_datagram: usize,
    next_host: u32,
    blocked_pairs: HashSet<(NodeId, NodeId)>,
}

impl Network {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The number of nodes ever added (including shut-down ones).
    pub fn num_nodes(&self) -> usize {
        self.slots.len()
    }

    /// Events processed since construction (starts, deliveries, timer
    /// firings) — the numerator of the bench series' events/sec figure.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Whether a node is still running.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.slots.get(node.index()).is_some_and(|s| s.alive)
    }

    /// The node's current interface addresses.
    pub fn addresses_of(&self, node: NodeId) -> &[SimAddress] {
        &self.slots[node.index()].interfaces
    }

    /// The subnet a node lives in.
    pub fn subnet_of(&self, node: NodeId) -> SubnetId {
        self.slots[node.index()].subnet
    }

    /// Per-node traffic counters.
    pub fn stats_of(&self, node: NodeId) -> TrafficStats {
        self.slots[node.index()].stats
    }

    /// Network-wide traffic counters (sum over nodes).
    pub fn total_stats(&self) -> TrafficStats {
        let mut total = TrafficStats::default();
        for slot in &self.slots {
            total.merge(&slot.stats);
        }
        total
    }

    /// How many datagrams were dropped for `reason`.
    pub fn drops(&self, reason: DropReason) -> u64 {
        self.drop_counts[reason.index()]
    }

    /// Network-wide drop counts broken down by reason — lets fault tests
    /// assert on exact drop causes (`fault_injected`, `node_down`, ...)
    /// instead of aggregate loss. Iterates [`DropReason::ALL`], so the
    /// summary order is a constant of the enum, not of the run.
    pub fn drop_summary(&self) -> DropSummary {
        DropSummary::from_counts(
            DropReason::ALL
                .into_iter()
                .map(|reason| (reason, self.drops(reason))),
        )
    }

    /// Exports the kernel's aggregate counters into a metrics registry
    /// under `simnet.*`: total traffic, per-reason drops, queue depth,
    /// events processed and the live-node count. Deliberately allocates
    /// nothing per node (the live count is one branch-free scan) — this is
    /// the surface the flight recorder samples every cadence tick, and it
    /// must stay cheap at 100k-node scale.
    pub fn export_metrics_aggregate(&self, registry: &mut telemetry::MetricsRegistry) {
        let total = self.total_stats();
        registry.set_counter("simnet.datagrams_sent", total.datagrams_sent);
        registry.set_counter("simnet.datagrams_delivered", total.datagrams_delivered);
        registry.set_counter("simnet.datagrams_dropped", total.datagrams_dropped);
        registry.set_counter("simnet.bytes_sent", total.bytes_sent);
        registry.set_counter("simnet.timers_fired", total.timers_fired);
        registry.set_counter("simnet.events_processed", self.events_processed);
        registry.set_gauge("simnet.queue_len", self.queue.len() as i64);
        registry.set_gauge(
            "simnet.nodes_alive",
            self.slots.iter().filter(|s| s.alive).count() as i64,
        );
        for reason in DropReason::ALL {
            registry.set_counter(format!("simnet.drops.{}", reason.label()), self.drops(reason));
        }
    }

    /// Exports the kernel's counters into a metrics registry under
    /// `simnet.*`: the aggregate figures of
    /// [`Network::export_metrics_aggregate`] plus per-node
    /// sent/delivered/dropped/alive figures. O(nodes) — point-in-time
    /// reports only, never per recorder tick.
    pub fn export_metrics(&self, registry: &mut telemetry::MetricsRegistry) {
        self.export_metrics_aggregate(registry);
        for (index, slot) in self.slots.iter().enumerate() {
            let prefix = format!("simnet.node{index}");
            registry.set_counter(format!("{prefix}.sent"), slot.stats.datagrams_sent);
            registry.set_counter(format!("{prefix}.delivered"), slot.stats.datagrams_delivered);
            registry.set_counter(format!("{prefix}.dropped"), slot.stats.datagrams_dropped);
            registry.set_gauge(format!("{prefix}.alive"), i64::from(slot.alive));
        }
    }

    /// The trace buffer (empty unless tracing was enabled on the builder).
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Enables kernel tracing on an already-built network, replacing any
    /// previous buffer. Harnesses that only decide after construction whether
    /// a run is traced (e.g. an operator turning on forensics) use this
    /// instead of [`NetworkBuilder::enable_trace`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = TraceBuffer::with_capacity(capacity);
    }

    /// Mutable access to the link table, for scenarios that degrade or
    /// partition the network mid-run.
    pub fn links_mut(&mut self) -> &mut LinkTable {
        &mut self.links
    }

    /// Immutable access to the link table.
    pub fn links(&self) -> &LinkTable {
        &self.links
    }

    /// Shuts a node down: pending deliveries and timers addressed to it are
    /// discarded when they come up.
    pub fn shutdown_node(&mut self, node: NodeId) {
        if let Some(slot) = self.slots.get_mut(node.index()) {
            if slot.alive {
                slot.alive = false;
                self.trace.push(self.now, TraceEvent::NodeStopped { node });
            }
        }
    }

    /// Brings a previously shut-down node back: its `on_start` hook runs
    /// again at the current virtual instant (re-arming timers, re-announcing
    /// itself). The node keeps its addresses and in-memory state — this models
    /// a process that was paused/crashed and restarted on the same host, the
    /// churn scenario of the fault driver. Datagrams and timers that came up
    /// while it was down stay lost. No-op if the node is already alive.
    pub fn revive_node(&mut self, node: NodeId) {
        let slot = &mut self.slots[node.index()];
        if slot.alive {
            return;
        }
        slot.alive = true;
        self.push_event(self.now, EventKind::Start { node });
    }

    /// Blocks all unicast and multicast delivery from `a` to `b` and from `b`
    /// to `a` (an overlay-link cut, e.g. one rendezvous-to-rendezvous mesh
    /// link), counting the casualties as [`DropReason::FaultInjected`].
    pub fn block_pair(&mut self, a: NodeId, b: NodeId) {
        self.blocked_pairs.insert((a, b));
        self.blocked_pairs.insert((b, a));
    }

    /// Restores delivery between two nodes cut by [`Network::block_pair`].
    pub fn unblock_pair(&mut self, a: NodeId, b: NodeId) {
        self.blocked_pairs.remove(&(a, b));
        self.blocked_pairs.remove(&(b, a));
    }

    /// Whether traffic from `from` to `to` is currently fault-blocked.
    pub fn is_pair_blocked(&self, from: NodeId, to: NodeId) -> bool {
        self.blocked_pairs.contains(&(from, to))
    }

    /// Re-assigns fresh host addresses to all unicast interfaces of `node`,
    /// simulating a DHCP change / network move. Datagrams already in flight to
    /// the old addresses, and any future sends to them, are dropped with
    /// [`DropReason::UnknownAddress`]. Returns the new addresses.
    pub fn reassign_addresses(&mut self, node: NodeId) -> Vec<SimAddress> {
        let new_host = self.next_host;
        self.next_host += 1;
        let slot = &mut self.slots[node.index()];
        let mut changes = Vec::new();
        for addr in &mut slot.interfaces {
            if addr.transport == TransportKind::Multicast {
                continue;
            }
            let old = *addr;
            let new = SimAddress::new(old.transport, new_host, old.port);
            *addr = new;
            changes.push((old, new));
        }
        let new_addrs: Vec<SimAddress> = slot.interfaces.clone();
        // Tombstone the abandoned host and claim the fresh one in the table;
        // sends to the old addresses now miss and drop as `UnknownAddress`.
        if let Some(&(old, _)) = changes.first() {
            if let Some(entry) = self
                .addr_table
                .get_mut((old.host.wrapping_sub(HOST_BASE)) as usize)
            {
                *entry = None;
            }
        }
        let new_offset = (new_host - HOST_BASE) as usize;
        if self.addr_table.len() <= new_offset {
            self.addr_table.resize(new_offset + 1, None);
        }
        self.addr_table[new_offset] = Some(node);
        for (old, new) in changes {
            self.trace
                .push(self.now, TraceEvent::AddressChanged { node, old, new });
            self.dispatch_address_change(node, old, new);
        }
        new_addrs
    }

    /// Runs the event loop until the queue is empty or `horizon` is reached,
    /// whichever comes first. The clock ends at `min(horizon, last event)`.
    pub fn run_until(&mut self, horizon: SimTime) {
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > horizon {
                break;
            }
            self.step();
        }
        if self.now < horizon {
            self.now = horizon;
        }
    }

    /// Runs for `duration` of virtual time from the current instant.
    pub fn run_for(&mut self, duration: SimDuration) {
        let horizon = self.now + duration;
        self.run_until(horizon);
    }

    /// Runs until `horizon` like [`Network::run_until`], but pauses every
    /// `cadence` of virtual time to call `observe` with the network — the
    /// kernel-level hook a flight recorder samples from. The observer runs
    /// with the clock parked exactly on each cadence boundary (and once at
    /// `horizon` if it is not itself a boundary), so samples land on a
    /// deterministic grid regardless of event timing. A zero cadence
    /// degenerates to a plain `run_until` with one final observation.
    pub fn run_sampled(
        &mut self,
        horizon: SimTime,
        cadence: SimDuration,
        mut observe: impl FnMut(&mut Network),
    ) {
        if cadence.as_micros() == 0 {
            self.run_until(horizon);
            observe(self);
            return;
        }
        while self.now < horizon {
            let next = self.now.saturating_add(cadence).min(horizon);
            self.run_until(next);
            observe(self);
        }
    }

    /// Runs until no events remain. Returns the number of events processed.
    ///
    /// Protocol layers typically keep periodic timers alive forever, so most
    /// callers want [`Network::run_until`] instead; this is useful for small
    /// unit-test topologies.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut processed = 0;
        while self.step() {
            processed += 1;
        }
        processed
    }

    /// Processes a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(event.at >= self.now, "event queue went backwards");
        self.now = event.at;
        self.events_processed += 1;
        match event.kind {
            EventKind::Start { node } => self.handle_start(node),
            EventKind::Deliver { dst, datagram } => self.handle_deliver(dst, datagram),
            EventKind::Timer { node, token, tag } => self.handle_timer(node, token, tag),
        }
        true
    }

    /// Calls `f` with mutable access to the concrete node `T` and a fresh
    /// [`NodeContext`] at the current virtual time; commands queued by `f`
    /// (sends, timers) are applied as if a handler had run.
    ///
    /// This is how applications and test harnesses drive peers "from the
    /// outside" (e.g. a user clicking *publish*).
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist, has been shut down, or is not of
    /// type `T`.
    pub fn invoke<T: SimNode, R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut T, &mut NodeContext<'_>) -> R,
    ) -> R {
        let slot_alive = self.slots[node.index()].alive;
        assert!(slot_alive, "invoke on a node that has been shut down: {node}");
        let mut boxed = self.slots[node.index()]
            .node
            .take()
            .expect("node is re-entrantly borrowed");
        let scratch = std::mem::take(&mut self.command_scratch);
        let (result, commands, charged) = {
            let slot = &mut self.slots[node.index()];
            let mut ctx = NodeContext {
                node_id: node,
                now: self.now,
                subnet: slot.subnet,
                interfaces: &slot.interfaces,
                rng: &mut slot.rng,
                next_timer: &mut self.next_timer,
                charged: SimDuration::ZERO,
                commands: scratch,
            };
            let concrete = boxed
                .as_any_mut()
                .downcast_mut::<T>()
                .unwrap_or_else(|| panic!("node {node} is not of the requested concrete type"));
            let result = f(concrete, &mut ctx);
            (result, std::mem::take(&mut ctx.commands), ctx.charged)
        };
        self.slots[node.index()].node = Some(boxed);
        let _ = charged;
        self.apply_commands(node, commands);
        result
    }

    /// Immutable access to the concrete node type, for assertions.
    ///
    /// Returns `None` if the node is of a different type.
    pub fn node_ref<T: SimNode>(&self, node: NodeId) -> Option<&T> {
        self.slots[node.index()]
            .node
            .as_ref()
            .and_then(|n| n.as_any().downcast_ref::<T>())
    }

    /// Mutable access to the concrete node type **without** a context; the
    /// closure cannot send or set timers. Prefer [`Network::invoke`].
    pub fn node_mut<T: SimNode>(&mut self, node: NodeId) -> Option<&mut T> {
        self.slots[node.index()]
            .node
            .as_mut()
            .and_then(|n| n.as_any_mut().downcast_mut::<T>())
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            at,
            seq: self.seq,
            kind,
        }));
    }

    fn handle_start(&mut self, node: NodeId) {
        if !self.slots[node.index()].alive {
            return;
        }
        self.trace.push(self.now, TraceEvent::NodeStarted { node });
        let commands = self.run_handler(node, super::node::SimNode::on_start);
        self.apply_commands(node, commands);
    }

    fn handle_deliver(&mut self, dst: NodeId, datagram: Datagram) {
        let slot = &mut self.slots[dst.index()];
        if !slot.alive {
            // The target died while the datagram was in flight. Goes through
            // `record_drop` so the kernel trace can explain the casualty —
            // drop forensics must never see a silently vanished copy.
            self.record_drop(
                self.now,
                datagram.src_node,
                datagram.dst_addr,
                DropReason::NodeDown,
                Some(dst),
            );
            return;
        }
        slot.stats.datagrams_delivered += 1;
        slot.stats.bytes_delivered += datagram.payload.len() as u64;
        self.trace.push(
            self.now,
            TraceEvent::DatagramDelivered {
                from: datagram.src_node,
                to: dst,
                bytes: datagram.payload.len(),
            },
        );
        let commands = self.run_handler(dst, |n, ctx| n.on_datagram(ctx, datagram));
        self.apply_commands(dst, commands);
    }

    fn handle_timer(&mut self, node: NodeId, token: TimerToken, tag: u64) {
        if self.cancelled_timers.remove(&token) {
            return;
        }
        if !self.slots[node.index()].alive {
            return;
        }
        self.slots[node.index()].stats.timers_fired += 1;
        self.trace.push(self.now, TraceEvent::TimerFired { node, tag });
        let commands = self.run_handler(node, |n, ctx| n.on_timer(ctx, token, tag));
        self.apply_commands(node, commands);
    }

    fn dispatch_address_change(&mut self, node: NodeId, old: SimAddress, new: SimAddress) {
        let commands = self.run_handler(node, |n, ctx| n.on_address_changed(ctx, old, new));
        self.apply_commands(node, commands);
    }

    fn run_handler(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut dyn SimNode, &mut NodeContext<'_>),
    ) -> Vec<Command> {
        let mut boxed = self.slots[node.index()]
            .node
            .take()
            .expect("node is re-entrantly borrowed");
        let scratch = std::mem::take(&mut self.command_scratch);
        let commands = {
            let slot = &mut self.slots[node.index()];
            let mut ctx = NodeContext {
                node_id: node,
                now: self.now,
                subnet: slot.subnet,
                interfaces: &slot.interfaces,
                rng: &mut slot.rng,
                next_timer: &mut self.next_timer,
                charged: SimDuration::ZERO,
                commands: scratch,
            };
            f(boxed.as_mut(), &mut ctx);
            std::mem::take(&mut ctx.commands)
        };
        self.slots[node.index()].node = Some(boxed);
        commands
    }

    fn apply_commands(&mut self, node: NodeId, mut commands: Vec<Command>) {
        for command in commands.drain(..) {
            match command {
                Command::Send {
                    local_delay,
                    dst,
                    payload,
                } => {
                    self.process_send(node, local_delay, dst, payload);
                }
                Command::SetTimer { token, at, tag } => {
                    self.push_event(at.max(self.now), EventKind::Timer { node, token, tag });
                }
                Command::CancelTimer { token } => {
                    self.cancelled_timers.insert(token);
                }
                Command::Trace { text } => {
                    self.trace.push(self.now, TraceEvent::Annotation { node, text });
                }
                Command::Shutdown => {
                    self.shutdown_node(node);
                }
            }
        }
        // Hand the drained buffer back for the next handler. Nothing in the
        // command loop re-enters a node handler, so the scratch slot is free
        // by the time we get here.
        self.command_scratch = commands;
    }

    /// Resolves a unicast destination to the node that currently owns it: an
    /// array index by host offset, then an exact-interface check so stale
    /// ports/transports (and addresses abandoned by a re-assignment) still
    /// miss, exactly like the old exact-address map.
    fn lookup_unicast(&self, addr: SimAddress) -> Option<NodeId> {
        let offset = addr.host.checked_sub(HOST_BASE)? as usize;
        let node = (*self.addr_table.get(offset)?)?;
        let slot = &self.slots[node.index()];
        if slot.interfaces.contains(&addr) {
            Some(node)
        } else {
            None
        }
    }

    /// Records a drop stamped at `at` — the datagram's effective departure
    /// time for send-path drops (handler entry plus the sender's charged CPU
    /// time), or the delivery instant for in-flight casualties. Stamping at
    /// departure keeps kernel drop records joinable against span traces,
    /// whose timestamps are charge-inclusive.
    fn record_drop(
        &mut self,
        at: SimTime,
        from: NodeId,
        to_addr: SimAddress,
        reason: DropReason,
        dst: Option<NodeId>,
    ) {
        self.drop_counts[reason.index()] += 1;
        if let Some(dst) = dst {
            self.slots[dst.index()].stats.datagrams_dropped += 1;
        }
        self.trace.push(
            at,
            TraceEvent::DatagramDropped {
                from,
                to_addr,
                reason,
            },
        );
    }

    fn process_send(&mut self, from: NodeId, local_delay: SimDuration, dst: SimAddress, payload: Bytes) {
        // The effective departure instant: the sender's handler entry plus
        // the CPU time it had charged when it queued the send.
        let departed = self.now + local_delay;
        if payload.len() > self.max_datagram {
            // Oversized payloads are dropped loudly in traces *and* counted
            // under their own reason so `why_missing` can name the cause;
            // real UDP would fragment or fail silently here.
            self.record_drop(departed, from, dst, DropReason::OversizedPayload, None);
            return;
        }
        let src_subnet = self.slots[from.index()].subnet;
        let src_addr = self.slots[from.index()]
            .interfaces
            .iter()
            .copied()
            .find(|a| a.transport == dst.transport)
            .expect("send was validated against local interfaces");
        {
            let stats = &mut self.slots[from.index()].stats;
            stats.datagrams_sent += 1;
            stats.bytes_sent += payload.len() as u64;
        }
        self.trace.push(
            departed,
            TraceEvent::DatagramSent {
                from,
                to_addr: dst,
                bytes: payload.len(),
            },
        );

        if dst.is_multicast() {
            // Membership is precomputed per subnet (transports are fixed at
            // build time); only the liveness filter runs per send, into a
            // reused scratch buffer.
            let mut members = std::mem::take(&mut self.mcast_scratch);
            members.clear();
            if let Some(group) = self.mcast_groups.get(&src_subnet) {
                members.extend(
                    group
                        .iter()
                        .copied()
                        .filter(|&m| m != from && self.slots[m.index()].alive),
                );
            }
            if members.is_empty() {
                self.record_drop(departed, from, dst, DropReason::EmptyMulticastGroup, None);
            } else {
                for &member in &members {
                    self.deliver_one(from, src_addr, dst, member, local_delay, payload.clone());
                }
            }
            self.mcast_scratch = members;
            return;
        }

        let Some(target) = self.lookup_unicast(dst) else {
            self.record_drop(departed, from, dst, DropReason::UnknownAddress, None);
            return;
        };
        if !self.slots[target.index()].alive {
            self.record_drop(departed, from, dst, DropReason::NodeDown, Some(target));
            return;
        }
        // Bluetooth is short-range: only works within the same subnet.
        if dst.transport == TransportKind::Bluetooth && self.slots[target.index()].subnet != src_subnet {
            self.record_drop(departed, from, dst, DropReason::UnknownAddress, Some(target));
            return;
        }
        // Firewalls filter inbound point-to-point traffic from other subnets.
        if self.slots[target.index()].subnet != src_subnet
            && dst.transport.is_point_to_point()
            && !self.slots[target.index()].firewall.admits_inbound(dst.transport)
        {
            self.record_drop(departed, from, dst, DropReason::Firewall, Some(target));
            return;
        }
        self.deliver_one(from, src_addr, dst, target, local_delay, payload);
    }

    fn deliver_one(
        &mut self,
        from: NodeId,
        src_addr: SimAddress,
        dst_addr: SimAddress,
        target: NodeId,
        local_delay: SimDuration,
        payload: Bytes,
    ) {
        if self.blocked_pairs.contains(&(from, target)) {
            self.record_drop(
                self.now + local_delay,
                from,
                dst_addr,
                DropReason::FaultInjected,
                Some(target),
            );
            return;
        }
        let src_subnet = self.slots[from.index()].subnet;
        let dst_subnet = self.slots[target.index()].subnet;
        let spec = *self.links.spec(src_subnet, dst_subnet);
        if spec.loss_probability > 0.0 && self.master_rng.gen_bool(spec.loss_probability) {
            self.record_drop(
                self.now + local_delay,
                from,
                dst_addr,
                DropReason::RandomLoss,
                Some(target),
            );
            return;
        }
        let jitter = if spec.jitter == SimDuration::ZERO {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros(self.master_rng.gen_range(0..=spec.jitter.as_micros()))
        };
        let datagram = Datagram {
            src_node: from,
            src_addr,
            dst_addr,
            transport: dst_addr.transport,
            payload,
        };
        let delay = self.slots[from.index()].tx_overhead
            + local_delay
            + spec.latency
            + jitter
            + spec.transmission_delay(datagram.wire_size())
            + spec.transport_penalty(dst_addr.transport)
            + self.slots[target.index()].rx_overhead;
        let at = self.now + delay;
        self.push_event(
            at,
            EventKind::Deliver {
                dst: target,
                datagram,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A node that counts what it receives and can echo datagrams back.
    struct Echo {
        received: Vec<Vec<u8>>,
        echo: bool,
        timer_tags: Vec<u64>,
    }

    impl Echo {
        fn new(echo: bool) -> Self {
            Echo {
                received: Vec::new(),
                echo,
                timer_tags: Vec::new(),
            }
        }
    }

    impl SimNode for Echo {
        fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, dg: Datagram) {
            self.received.push(dg.payload.to_vec());
            if self.echo {
                let _ = ctx.send(dg.src_addr, dg.payload.clone());
            }
        }
        fn on_timer(&mut self, _ctx: &mut NodeContext<'_>, _token: TimerToken, tag: u64) {
            self.timer_tags.push(tag);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn two_node_net(echo: bool) -> (Network, NodeId, NodeId) {
        let mut builder = NetworkBuilder::new(7);
        builder.enable_trace(1024);
        let a = builder.add_node(Box::new(Echo::new(false)), NodeConfig::lan_peer(SubnetId(0)));
        let b = builder.add_node(Box::new(Echo::new(echo)), NodeConfig::lan_peer(SubnetId(0)));
        (builder.build(), a, b)
    }

    #[test]
    fn unicast_delivery_works() {
        let (mut net, a, b) = two_node_net(false);
        let dst = net
            .addresses_of(b)
            .iter()
            .copied()
            .find(|x| x.transport == TransportKind::Tcp)
            .unwrap();
        net.invoke::<Echo, _>(a, |_n, ctx| {
            ctx.send(dst, Bytes::from_static(b"ping")).unwrap();
        });
        net.run_until_idle();
        let echo = net.node_ref::<Echo>(b).unwrap();
        assert_eq!(echo.received, vec![b"ping".to_vec()]);
        assert_eq!(net.stats_of(a).datagrams_sent, 1);
        assert_eq!(net.stats_of(b).datagrams_delivered, 1);
        assert!(net.now() > SimTime::ZERO);
    }

    #[test]
    fn echo_round_trip() {
        let (mut net, a, b) = two_node_net(true);
        let dst = net.addresses_of(b)[0];
        net.invoke::<Echo, _>(a, |_n, ctx| {
            ctx.send(dst, Bytes::from_static(b"hello")).unwrap();
        });
        net.run_until_idle();
        assert_eq!(net.node_ref::<Echo>(a).unwrap().received.len(), 1);
        assert_eq!(net.node_ref::<Echo>(b).unwrap().received.len(), 1);
    }

    #[test]
    fn multicast_reaches_same_subnet_only() {
        let mut builder = NetworkBuilder::new(3);
        let a = builder.add_node(Box::new(Echo::new(false)), NodeConfig::lan_peer(SubnetId(0)));
        let b = builder.add_node(Box::new(Echo::new(false)), NodeConfig::lan_peer(SubnetId(0)));
        let c = builder.add_node(Box::new(Echo::new(false)), NodeConfig::lan_peer(SubnetId(1)));
        let mut net = builder.build();
        net.invoke::<Echo, _>(a, |_n, ctx| {
            ctx.send_multicast(Bytes::from_static(b"disco")).unwrap();
        });
        net.run_until_idle();
        assert_eq!(net.node_ref::<Echo>(b).unwrap().received.len(), 1);
        assert_eq!(net.node_ref::<Echo>(c).unwrap().received.len(), 0);
        let _ = a;
    }

    #[test]
    fn firewall_blocks_cross_subnet_tcp() {
        let mut builder = NetworkBuilder::new(3);
        let a = builder.add_node(Box::new(Echo::new(false)), NodeConfig::lan_peer(SubnetId(0)));
        let b = builder.add_node(
            Box::new(Echo::new(false)),
            NodeConfig::lan_peer(SubnetId(1)).with_firewall(FirewallPolicy::behind_firewall()),
        );
        let mut net = builder.build();
        let tcp = net
            .addresses_of(b)
            .iter()
            .copied()
            .find(|x| x.transport == TransportKind::Tcp)
            .unwrap();
        let http = net
            .addresses_of(b)
            .iter()
            .copied()
            .find(|x| x.transport == TransportKind::Http)
            .unwrap();
        net.invoke::<Echo, _>(a, |_n, ctx| {
            ctx.send(tcp, Bytes::from_static(b"blocked")).unwrap();
            ctx.send(http, Bytes::from_static(b"allowed")).unwrap();
        });
        net.run_until_idle();
        assert_eq!(
            net.node_ref::<Echo>(b).unwrap().received,
            vec![b"allowed".to_vec()]
        );
        assert_eq!(net.drops(DropReason::Firewall), 1);
    }

    #[test]
    fn run_sampled_parks_the_clock_on_the_cadence_grid() {
        let (mut net, a, b) = two_node_net(false);
        let dst = net.addresses_of(b)[0];
        net.invoke::<Echo, _>(a, |_n, ctx| {
            ctx.send(dst, Bytes::from_static(b"tick")).unwrap();
        });
        let mut observed = Vec::new();
        net.run_sampled(SimTime::from_millis(10), SimDuration::from_millis(3), |net| {
            observed.push(net.now().as_micros());
        });
        assert_eq!(
            observed,
            vec![3_000, 6_000, 9_000, 10_000],
            "every cadence boundary plus the horizon"
        );
        assert_eq!(net.now(), SimTime::from_millis(10));
        assert_eq!(net.node_ref::<Echo>(b).unwrap().received.len(), 1);
    }

    #[test]
    fn aggregate_metrics_skip_the_per_node_rows() {
        let (mut net, a, b) = two_node_net(false);
        let dst = net.addresses_of(b)[0];
        net.invoke::<Echo, _>(a, |_n, ctx| {
            ctx.send(dst, Bytes::from_static(b"count me")).unwrap();
        });
        net.run_until_idle();
        net.shutdown_node(b);

        let mut registry = telemetry::MetricsRegistry::new();
        net.export_metrics_aggregate(&mut registry);
        assert_eq!(registry.counter("simnet.datagrams_sent"), 1);
        assert_eq!(
            registry.counter("simnet.events_processed"),
            net.events_processed()
        );
        assert_eq!(registry.gauge("simnet.nodes_alive"), Some(1));
        assert!(
            registry.counters_with_prefix("simnet.node").is_empty(),
            "the recorder-facing export carries no per-node rows"
        );

        let mut full = telemetry::MetricsRegistry::new();
        net.export_metrics(&mut full);
        assert_eq!(full.counter("simnet.node0.sent"), 1);
        assert_eq!(
            full.counter("simnet.datagrams_sent"),
            1,
            "full export embeds the aggregate"
        );
    }

    #[test]
    fn stale_address_after_reassignment_is_dropped() {
        let (mut net, a, b) = two_node_net(false);
        let old = net.addresses_of(b)[0];
        let new_addrs = net.reassign_addresses(b);
        assert!(!new_addrs.contains(&old));
        net.invoke::<Echo, _>(a, |_n, ctx| {
            ctx.send(old, Bytes::from_static(b"stale")).unwrap();
        });
        net.run_until_idle();
        assert_eq!(net.node_ref::<Echo>(b).unwrap().received.len(), 0);
        assert_eq!(net.drops(DropReason::UnknownAddress), 1);

        // The new address works.
        let fresh = net.addresses_of(b)[0];
        net.invoke::<Echo, _>(a, |_n, ctx| {
            ctx.send(fresh, Bytes::from_static(b"fresh")).unwrap();
        });
        net.run_until_idle();
        assert_eq!(net.node_ref::<Echo>(b).unwrap().received.len(), 1);
    }

    #[test]
    fn oversized_payload_drop_is_counted_under_its_own_reason() {
        let mut builder = NetworkBuilder::new(5);
        builder.enable_trace(64);
        builder.max_datagram(8);
        let a = builder.add_node(Box::new(Echo::new(false)), NodeConfig::lan_peer(SubnetId(0)));
        let b = builder.add_node(Box::new(Echo::new(false)), NodeConfig::lan_peer(SubnetId(0)));
        let mut net = builder.build();
        let dst = net.addresses_of(b)[0];
        net.invoke::<Echo, _>(a, |_n, ctx| {
            ctx.send(dst, Bytes::from_static(b"way past the limit")).unwrap();
        });
        net.run_until_idle();
        assert_eq!(net.node_ref::<Echo>(b).unwrap().received.len(), 0);
        assert_eq!(net.drops(DropReason::OversizedPayload), 1);
        assert_eq!(net.drops(DropReason::UnknownAddress), 0, "must not masquerade");
        assert_eq!(net.drop_summary().to_string(), "oversized_payload=1");
        // The trace carries the same verdict for drop forensics.
        assert!(net.trace().records().any(|r| matches!(
            r.event,
            TraceEvent::DatagramDropped {
                reason: DropReason::OversizedPayload,
                ..
            }
        )));
        let _ = a;
    }

    #[test]
    fn events_processed_counts_every_step() {
        let (mut net, a, b) = two_node_net(true);
        let after_start = net.run_until_idle();
        assert_eq!(net.events_processed(), after_start);
        let dst = net.addresses_of(b)[0];
        net.invoke::<Echo, _>(a, |_n, ctx| {
            ctx.send(dst, Bytes::from_static(b"ping")).unwrap();
        });
        let more = net.run_until_idle();
        assert_eq!(more, 2, "echo round trip is two deliveries");
        assert_eq!(net.events_processed(), after_start + more);
    }

    #[test]
    fn multicast_skips_dead_members_and_detects_empty_groups() {
        let mut builder = NetworkBuilder::new(9);
        let a = builder.add_node(Box::new(Echo::new(false)), NodeConfig::lan_peer(SubnetId(0)));
        let b = builder.add_node(Box::new(Echo::new(false)), NodeConfig::lan_peer(SubnetId(0)));
        let c = builder.add_node(Box::new(Echo::new(false)), NodeConfig::lan_peer(SubnetId(0)));
        let mut net = builder.build();
        net.run_until_idle();
        net.shutdown_node(b);
        net.invoke::<Echo, _>(a, |_n, ctx| {
            ctx.send_multicast(Bytes::from_static(b"who's there")).unwrap();
        });
        net.run_until_idle();
        assert_eq!(net.node_ref::<Echo>(c).unwrap().received.len(), 1);
        assert_eq!(net.drops(DropReason::EmptyMulticastGroup), 0);
        net.shutdown_node(c);
        net.invoke::<Echo, _>(a, |_n, ctx| {
            ctx.send_multicast(Bytes::from_static(b"anyone")).unwrap();
        });
        net.run_until_idle();
        assert_eq!(net.drops(DropReason::EmptyMulticastGroup), 1);
    }

    #[test]
    fn timers_fire_and_cancel() {
        let (mut net, a, _b) = two_node_net(false);
        let token = net.invoke::<Echo, _>(a, |_n, ctx| {
            ctx.set_timer(SimDuration::from_millis(5), 1);
            ctx.set_timer(SimDuration::from_millis(10), 2)
        });
        net.invoke::<Echo, _>(a, |_n, ctx| ctx.cancel_timer(token));
        net.run_until_idle();
        assert_eq!(net.node_ref::<Echo>(a).unwrap().timer_tags, vec![1]);
    }

    #[test]
    fn shutdown_stops_delivery() {
        let (mut net, a, b) = two_node_net(false);
        let dst = net.addresses_of(b)[0];
        net.shutdown_node(b);
        net.invoke::<Echo, _>(a, |_n, ctx| {
            ctx.send(dst, Bytes::from_static(b"dead letter")).unwrap();
        });
        net.run_until_idle();
        assert!(!net.is_alive(b));
        assert_eq!(net.drops(DropReason::NodeDown), 1);
        let summary = net.drop_summary();
        assert_eq!(summary.of(DropReason::NodeDown), 1);
        assert_eq!(summary.total(), 1);
        assert_eq!(summary.to_string(), "node_down=1");
    }

    #[test]
    fn metrics_export_covers_traffic_drops_and_liveness() {
        let (mut net, a, b) = two_node_net(false);
        let dst = net.addresses_of(b)[0];
        net.invoke::<Echo, _>(a, |_n, ctx| {
            ctx.send(dst, Bytes::from_static(b"ping")).unwrap();
        });
        net.run_until_idle();
        net.shutdown_node(b);
        net.invoke::<Echo, _>(a, |_n, ctx| {
            ctx.send(dst, Bytes::from_static(b"lost")).unwrap();
        });
        net.run_until_idle();

        let mut registry = telemetry::MetricsRegistry::new();
        net.export_metrics(&mut registry);
        assert_eq!(registry.counter("simnet.datagrams_sent"), 2);
        assert_eq!(registry.counter("simnet.datagrams_delivered"), 1);
        assert_eq!(registry.counter("simnet.drops.node_down"), 1);
        assert_eq!(registry.counter("simnet.drops.fault_injected"), 0);
        assert_eq!(registry.counter("simnet.node0.sent"), 2);
        assert_eq!(registry.gauge("simnet.node0.alive"), Some(1));
        assert_eq!(registry.gauge("simnet.node1.alive"), Some(0));
        assert_eq!(registry.gauge("simnet.queue_len"), Some(0));
    }

    #[test]
    fn lossy_links_drop_some_datagrams() {
        let mut builder = NetworkBuilder::new(11);
        builder.default_link(LinkSpec::lan().with_loss(0.5));
        let a = builder.add_node(Box::new(Echo::new(false)), NodeConfig::lan_peer(SubnetId(0)));
        let b = builder.add_node(Box::new(Echo::new(false)), NodeConfig::lan_peer(SubnetId(0)));
        let mut net = builder.build();
        let dst = net.addresses_of(b)[0];
        for _ in 0..200 {
            net.invoke::<Echo, _>(a, |_n, ctx| {
                ctx.send(dst, Bytes::from_static(b"x")).unwrap();
            });
        }
        net.run_until_idle();
        let received = net.node_ref::<Echo>(b).unwrap().received.len();
        assert!(
            received > 50 && received < 150,
            "loss should be roughly half, got {received}"
        );
        assert_eq!(net.drops(DropReason::RandomLoss) as usize + received, 200);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = |seed: u64| -> (u64, u64) {
            let mut builder = NetworkBuilder::new(seed);
            builder.default_link(LinkSpec::lan().with_loss(0.3));
            let a = builder.add_node(Box::new(Echo::new(false)), NodeConfig::lan_peer(SubnetId(0)));
            let b = builder.add_node(Box::new(Echo::new(true)), NodeConfig::lan_peer(SubnetId(0)));
            let mut net = builder.build();
            let dst = net.addresses_of(b)[0];
            for _ in 0..50 {
                net.invoke::<Echo, _>(a, |_n, ctx| {
                    ctx.send(dst, Bytes::from_static(b"determinism")).unwrap();
                });
            }
            net.run_until_idle();
            (net.now().as_micros(), net.total_stats().datagrams_delivered)
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    #[test]
    fn run_until_advances_clock_to_horizon() {
        let (mut net, _a, _b) = two_node_net(false);
        net.run_until(SimTime::from_secs(5));
        assert_eq!(net.now(), SimTime::from_secs(5));
    }

    #[test]
    fn charge_delays_departure() {
        let (mut net, a, b) = two_node_net(false);
        let dst = net.addresses_of(b)[0];
        net.invoke::<Echo, _>(a, |_n, ctx| {
            ctx.charge(SimDuration::from_millis(500));
            ctx.send(dst, Bytes::from_static(b"late")).unwrap();
        });
        net.run_until_idle();
        assert!(net.now() >= SimTime::from_millis(500));
        assert_eq!(net.node_ref::<Echo>(b).unwrap().received.len(), 1);
    }
}
