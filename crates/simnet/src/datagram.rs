//! The unit of data exchanged between simulated nodes.

use crate::address::{SimAddress, TransportKind};
use crate::id::NodeId;
use bytes::Bytes;
use std::fmt;

/// A datagram as seen by the **receiving** node.
///
/// The payload is an opaque byte string; the JXTA layer encodes its
/// [`Message`](https://spec.jxta.org) framing inside it. `src_node` is the
/// *physical* origin — protocol layers must not rely on it for identity
/// (peers are identified by UUIDs carried inside the payload), but it is
/// invaluable for traces and tests.
#[derive(Debug, Clone)]
pub struct Datagram {
    /// The node the datagram physically originated from.
    pub src_node: NodeId,
    /// The source address the datagram was sent from.
    pub src_addr: SimAddress,
    /// The destination address the datagram was sent to (may be a multicast
    /// group address).
    pub dst_addr: SimAddress,
    /// The transport the datagram travelled over.
    pub transport: TransportKind,
    /// The opaque payload.
    pub payload: Bytes,
}

impl Datagram {
    /// Total size used for bandwidth accounting: payload plus a fixed
    /// per-datagram framing overhead (IP/TCP/HTTP headers).
    pub fn wire_size(&self) -> usize {
        self.payload.len() + Self::framing_overhead(self.transport)
    }

    /// The framing overhead charged for a given transport.
    pub fn framing_overhead(transport: TransportKind) -> usize {
        match transport {
            TransportKind::Tcp => 66,
            TransportKind::Http => 280,
            TransportKind::Multicast => 42,
            TransportKind::Bluetooth => 30,
        }
    }
}

impl fmt::Display for Datagram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} ({} bytes over {})",
            self.src_addr,
            self.dst_addr,
            self.payload.len(),
            self.transport
        )
    }
}

/// Reasons a send can be rejected synchronously by the kernel.
///
/// Asynchronous losses (random drops, firewalls, stale addresses) are *not*
/// reported to the sender — exactly like UDP or an unreliable JXTA pipe — so
/// upper layers must implement their own retries if they need reliability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError {
    /// The sending node has no interface bound to the requested transport.
    NoLocalInterface(TransportKind),
    /// The destination address is a multicast group but the transport is
    /// point-to-point, or vice versa.
    TransportMismatch,
    /// The payload exceeds the maximum datagram size accepted by the kernel.
    PayloadTooLarge { size: usize, limit: usize },
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::NoLocalInterface(t) => {
                write!(f, "node has no local interface for transport {t}")
            }
            SendError::TransportMismatch => f.write_str("address kind does not match transport"),
            SendError::PayloadTooLarge { size, limit } => {
                write!(
                    f,
                    "payload of {size} bytes exceeds the {limit} byte datagram limit"
                )
            }
        }
    }
}

impl std::error::Error for SendError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(transport: TransportKind) -> Datagram {
        Datagram {
            src_node: NodeId::from_raw(0),
            src_addr: SimAddress::new(transport, 1, 1),
            dst_addr: SimAddress::new(transport, 2, 2),
            transport,
            payload: Bytes::from_static(b"hello world"),
        }
    }

    #[test]
    fn wire_size_includes_framing() {
        let dg = sample(TransportKind::Tcp);
        assert_eq!(dg.wire_size(), 11 + 66);
        let dg = sample(TransportKind::Http);
        assert_eq!(dg.wire_size(), 11 + 280);
    }

    #[test]
    fn display_mentions_endpoints_and_size() {
        let dg = sample(TransportKind::Tcp);
        let s = dg.to_string();
        assert!(s.contains("11 bytes"));
        assert!(s.contains("tcp://"));
    }

    #[test]
    fn send_error_messages_are_meaningful() {
        let e = SendError::NoLocalInterface(TransportKind::Http);
        assert!(e.to_string().contains("http"));
        let e = SendError::PayloadTooLarge { size: 10, limit: 5 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("5"));
    }
}
