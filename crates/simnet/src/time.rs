//! Virtual time primitives for the discrete-event simulator.
//!
//! All simulation time is expressed in whole **microseconds** since the start
//! of the simulation. Using integers keeps every run bit-for-bit reproducible
//! (no floating-point drift) and makes ordering of simultaneous events
//! deterministic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the virtual clock, measured in microseconds since the start
/// of the simulation.
///
/// # Examples
///
/// ```
/// use simnet::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_micros(), 5_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, measured in microseconds.
///
/// # Examples
///
/// ```
/// use simnet::time::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros(), 2_500);
/// assert_eq!(d.as_millis_f64(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the virtual clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from a number of microseconds since the origin.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from a number of milliseconds since the origin.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from a number of seconds since the origin.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the origin, rounded down.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the origin as a floating point value.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since the origin as a floating point value.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from a floating point number of milliseconds,
    /// rounding to the nearest microsecond and clamping negatives to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        if ms <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((ms * 1_000.0).round() as u64)
        }
    }

    /// The duration in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in whole milliseconds, rounded down.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in milliseconds as a floating point value.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration in seconds as a floating point value.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating addition of two durations.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scales the duration by a floating point factor (clamped at zero).
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_millis_f64(self.as_millis_f64() * factor.max(0.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

/// Renders a microsecond count in the compact exact form used by fault
/// scripts: the coarsest of `s`/`ms`/`us` that loses nothing (`5s`,
/// `1500ms`, `250us`). [`parse_compact`] inverts it exactly.
pub(crate) fn format_compact(us: u64) -> String {
    if us.is_multiple_of(1_000_000) {
        format!("{}s", us / 1_000_000)
    } else if us.is_multiple_of(1_000) {
        format!("{}ms", us / 1_000)
    } else {
        format!("{us}us")
    }
}

/// Parses the compact form produced by [`format_compact`] back into
/// microseconds: a non-negative integer followed by `s`, `ms` or `us`.
pub(crate) fn parse_compact(text: &str) -> Result<u64, String> {
    let (digits, scale) = if let Some(d) = text.strip_suffix("ms") {
        (d, 1_000)
    } else if let Some(d) = text.strip_suffix("us") {
        (d, 1)
    } else if let Some(d) = text.strip_suffix('s') {
        (d, 1_000_000)
    } else {
        return Err(format!("time '{text}' needs an s/ms/us suffix"));
    };
    let value: u64 = digits
        .parse()
        .map_err(|_| format!("time '{text}' is not an integer count"))?;
    value
        .checked_mul(scale)
        .ok_or_else(|| format!("time '{text}' overflows the microsecond clock"))
}

impl SimTime {
    /// The compact exact rendering used by fault scripts (`5s`, `1500ms`,
    /// `250us`); the `FromStr` impl parses it back losslessly, which is
    /// what lets a minimized fault schedule be pasted into a test verbatim.
    pub fn to_compact_string(self) -> String {
        format_compact(self.0)
    }
}

impl SimDuration {
    /// The compact exact rendering used by fault scripts; see
    /// [`SimTime::to_compact_string`].
    pub fn to_compact_string(self) -> String {
        format_compact(self.0)
    }
}

impl std::str::FromStr for SimTime {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_compact(s).map(SimTime)
    }
}

impl std::str::FromStr for SimDuration {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_compact(s).map(SimDuration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_millis(10) + SimDuration::from_micros(250);
        assert_eq!(t.as_micros(), 10_250);
        assert_eq!(t.as_millis(), 10);
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_micros(250));
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(5);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(4));
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert!((SimDuration::from_micros(1_234_567).as_secs_f64() - 1.234567).abs() < 1e-9);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.saturating_mul(3), SimDuration::from_millis(30));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn compact_form_roundtrips_exactly() {
        for us in [0, 1, 250, 1_000, 1_500, 1_000_000, 90_000_000, 5_250_000] {
            let t = SimTime::from_micros(us);
            assert_eq!(t.to_compact_string().parse::<SimTime>(), Ok(t));
            let d = SimDuration::from_micros(us);
            assert_eq!(d.to_compact_string().parse::<SimDuration>(), Ok(d));
        }
        assert_eq!(SimTime::from_secs(5).to_compact_string(), "5s");
        assert_eq!(SimDuration::from_millis(1_500).to_compact_string(), "1500ms");
        assert_eq!(SimDuration::from_micros(250).to_compact_string(), "250us");
        assert!("5".parse::<SimDuration>().is_err(), "suffix is mandatory");
        assert!("x5s".parse::<SimTime>().is_err());
        assert!("-1s".parse::<SimDuration>().is_err());
    }

    #[test]
    fn display_formats_milliseconds() {
        assert_eq!(SimTime::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
    }

    #[test]
    fn ordering_is_by_instant() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }
}
