//! Firewall modelling.
//!
//! JXTA's Endpoint Routing Protocol exists chiefly because peers behind
//! firewalls cannot accept inbound TCP connections: they must be reached
//! through rendezvous/router peers over HTTP. The simulator models that with
//! a per-node [`FirewallPolicy`] evaluated on the *receiving* side of every
//! point-to-point datagram.

use crate::address::TransportKind;

/// Per-node firewall policy applied to inbound point-to-point traffic.
///
/// Broadcast transports (multicast, bluetooth) are confined to the local
/// subnet and are never filtered; this mirrors a typical corporate NAT/firewall
/// that breaks inbound TCP but leaves the LAN alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirewallPolicy {
    /// Whether inbound TCP connections are accepted.
    pub allow_inbound_tcp: bool,
    /// Whether inbound HTTP (long-poll style, as JXTA's HTTP transport uses)
    /// is accepted.
    pub allow_inbound_http: bool,
}

impl FirewallPolicy {
    /// A completely open node (the default).
    pub const fn open() -> Self {
        FirewallPolicy {
            allow_inbound_tcp: true,
            allow_inbound_http: true,
        }
    }

    /// A node behind a restrictive firewall: no inbound TCP, but HTTP polling
    /// still works (the classic JXTA "peer behind a firewall" scenario of the
    /// paper's Figure 6).
    pub const fn behind_firewall() -> Self {
        FirewallPolicy {
            allow_inbound_tcp: false,
            allow_inbound_http: true,
        }
    }

    /// A node that accepts no inbound point-to-point traffic at all; it can
    /// only be reached via relaying on its own subnet.
    pub const fn sealed() -> Self {
        FirewallPolicy {
            allow_inbound_tcp: false,
            allow_inbound_http: false,
        }
    }

    /// Whether an inbound datagram on `transport` is admitted.
    pub fn admits_inbound(&self, transport: TransportKind) -> bool {
        match transport {
            TransportKind::Tcp => self.allow_inbound_tcp,
            TransportKind::Http => self.allow_inbound_http,
            TransportKind::Multicast | TransportKind::Bluetooth => true,
        }
    }

    /// Whether the node is reachable by at least one point-to-point transport.
    pub fn reachable_point_to_point(&self) -> bool {
        self.allow_inbound_tcp || self.allow_inbound_http
    }
}

impl Default for FirewallPolicy {
    fn default() -> Self {
        FirewallPolicy::open()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_admits_everything() {
        let fw = FirewallPolicy::open();
        for t in TransportKind::ALL {
            assert!(fw.admits_inbound(t));
        }
    }

    #[test]
    fn firewalled_blocks_tcp_but_not_http() {
        let fw = FirewallPolicy::behind_firewall();
        assert!(!fw.admits_inbound(TransportKind::Tcp));
        assert!(fw.admits_inbound(TransportKind::Http));
        assert!(fw.admits_inbound(TransportKind::Multicast));
        assert!(fw.reachable_point_to_point());
    }

    #[test]
    fn sealed_blocks_all_point_to_point() {
        let fw = FirewallPolicy::sealed();
        assert!(!fw.admits_inbound(TransportKind::Tcp));
        assert!(!fw.admits_inbound(TransportKind::Http));
        assert!(fw.admits_inbound(TransportKind::Bluetooth));
        assert!(!fw.reachable_point_to_point());
    }
}
