//! Link characteristics: latency, jitter, bandwidth and loss.
//!
//! The paper's testbed was a 100 Mbit/s FastEthernet LAN running a notoriously
//! slow and unreliable JXTA 1.0 stack; the defaults below are calibrated so
//! that the reproduced figures land in the same order of magnitude (hundreds
//! of milliseconds per message, ~20-30% standard deviation, occasional loss).

use crate::address::TransportKind;
use crate::id::SubnetId;
use crate::time::SimDuration;
use std::collections::HashMap;

/// Propagation and reliability characteristics of one directed subnet pair.
///
/// `Copy` on purpose: the kernel reads a spec per delivery, and a 100k-member
/// fan-out must not allocate per member just to look at link parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Fixed one-way propagation delay.
    pub latency: SimDuration,
    /// Maximum extra random delay added on top of `latency` (uniform).
    pub jitter: SimDuration,
    /// Link bandwidth in bytes per second; `0` means "infinite".
    pub bandwidth_bytes_per_sec: u64,
    /// Probability in `[0.0, 1.0]` that a datagram is silently dropped.
    pub loss_probability: f64,
}

impl LinkSpec {
    /// A perfect link: zero latency, infinite bandwidth, no loss.
    ///
    /// Useful in unit tests where timing is irrelevant.
    pub fn perfect() -> Self {
        LinkSpec {
            latency: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            bandwidth_bytes_per_sec: 0,
            loss_probability: 0.0,
        }
    }

    /// A local-area link comparable to the paper's FastEthernet segment.
    pub fn lan() -> Self {
        LinkSpec {
            latency: SimDuration::from_micros(300),
            jitter: SimDuration::from_micros(200),
            bandwidth_bytes_per_sec: 12_500_000, // 100 Mbit/s
            loss_probability: 0.0,
        }
    }

    /// A wide-area link between subnets (DSL-era WAN path).
    pub fn wan() -> Self {
        LinkSpec {
            latency: SimDuration::from_millis(40),
            jitter: SimDuration::from_millis(15),
            bandwidth_bytes_per_sec: 125_000, // 1 Mbit/s
            loss_probability: 0.01,
        }
    }

    /// A lossy link, useful for failure-injection tests.
    pub fn lossy(loss_probability: f64) -> Self {
        LinkSpec {
            loss_probability: loss_probability.clamp(0.0, 1.0),
            ..LinkSpec::lan()
        }
    }

    /// Sets the fixed latency, returning the modified spec (builder style).
    pub fn with_latency(mut self, latency: SimDuration) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the jitter bound, returning the modified spec.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the loss probability (clamped to `[0, 1]`), returning the spec.
    pub fn with_loss(mut self, loss_probability: f64) -> Self {
        self.loss_probability = loss_probability.clamp(0.0, 1.0);
        self
    }

    /// Sets the bandwidth in bytes per second (`0` = infinite).
    pub fn with_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.bandwidth_bytes_per_sec = bytes_per_sec;
        self
    }

    /// The serialisation ("transmission") delay of `size` bytes on this link.
    pub fn transmission_delay(&self, size_bytes: usize) -> SimDuration {
        if self.bandwidth_bytes_per_sec == 0 {
            return SimDuration::ZERO;
        }
        let micros = (size_bytes as u128 * 1_000_000u128) / self.bandwidth_bytes_per_sec as u128;
        SimDuration::from_micros(micros as u64)
    }

    /// The extra penalty a transport adds on this link (HTTP relaying is
    /// slower than raw TCP, multicast/bluetooth are LAN technologies).
    pub fn transport_penalty(&self, transport: TransportKind) -> SimDuration {
        match transport {
            TransportKind::Tcp => SimDuration::ZERO,
            TransportKind::Http => SimDuration::from_millis(4),
            TransportKind::Multicast => SimDuration::from_micros(100),
            TransportKind::Bluetooth => SimDuration::from_millis(10),
        }
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec::lan()
    }
}

/// The script form of a link spec, as used by `ChurnDriver` fault scripts:
/// `latency=300us jitter=200us bandwidth=12500000 loss=0.25`. All four
/// fields are always printed; the `FromStr` impl parses the same shape
/// back exactly (`f64`'s shortest-round-trip `Display` keeps the loss
/// probability lossless).
impl std::fmt::Display for LinkSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "latency={} jitter={} bandwidth={} loss={}",
            self.latency.to_compact_string(),
            self.jitter.to_compact_string(),
            self.bandwidth_bytes_per_sec,
            self.loss_probability
        )
    }
}

impl std::str::FromStr for LinkSpec {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut spec = LinkSpec::perfect();
        let mut seen = [false; 4];
        for field in s.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("link field '{field}' is not key=value"))?;
            match key {
                "latency" => {
                    spec.latency = value.parse()?;
                    seen[0] = true;
                }
                "jitter" => {
                    spec.jitter = value.parse()?;
                    seen[1] = true;
                }
                "bandwidth" => {
                    spec.bandwidth_bytes_per_sec =
                        value.parse().map_err(|_| format!("bad bandwidth '{value}'"))?;
                    seen[2] = true;
                }
                "loss" => {
                    spec.loss_probability = value.parse().map_err(|_| format!("bad loss '{value}'"))?;
                    if !(0.0..=1.0).contains(&spec.loss_probability) {
                        return Err(format!("loss '{value}' outside [0, 1]"));
                    }
                    seen[3] = true;
                }
                other => return Err(format!("unknown link field '{other}'")),
            }
        }
        if seen.iter().all(|&s| s) {
            Ok(spec)
        } else {
            Err(format!(
                "link spec '{s}' must name latency, jitter, bandwidth and loss"
            ))
        }
    }
}

/// A table of link specs keyed by directed subnet pair, with a default used
/// for pairs that have no explicit entry.
#[derive(Debug, Clone, Default)]
pub struct LinkTable {
    default: LinkSpec,
    overrides: HashMap<(SubnetId, SubnetId), LinkSpec>,
}

impl LinkTable {
    /// Creates a table whose default link is `default`.
    pub fn new(default: LinkSpec) -> Self {
        LinkTable {
            default,
            overrides: HashMap::new(),
        }
    }

    /// Sets the link spec between two subnets in **both** directions.
    pub fn set_symmetric(&mut self, a: SubnetId, b: SubnetId, spec: LinkSpec) {
        self.overrides.insert((a, b), spec);
        self.overrides.insert((b, a), spec);
    }

    /// Sets the link spec for a single direction.
    pub fn set_directed(&mut self, from: SubnetId, to: SubnetId, spec: LinkSpec) {
        self.overrides.insert((from, to), spec);
    }

    /// The spec that governs traffic from `from` to `to`.
    pub fn spec(&self, from: SubnetId, to: SubnetId) -> &LinkSpec {
        self.overrides.get(&(from, to)).unwrap_or(&self.default)
    }

    /// The default link spec.
    pub fn default_spec(&self) -> &LinkSpec {
        &self.default
    }

    /// Replaces the default link spec.
    pub fn set_default(&mut self, spec: LinkSpec) {
        self.default = spec;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_delay_scales_with_size() {
        let spec = LinkSpec::perfect().with_bandwidth(1_000_000); // 1 MB/s
        assert_eq!(spec.transmission_delay(1_000_000), SimDuration::from_secs(1));
        assert_eq!(spec.transmission_delay(0), SimDuration::ZERO);
        let infinite = LinkSpec::perfect();
        assert_eq!(infinite.transmission_delay(10_000_000), SimDuration::ZERO);
    }

    #[test]
    fn loss_probability_is_clamped() {
        assert_eq!(LinkSpec::lossy(2.0).loss_probability, 1.0);
        assert_eq!(LinkSpec::lossy(-1.0).loss_probability, 0.0);
        assert_eq!(LinkSpec::lan().with_loss(0.5).loss_probability, 0.5);
    }

    #[test]
    fn link_table_uses_overrides_then_default() {
        let mut table = LinkTable::new(LinkSpec::lan());
        let a = SubnetId(0);
        let b = SubnetId(1);
        table.set_symmetric(a, b, LinkSpec::wan());
        assert_eq!(table.spec(a, b), &LinkSpec::wan());
        assert_eq!(table.spec(b, a), &LinkSpec::wan());
        assert_eq!(table.spec(a, a), &LinkSpec::lan());

        table.set_directed(a, a, LinkSpec::perfect());
        assert_eq!(table.spec(a, a), &LinkSpec::perfect());
    }

    #[test]
    fn link_spec_script_form_roundtrips() {
        for spec in [
            LinkSpec::perfect(),
            LinkSpec::lan(),
            LinkSpec::wan(),
            LinkSpec::lossy(0.25),
            LinkSpec::lan().with_loss(1.0 / 3.0), // not representable in decimal
        ] {
            assert_eq!(spec.to_string().parse::<LinkSpec>().as_ref(), Ok(&spec));
        }
        assert_eq!(
            LinkSpec::lan().with_loss(0.25).to_string(),
            "latency=300us jitter=200us bandwidth=12500000 loss=0.25"
        );
        assert!("latency=1s".parse::<LinkSpec>().is_err(), "all fields required");
        assert!("latency=1s jitter=0s bandwidth=0 loss=7"
            .parse::<LinkSpec>()
            .is_err());
        assert!("latency=1s jitter=0s bandwidth=0 loss=0 x=1"
            .parse::<LinkSpec>()
            .is_err());
    }

    #[test]
    fn http_costs_more_than_tcp() {
        let spec = LinkSpec::lan();
        assert!(spec.transport_penalty(TransportKind::Http) > spec.transport_penalty(TransportKind::Tcp));
    }
}
