//! Deterministic fault and churn injection.
//!
//! A [`ChurnDriver`] is a time-ordered script of [`FaultAction`]s — kill or
//! revive a node, cut or restore an overlay link between two nodes, degrade a
//! subnet link — executed against a [`Network`] *under the discrete-event
//! clock*: [`ChurnDriver::run_until`] advances the simulation exactly to each
//! action's instant, applies it, and continues, so a given script plus a given
//! seed always reproduces the same run, byte for byte.
//!
//! This is the machinery behind the dissemination-layer churn tests: killing
//! one of N rendezvous peers mid-run must lose only that shard's in-flight
//! events, and reviving it must restore delivery.
//!
//! # Example
//!
//! ```
//! use simnet::{ChurnDriver, SimTime};
//! # use simnet::{NetworkBuilder, NodeConfig, SimNode, NodeContext, Datagram, SubnetId};
//! # struct Silent;
//! # impl SimNode for Silent {
//! #     fn on_datagram(&mut self, _ctx: &mut NodeContext<'_>, _dg: Datagram) {}
//! #     fn as_any(&self) -> &dyn std::any::Any { self }
//! #     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! # }
//! # let mut builder = NetworkBuilder::new(1);
//! # let a = builder.add_node(Box::new(Silent), NodeConfig::lan_peer(SubnetId(0)));
//! # let mut net = builder.build();
//! let mut churn = ChurnDriver::new();
//! churn.kill_at(SimTime::from_secs(10), a);
//! churn.revive_at(SimTime::from_secs(20), a);
//! churn.run_until(&mut net, SimTime::from_secs(30));
//! assert!(net.is_alive(a));
//! ```

use crate::id::{NodeId, SubnetId};
use crate::link::LinkSpec;
use crate::network::Network;
use crate::time::SimTime;
use std::fmt;
use std::str::FromStr;

/// One scripted fault event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Shut the node down ([`Network::shutdown_node`]); in-flight datagrams
    /// and timers addressed to it are lost.
    Kill(NodeId),
    /// Bring a killed node back ([`Network::revive_node`]): `on_start` runs
    /// again at the scripted instant, with in-memory state intact.
    Revive(NodeId),
    /// Cut all delivery between two nodes ([`Network::block_pair`]) — an
    /// overlay-link failure such as one rendezvous-to-rendezvous mesh link.
    CutLink(NodeId, NodeId),
    /// Restore a cut pair ([`Network::unblock_pair`]).
    RestoreLink(NodeId, NodeId),
    /// Replace the link spec between two subnets, both directions (partition,
    /// lossy period, WAN degradation).
    SetLink(SubnetId, SubnetId, LinkSpec),
}

/// A time-ordered fault script, applied deterministically while driving the
/// simulation clock. Actions scheduled at the same instant run in insertion
/// order.
#[derive(Debug, Clone, Default)]
pub struct ChurnDriver {
    /// `(when, action)` pairs; kept sorted by time (stable for ties).
    script: Vec<(SimTime, FaultAction)>,
    /// Index of the next unapplied action.
    next: usize,
}

impl ChurnDriver {
    /// Creates an empty script.
    pub fn new() -> Self {
        ChurnDriver::default()
    }

    /// Schedules an arbitrary action; keeps the script time-sorted (actions
    /// at equal times keep their insertion order). The script may keep
    /// growing between [`ChurnDriver::run_until`] segments, as long as new
    /// actions are not scheduled before ones already applied.
    pub fn at(&mut self, when: SimTime, action: FaultAction) -> &mut Self {
        let pos = self.script.partition_point(|(t, _)| *t <= when);
        assert!(
            pos >= self.next,
            "cannot schedule an action before already-applied script entries"
        );
        self.script.insert(pos, (when, action));
        self
    }

    /// Schedules a node kill.
    pub fn kill_at(&mut self, when: SimTime, node: NodeId) -> &mut Self {
        self.at(when, FaultAction::Kill(node))
    }

    /// Schedules a node revival.
    pub fn revive_at(&mut self, when: SimTime, node: NodeId) -> &mut Self {
        self.at(when, FaultAction::Revive(node))
    }

    /// Schedules an overlay-link cut between two nodes.
    pub fn cut_link_at(&mut self, when: SimTime, a: NodeId, b: NodeId) -> &mut Self {
        self.at(when, FaultAction::CutLink(a, b))
    }

    /// Schedules the restoration of a cut overlay link.
    pub fn restore_link_at(&mut self, when: SimTime, a: NodeId, b: NodeId) -> &mut Self {
        self.at(when, FaultAction::RestoreLink(a, b))
    }

    /// How many scripted actions have not been applied yet.
    pub fn pending(&self) -> usize {
        self.script.len() - self.next
    }

    /// Drives `net` to `horizon`, applying every scripted action at exactly
    /// its instant: the event loop runs up to the action time, the action is
    /// applied, and the run continues. Actions scheduled beyond `horizon`
    /// stay pending for the next call, so a test can interleave its own
    /// publishes between `run_until` segments.
    pub fn run_until(&mut self, net: &mut Network, horizon: SimTime) {
        while self.next < self.script.len() {
            let (when, action) = self.script[self.next];
            if when > horizon {
                break;
            }
            net.run_until(when);
            Self::apply(net, &action);
            self.next += 1;
        }
        net.run_until(horizon);
    }

    fn apply(net: &mut Network, action: &FaultAction) {
        match action {
            FaultAction::Kill(node) => net.shutdown_node(*node),
            FaultAction::Revive(node) => net.revive_node(*node),
            FaultAction::CutLink(a, b) => net.block_pair(*a, *b),
            FaultAction::RestoreLink(a, b) => net.unblock_pair(*a, *b),
            FaultAction::SetLink(a, b, spec) => net.links_mut().set_symmetric(*a, *b, *spec),
        }
    }

    /// The full script — applied and pending entries alike, in time order.
    pub fn script(&self) -> &[(SimTime, FaultAction)] {
        &self.script
    }
}

/// One script line: `kill node-3`, `revive node-3`, `cut node-1 node-2`,
/// `restore node-1 node-2`, or
/// `link subnet-0 subnet-1 latency=300us jitter=200us bandwidth=12500000 loss=0.25`.
/// the `FromStr` impl parses exactly this shape back, so a churn
/// script printed from a run can be pasted verbatim into a regression test.
impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::Kill(node) => write!(f, "kill {node}"),
            FaultAction::Revive(node) => write!(f, "revive {node}"),
            FaultAction::CutLink(a, b) => write!(f, "cut {a} {b}"),
            FaultAction::RestoreLink(a, b) => write!(f, "restore {a} {b}"),
            FaultAction::SetLink(a, b, spec) => write!(f, "link {a} {b} {spec}"),
        }
    }
}

fn parse_node(token: &str) -> Result<NodeId, String> {
    token
        .strip_prefix("node-")
        .and_then(|raw| raw.parse().ok())
        .map(NodeId::from_raw)
        .ok_or_else(|| format!("'{token}' is not a node-<index> reference"))
}

fn parse_subnet(token: &str) -> Result<SubnetId, String> {
    token
        .strip_prefix("subnet-")
        .and_then(|raw| raw.parse().ok())
        .map(SubnetId)
        .ok_or_else(|| format!("'{token}' is not a subnet-<index> reference"))
}

impl FromStr for FaultAction {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut words = s.split_whitespace();
        let verb = words.next().ok_or("empty fault action")?;
        let mut next = |what: &str| {
            words
                .next()
                .ok_or_else(|| format!("'{verb}' is missing its {what}"))
                .map(str::to_owned)
        };
        let action = match verb {
            "kill" => FaultAction::Kill(parse_node(&next("target node")?)?),
            "revive" => FaultAction::Revive(parse_node(&next("target node")?)?),
            "cut" => FaultAction::CutLink(
                parse_node(&next("first node")?)?,
                parse_node(&next("second node")?)?,
            ),
            "restore" => FaultAction::RestoreLink(
                parse_node(&next("first node")?)?,
                parse_node(&next("second node")?)?,
            ),
            "link" => {
                let a = parse_subnet(&next("first subnet")?)?;
                let b = parse_subnet(&next("second subnet")?)?;
                let spec: LinkSpec = words.collect::<Vec<_>>().join(" ").parse()?;
                return Ok(FaultAction::SetLink(a, b, spec));
            }
            other => return Err(format!("unknown fault verb '{other}'")),
        };
        match words.next() {
            Some(extra) => Err(format!("trailing token '{extra}' after '{verb}'")),
            None => Ok(action),
        }
    }
}

/// The whole script, one action per line: `at <time> <action>` with the
/// compact exact time form of [`SimTime::to_compact_string`]. Applied and
/// pending entries print alike; parsing the output yields a fresh driver
/// with nothing applied yet.
impl fmt::Display for ChurnDriver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (when, action) in &self.script {
            writeln!(f, "at {} {}", when.to_compact_string(), action)?;
        }
        Ok(())
    }
}

/// Parses the [`fmt::Display`] form back. Blank lines and `#` comments are
/// skipped, so scripts survive being embedded in documentation or test
/// fixtures.
impl FromStr for ChurnDriver {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut driver = ChurnDriver::new();
        for (index, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let rest = line
                .strip_prefix("at ")
                .ok_or_else(|| format!("line {}: expected 'at <time> <action>'", index + 1))?;
            let (when, action) = rest
                .trim()
                .split_once(' ')
                .ok_or_else(|| format!("line {}: missing action after the time", index + 1))?;
            let when: SimTime = when.parse().map_err(|e| format!("line {}: {e}", index + 1))?;
            let action: FaultAction = action.parse().map_err(|e| format!("line {}: {e}", index + 1))?;
            driver.at(when, action);
        }
        Ok(driver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::SimAddress;
    use crate::datagram::Datagram;
    use crate::id::TimerToken;
    use crate::network::NetworkBuilder;
    use crate::node::{NodeConfig, NodeContext, SimNode};
    use crate::stats::DropReason;
    use crate::time::SimDuration;
    use bytes::Bytes;

    /// A node that re-arms a periodic timer and records when it fired; used
    /// to observe kill/revive through the node's own lifecycle hooks.
    struct Ticker {
        period: SimDuration,
        starts: Vec<SimTime>,
        ticks: Vec<SimTime>,
        received: Vec<(SimTime, Vec<u8>)>,
    }

    impl Ticker {
        fn boxed(period: SimDuration) -> Box<Self> {
            Box::new(Ticker {
                period,
                starts: Vec::new(),
                ticks: Vec::new(),
                received: Vec::new(),
            })
        }
    }

    impl SimNode for Ticker {
        fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
            self.starts.push(ctx.now());
            ctx.set_timer(self.period, 1);
        }
        fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, dg: Datagram) {
            self.received.push((ctx.now(), dg.payload.to_vec()));
        }
        fn on_timer(&mut self, ctx: &mut NodeContext<'_>, _token: TimerToken, _tag: u64) {
            self.ticks.push(ctx.now());
            ctx.set_timer(self.period, 1);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn two_tickers() -> (Network, NodeId, NodeId) {
        let mut builder = NetworkBuilder::new(5);
        let a = builder.add_node(
            Ticker::boxed(SimDuration::from_secs(1)),
            NodeConfig::lan_peer(SubnetId(0)),
        );
        let b = builder.add_node(
            Ticker::boxed(SimDuration::from_secs(1)),
            NodeConfig::lan_peer(SubnetId(0)),
        );
        (builder.build(), a, b)
    }

    #[test]
    fn kill_and_revive_restart_the_node_lifecycle() {
        let (mut net, a, _b) = two_tickers();
        let mut churn = ChurnDriver::new();
        churn.kill_at(SimTime::from_secs(3), a);
        churn.revive_at(SimTime::from_secs(7), a);
        churn.run_until(&mut net, SimTime::from_secs(10));
        assert!(net.is_alive(a));
        assert_eq!(churn.pending(), 0);

        let ticker = net.node_ref::<Ticker>(a).unwrap();
        // Started once at 0 and once at the revival instant.
        assert_eq!(
            ticker.starts,
            vec![SimTime::ZERO, SimTime::from_secs(7)],
            "revival must re-run on_start at exactly the scripted time"
        );
        // Ticks at 1,2,3 (the 3s tick fires before the same-instant kill is
        // applied only if queued earlier; with seq ordering the kill at the
        // driver boundary happens after run_until(3), so the 3s tick ran),
        // then silence until revival re-arms: 8, 9, 10.
        assert!(ticker.ticks.contains(&SimTime::from_secs(2)));
        assert!(!ticker.ticks.contains(&SimTime::from_secs(5)));
        assert!(ticker.ticks.contains(&SimTime::from_secs(9)));
    }

    #[test]
    fn cut_and_restored_links_gate_delivery() {
        let (mut net, a, b) = two_tickers();
        let b_addr: SimAddress = net.addresses_of(b)[0];
        let mut churn = ChurnDriver::new();
        churn.cut_link_at(SimTime::from_secs(1), a, b);
        churn.restore_link_at(SimTime::from_secs(2), a, b);

        churn.run_until(&mut net, SimTime::from_millis(1500));
        assert!(net.is_pair_blocked(a, b) && net.is_pair_blocked(b, a));
        net.invoke::<Ticker, _>(a, |_n, ctx| {
            ctx.send(b_addr, Bytes::from_static(b"lost")).unwrap();
        });
        churn.run_until(&mut net, SimTime::from_secs(3));
        assert!(!net.is_pair_blocked(a, b));
        net.invoke::<Ticker, _>(a, |_n, ctx| {
            ctx.send(b_addr, Bytes::from_static(b"heard")).unwrap();
        });
        net.run_for(SimDuration::from_secs(1));

        let received: Vec<Vec<u8>> = net
            .node_ref::<Ticker>(b)
            .unwrap()
            .received
            .iter()
            .map(|(_, p)| p.clone())
            .collect();
        assert_eq!(received, vec![b"heard".to_vec()]);
        assert_eq!(net.drops(DropReason::FaultInjected), 1);
    }

    #[test]
    fn identical_scripts_give_identical_runs() {
        let run = |seed: u64| {
            let mut builder = NetworkBuilder::new(seed);
            let a = builder.add_node(
                Ticker::boxed(SimDuration::from_millis(700)),
                NodeConfig::lan_peer(SubnetId(0)),
            );
            let b = builder.add_node(
                Ticker::boxed(SimDuration::from_millis(300)),
                NodeConfig::lan_peer(SubnetId(0)),
            );
            let mut net = builder.build();
            let mut churn = ChurnDriver::new();
            churn
                .kill_at(SimTime::from_secs(2), b)
                .revive_at(SimTime::from_secs(4), b)
                .cut_link_at(SimTime::from_secs(5), a, b);
            churn.run_until(&mut net, SimTime::from_secs(6));
            let ticks = net.node_ref::<Ticker>(b).unwrap().ticks.clone();
            (net.total_stats().timers_fired, ticks)
        };
        let first = run(42);
        assert_eq!(first, run(42), "same seed + same script must reproduce exactly");
        assert!(first.0 > 0, "sanity: timers actually fired during the run");
        assert!(!first.1.is_empty(), "sanity: the revived node ticked again");
    }

    #[test]
    fn actions_beyond_the_horizon_stay_pending() {
        let (mut net, a, _b) = two_tickers();
        let mut churn = ChurnDriver::new();
        churn.kill_at(SimTime::from_secs(8), a);
        churn.run_until(&mut net, SimTime::from_secs(4));
        assert_eq!(churn.pending(), 1);
        assert!(net.is_alive(a));
        churn.run_until(&mut net, SimTime::from_secs(9));
        assert_eq!(churn.pending(), 0);
        assert!(!net.is_alive(a));
    }

    #[test]
    fn scripts_roundtrip_through_display_and_fromstr() {
        let mut churn = ChurnDriver::new();
        churn
            .kill_at(SimTime::from_secs(3), NodeId::from_raw(4))
            .revive_at(SimTime::from_millis(4_500), NodeId::from_raw(4))
            .cut_link_at(SimTime::from_secs(5), NodeId::from_raw(1), NodeId::from_raw(2))
            .restore_link_at(SimTime::from_secs(6), NodeId::from_raw(1), NodeId::from_raw(2))
            .at(
                SimTime::from_secs(7),
                FaultAction::SetLink(SubnetId(0), SubnetId(1), crate::link::LinkSpec::lossy(0.25)),
            );
        let text = churn.to_string();
        assert_eq!(
            text.lines().next(),
            Some("at 3s kill node-4"),
            "script lines are human-readable:\n{text}"
        );
        let reparsed: ChurnDriver = text.parse().expect("script parses back");
        assert_eq!(reparsed.script(), churn.script());
        assert_eq!(reparsed.to_string(), text, "round-trip is a fixpoint");
    }

    #[test]
    fn script_parsing_skips_comments_and_rejects_junk() {
        let parsed: ChurnDriver = "# a comment\n\nat 1s kill node-0\n".parse().unwrap();
        assert_eq!(parsed.pending(), 1);
        assert!("at 1s kill".parse::<ChurnDriver>().is_err(), "missing target");
        assert!("at 1s kill node-0 extra".parse::<ChurnDriver>().is_err());
        assert!(
            "kill node-0".parse::<ChurnDriver>().is_err(),
            "missing 'at <time>'"
        );
        assert!("at 1s explode node-0".parse::<ChurnDriver>().is_err());
        assert!("at 1s cut node-0 subnet-1".parse::<ChurnDriver>().is_err());
    }

    #[test]
    fn parsed_scripts_replay_identically_to_built_ones() {
        let script = "at 3s kill node-0\nat 7s revive node-0\n";
        let run = |churn: &mut ChurnDriver| {
            let (mut net, a, _b) = two_tickers();
            churn.run_until(&mut net, SimTime::from_secs(10));
            net.node_ref::<Ticker>(a).unwrap().ticks.clone()
        };
        let mut built = ChurnDriver::new();
        built
            .kill_at(SimTime::from_secs(3), NodeId::from_raw(0))
            .revive_at(SimTime::from_secs(7), NodeId::from_raw(0));
        let mut parsed: ChurnDriver = script.parse().unwrap();
        assert_eq!(run(&mut parsed), run(&mut built));
    }

    #[test]
    fn revive_is_a_noop_on_live_nodes() {
        let (mut net, a, _b) = two_tickers();
        net.run_for(SimDuration::from_secs(1));
        net.revive_node(a);
        net.run_for(SimDuration::from_secs(1));
        assert_eq!(net.node_ref::<Ticker>(a).unwrap().starts.len(), 1);
    }
}
