//! Deterministic fault and churn injection.
//!
//! A [`ChurnDriver`] is a time-ordered script of [`FaultAction`]s — kill or
//! revive a node, cut or restore an overlay link between two nodes, degrade a
//! subnet link — executed against a [`Network`] *under the discrete-event
//! clock*: [`ChurnDriver::run_until`] advances the simulation exactly to each
//! action's instant, applies it, and continues, so a given script plus a given
//! seed always reproduces the same run, byte for byte.
//!
//! This is the machinery behind the dissemination-layer churn tests: killing
//! one of N rendezvous peers mid-run must lose only that shard's in-flight
//! events, and reviving it must restore delivery.
//!
//! # Example
//!
//! ```
//! use simnet::{ChurnDriver, SimTime};
//! # use simnet::{NetworkBuilder, NodeConfig, SimNode, NodeContext, Datagram, SubnetId};
//! # struct Silent;
//! # impl SimNode for Silent {
//! #     fn on_datagram(&mut self, _ctx: &mut NodeContext<'_>, _dg: Datagram) {}
//! #     fn as_any(&self) -> &dyn std::any::Any { self }
//! #     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! # }
//! # let mut builder = NetworkBuilder::new(1);
//! # let a = builder.add_node(Box::new(Silent), NodeConfig::lan_peer(SubnetId(0)));
//! # let mut net = builder.build();
//! let mut churn = ChurnDriver::new();
//! churn.kill_at(SimTime::from_secs(10), a);
//! churn.revive_at(SimTime::from_secs(20), a);
//! churn.run_until(&mut net, SimTime::from_secs(30));
//! assert!(net.is_alive(a));
//! ```

use crate::id::{NodeId, SubnetId};
use crate::link::LinkSpec;
use crate::network::Network;
use crate::time::SimTime;

/// One scripted fault event.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Shut the node down ([`Network::shutdown_node`]); in-flight datagrams
    /// and timers addressed to it are lost.
    Kill(NodeId),
    /// Bring a killed node back ([`Network::revive_node`]): `on_start` runs
    /// again at the scripted instant, with in-memory state intact.
    Revive(NodeId),
    /// Cut all delivery between two nodes ([`Network::block_pair`]) — an
    /// overlay-link failure such as one rendezvous-to-rendezvous mesh link.
    CutLink(NodeId, NodeId),
    /// Restore a cut pair ([`Network::unblock_pair`]).
    RestoreLink(NodeId, NodeId),
    /// Replace the link spec between two subnets, both directions (partition,
    /// lossy period, WAN degradation).
    SetLink(SubnetId, SubnetId, LinkSpec),
}

/// A time-ordered fault script, applied deterministically while driving the
/// simulation clock. Actions scheduled at the same instant run in insertion
/// order.
#[derive(Debug, Clone, Default)]
pub struct ChurnDriver {
    /// `(when, action)` pairs; kept sorted by time (stable for ties).
    script: Vec<(SimTime, FaultAction)>,
    /// Index of the next unapplied action.
    next: usize,
}

impl ChurnDriver {
    /// Creates an empty script.
    pub fn new() -> Self {
        ChurnDriver::default()
    }

    /// Schedules an arbitrary action; keeps the script time-sorted (actions
    /// at equal times keep their insertion order). The script may keep
    /// growing between [`ChurnDriver::run_until`] segments, as long as new
    /// actions are not scheduled before ones already applied.
    pub fn at(&mut self, when: SimTime, action: FaultAction) -> &mut Self {
        let pos = self.script.partition_point(|(t, _)| *t <= when);
        assert!(
            pos >= self.next,
            "cannot schedule an action before already-applied script entries"
        );
        self.script.insert(pos, (when, action));
        self
    }

    /// Schedules a node kill.
    pub fn kill_at(&mut self, when: SimTime, node: NodeId) -> &mut Self {
        self.at(when, FaultAction::Kill(node))
    }

    /// Schedules a node revival.
    pub fn revive_at(&mut self, when: SimTime, node: NodeId) -> &mut Self {
        self.at(when, FaultAction::Revive(node))
    }

    /// Schedules an overlay-link cut between two nodes.
    pub fn cut_link_at(&mut self, when: SimTime, a: NodeId, b: NodeId) -> &mut Self {
        self.at(when, FaultAction::CutLink(a, b))
    }

    /// Schedules the restoration of a cut overlay link.
    pub fn restore_link_at(&mut self, when: SimTime, a: NodeId, b: NodeId) -> &mut Self {
        self.at(when, FaultAction::RestoreLink(a, b))
    }

    /// How many scripted actions have not been applied yet.
    pub fn pending(&self) -> usize {
        self.script.len() - self.next
    }

    /// Drives `net` to `horizon`, applying every scripted action at exactly
    /// its instant: the event loop runs up to the action time, the action is
    /// applied, and the run continues. Actions scheduled beyond `horizon`
    /// stay pending for the next call, so a test can interleave its own
    /// publishes between `run_until` segments.
    pub fn run_until(&mut self, net: &mut Network, horizon: SimTime) {
        while self.next < self.script.len() {
            let (when, action) = self.script[self.next].clone();
            if when > horizon {
                break;
            }
            net.run_until(when);
            Self::apply(net, &action);
            self.next += 1;
        }
        net.run_until(horizon);
    }

    fn apply(net: &mut Network, action: &FaultAction) {
        match action {
            FaultAction::Kill(node) => net.shutdown_node(*node),
            FaultAction::Revive(node) => net.revive_node(*node),
            FaultAction::CutLink(a, b) => net.block_pair(*a, *b),
            FaultAction::RestoreLink(a, b) => net.unblock_pair(*a, *b),
            FaultAction::SetLink(a, b, spec) => net.links_mut().set_symmetric(*a, *b, spec.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::SimAddress;
    use crate::datagram::Datagram;
    use crate::id::TimerToken;
    use crate::network::NetworkBuilder;
    use crate::node::{NodeConfig, NodeContext, SimNode};
    use crate::stats::DropReason;
    use crate::time::SimDuration;
    use bytes::Bytes;

    /// A node that re-arms a periodic timer and records when it fired; used
    /// to observe kill/revive through the node's own lifecycle hooks.
    struct Ticker {
        period: SimDuration,
        starts: Vec<SimTime>,
        ticks: Vec<SimTime>,
        received: Vec<(SimTime, Vec<u8>)>,
    }

    impl Ticker {
        fn boxed(period: SimDuration) -> Box<Self> {
            Box::new(Ticker {
                period,
                starts: Vec::new(),
                ticks: Vec::new(),
                received: Vec::new(),
            })
        }
    }

    impl SimNode for Ticker {
        fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
            self.starts.push(ctx.now());
            ctx.set_timer(self.period, 1);
        }
        fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, dg: Datagram) {
            self.received.push((ctx.now(), dg.payload.to_vec()));
        }
        fn on_timer(&mut self, ctx: &mut NodeContext<'_>, _token: TimerToken, _tag: u64) {
            self.ticks.push(ctx.now());
            ctx.set_timer(self.period, 1);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn two_tickers() -> (Network, NodeId, NodeId) {
        let mut builder = NetworkBuilder::new(5);
        let a = builder.add_node(
            Ticker::boxed(SimDuration::from_secs(1)),
            NodeConfig::lan_peer(SubnetId(0)),
        );
        let b = builder.add_node(
            Ticker::boxed(SimDuration::from_secs(1)),
            NodeConfig::lan_peer(SubnetId(0)),
        );
        (builder.build(), a, b)
    }

    #[test]
    fn kill_and_revive_restart_the_node_lifecycle() {
        let (mut net, a, _b) = two_tickers();
        let mut churn = ChurnDriver::new();
        churn.kill_at(SimTime::from_secs(3), a);
        churn.revive_at(SimTime::from_secs(7), a);
        churn.run_until(&mut net, SimTime::from_secs(10));
        assert!(net.is_alive(a));
        assert_eq!(churn.pending(), 0);

        let ticker = net.node_ref::<Ticker>(a).unwrap();
        // Started once at 0 and once at the revival instant.
        assert_eq!(
            ticker.starts,
            vec![SimTime::ZERO, SimTime::from_secs(7)],
            "revival must re-run on_start at exactly the scripted time"
        );
        // Ticks at 1,2,3 (the 3s tick fires before the same-instant kill is
        // applied only if queued earlier; with seq ordering the kill at the
        // driver boundary happens after run_until(3), so the 3s tick ran),
        // then silence until revival re-arms: 8, 9, 10.
        assert!(ticker.ticks.contains(&SimTime::from_secs(2)));
        assert!(!ticker.ticks.contains(&SimTime::from_secs(5)));
        assert!(ticker.ticks.contains(&SimTime::from_secs(9)));
    }

    #[test]
    fn cut_and_restored_links_gate_delivery() {
        let (mut net, a, b) = two_tickers();
        let b_addr: SimAddress = net.addresses_of(b)[0];
        let mut churn = ChurnDriver::new();
        churn.cut_link_at(SimTime::from_secs(1), a, b);
        churn.restore_link_at(SimTime::from_secs(2), a, b);

        churn.run_until(&mut net, SimTime::from_millis(1500));
        assert!(net.is_pair_blocked(a, b) && net.is_pair_blocked(b, a));
        net.invoke::<Ticker, _>(a, |_n, ctx| {
            ctx.send(b_addr, Bytes::from_static(b"lost")).unwrap();
        });
        churn.run_until(&mut net, SimTime::from_secs(3));
        assert!(!net.is_pair_blocked(a, b));
        net.invoke::<Ticker, _>(a, |_n, ctx| {
            ctx.send(b_addr, Bytes::from_static(b"heard")).unwrap();
        });
        net.run_for(SimDuration::from_secs(1));

        let received: Vec<Vec<u8>> = net
            .node_ref::<Ticker>(b)
            .unwrap()
            .received
            .iter()
            .map(|(_, p)| p.clone())
            .collect();
        assert_eq!(received, vec![b"heard".to_vec()]);
        assert_eq!(net.drops(DropReason::FaultInjected), 1);
    }

    #[test]
    fn identical_scripts_give_identical_runs() {
        let run = |seed: u64| {
            let mut builder = NetworkBuilder::new(seed);
            let a = builder.add_node(
                Ticker::boxed(SimDuration::from_millis(700)),
                NodeConfig::lan_peer(SubnetId(0)),
            );
            let b = builder.add_node(
                Ticker::boxed(SimDuration::from_millis(300)),
                NodeConfig::lan_peer(SubnetId(0)),
            );
            let mut net = builder.build();
            let mut churn = ChurnDriver::new();
            churn
                .kill_at(SimTime::from_secs(2), b)
                .revive_at(SimTime::from_secs(4), b)
                .cut_link_at(SimTime::from_secs(5), a, b);
            churn.run_until(&mut net, SimTime::from_secs(6));
            let ticks = net.node_ref::<Ticker>(b).unwrap().ticks.clone();
            (net.total_stats().timers_fired, ticks)
        };
        let first = run(42);
        assert_eq!(first, run(42), "same seed + same script must reproduce exactly");
        assert!(first.0 > 0, "sanity: timers actually fired during the run");
        assert!(!first.1.is_empty(), "sanity: the revived node ticked again");
    }

    #[test]
    fn actions_beyond_the_horizon_stay_pending() {
        let (mut net, a, _b) = two_tickers();
        let mut churn = ChurnDriver::new();
        churn.kill_at(SimTime::from_secs(8), a);
        churn.run_until(&mut net, SimTime::from_secs(4));
        assert_eq!(churn.pending(), 1);
        assert!(net.is_alive(a));
        churn.run_until(&mut net, SimTime::from_secs(9));
        assert_eq!(churn.pending(), 0);
        assert!(!net.is_alive(a));
    }

    #[test]
    fn revive_is_a_noop_on_live_nodes() {
        let (mut net, a, _b) = two_tickers();
        net.run_for(SimDuration::from_secs(1));
        net.revive_node(a);
        net.run_for(SimDuration::from_secs(1));
        assert_eq!(net.node_ref::<Ticker>(a).unwrap().starts.len(), 1);
    }
}
