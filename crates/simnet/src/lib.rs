//! # simnet — a deterministic discrete-event wide-area network simulator
//!
//! This crate is the bottom-most substrate of the reproduction of *"OS Support
//! for P2P Programming: a Case for TPS"* (ICDCS 2002). The paper evaluates a
//! Type-based Publish/Subscribe layer stacked on JXTA over a small LAN of
//! workstations; here, the "machines" and the "network" are simulated so that
//! every experiment is laptop-runnable and bit-for-bit reproducible.
//!
//! The model is a classic event-driven simulation:
//!
//! * nodes implement [`SimNode`] and react to datagrams and timers,
//! * handlers queue effects on a [`NodeContext`] (send, set timer, charge
//!   virtual CPU time, ...),
//! * the [`Network`] kernel owns the virtual clock, resolves addresses, applies
//!   link latency/jitter/bandwidth/loss, firewalls and subnet-scoped
//!   multicast, and delivers events in deterministic order.
//!
//! # Quick example
//!
//! ```
//! use simnet::{NetworkBuilder, NodeConfig, SimNode, NodeContext, Datagram, SubnetId, TransportKind};
//! use bytes::Bytes;
//!
//! /// A peer that greets every datagram it receives.
//! struct Greeter { greetings: usize }
//!
//! impl SimNode for Greeter {
//!     fn on_datagram(&mut self, _ctx: &mut NodeContext<'_>, _dg: Datagram) {
//!         self.greetings += 1;
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let mut builder = NetworkBuilder::new(1);
//! let alice = builder.add_node(Box::new(Greeter { greetings: 0 }), NodeConfig::lan_peer(SubnetId(0)));
//! let bob = builder.add_node(Box::new(Greeter { greetings: 0 }), NodeConfig::lan_peer(SubnetId(0)));
//! let mut net = builder.build();
//!
//! let bob_tcp = net.addresses_of(bob).iter().copied()
//!     .find(|a| a.transport == TransportKind::Tcp).unwrap();
//! net.invoke::<Greeter, _>(alice, |_peer, ctx| {
//!     ctx.send(bob_tcp, Bytes::from_static(b"hi")).unwrap();
//! });
//! net.run_until_idle();
//! assert_eq!(net.node_ref::<Greeter>(bob).unwrap().greetings, 1);
//! ```

#![warn(rust_2018_idioms)]

pub mod address;
pub mod datagram;
pub mod fault;
pub mod firewall;
pub mod id;
pub mod link;
pub mod network;
pub mod node;
pub mod stats;
pub mod time;
pub mod trace;

pub use address::{SimAddress, TransportKind};
pub use datagram::{Datagram, SendError};
pub use fault::{ChurnDriver, FaultAction};
pub use firewall::FirewallPolicy;
pub use id::{NodeId, SubnetId, TimerToken};
pub use link::{LinkSpec, LinkTable};
pub use network::{Network, NetworkBuilder, DEFAULT_MAX_DATAGRAM};
pub use node::{NodeConfig, NodeContext, SimNode};
pub use stats::{DropReason, DropSummary, TrafficStats};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceBuffer, TraceEvent, TraceRecord};
