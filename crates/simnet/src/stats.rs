//! Counters collected by the simulation kernel.

use std::fmt;

/// Why a datagram never reached its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Random loss on the link (the link's `loss_probability` fired).
    RandomLoss,
    /// The destination's firewall rejected the inbound transport.
    Firewall,
    /// No node currently owns the destination address (stale address after a
    /// re-assignment, or the address never existed).
    UnknownAddress,
    /// The destination node exists but has been shut down.
    NodeDown,
    /// A multicast datagram found no recipient on the subnet.
    EmptyMulticastGroup,
    /// A fault-injection rule (blocked node pair) swallowed the datagram.
    FaultInjected,
    /// The payload exceeded the network's `max_datagram` limit and was
    /// rejected on the send path.
    OversizedPayload,
}

impl DropReason {
    /// Every drop reason, in a stable reporting order.
    pub const ALL: [DropReason; 7] = [
        DropReason::RandomLoss,
        DropReason::Firewall,
        DropReason::UnknownAddress,
        DropReason::NodeDown,
        DropReason::EmptyMulticastGroup,
        DropReason::FaultInjected,
        DropReason::OversizedPayload,
    ];

    /// A short machine-friendly label (used as a metric-name suffix).
    pub fn label(self) -> &'static str {
        match self {
            DropReason::RandomLoss => "random_loss",
            DropReason::Firewall => "firewall",
            DropReason::UnknownAddress => "unknown_address",
            DropReason::NodeDown => "node_down",
            DropReason::EmptyMulticastGroup => "empty_multicast",
            DropReason::FaultInjected => "fault_injected",
            DropReason::OversizedPayload => "oversized_payload",
        }
    }

    /// This reason's position in [`DropReason::ALL`] — the dense index used
    /// by per-reason count arrays ([`DropSummary`], the kernel's drop
    /// counters). Keeping counts in `ALL`-ordered arrays instead of hash
    /// maps is part of the determinism contract: export order never depends
    /// on insertion or hash order.
    pub const fn index(self) -> usize {
        match self {
            DropReason::RandomLoss => 0,
            DropReason::Firewall => 1,
            DropReason::UnknownAddress => 2,
            DropReason::NodeDown => 3,
            DropReason::EmptyMulticastGroup => 4,
            DropReason::FaultInjected => 5,
            DropReason::OversizedPayload => 6,
        }
    }
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DropReason::RandomLoss => "random loss",
            DropReason::Firewall => "blocked by firewall",
            DropReason::UnknownAddress => "unknown destination address",
            DropReason::NodeDown => "destination node is down",
            DropReason::EmptyMulticastGroup => "no member in multicast group",
            DropReason::FaultInjected => "dropped by fault injection",
            DropReason::OversizedPayload => "payload exceeds the datagram size limit",
        };
        f.write_str(s)
    }
}

/// Network-wide drop counts broken down by [`DropReason`] — the summary the
/// churn and fault tests assert exact causes on, instead of inferring them
/// from aggregate loss.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropSummary {
    /// Counts indexed like [`DropReason::ALL`].
    counts: [u64; DropReason::ALL.len()],
}

impl DropSummary {
    /// Builds a summary from `(reason, count)` pairs (missing reasons count
    /// zero; duplicate reasons sum).
    pub fn from_counts(pairs: impl IntoIterator<Item = (DropReason, u64)>) -> Self {
        let mut summary = DropSummary::default();
        for (reason, count) in pairs {
            summary.add(reason, count);
        }
        summary
    }

    /// Adds `count` drops of the given reason.
    pub fn add(&mut self, reason: DropReason, count: u64) {
        self.counts[reason.index()] += count;
    }

    /// Drops recorded for one reason.
    pub fn of(&self, reason: DropReason) -> u64 {
        self.counts[reason.index()]
    }

    /// Total drops across all reasons.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(reason, count)` rows for every reason with at least one drop, in
    /// [`DropReason::ALL`] order.
    pub fn nonzero(&self) -> Vec<(DropReason, u64)> {
        DropReason::ALL
            .into_iter()
            .zip(self.counts)
            .filter(|&(_, count)| count > 0)
            .collect()
    }
}

impl fmt::Display for DropSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.total() == 0 {
            return f.write_str("no drops");
        }
        let mut first = true;
        for (reason, count) in self.nonzero() {
            if !first {
                f.write_str(" ")?;
            }
            write!(f, "{}={count}", reason.label())?;
            first = false;
        }
        Ok(())
    }
}

/// Traffic counters for one node (or, summed, for the whole network).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Datagrams handed to the kernel for sending.
    pub datagrams_sent: u64,
    /// Datagrams delivered to this node's handler.
    pub datagrams_delivered: u64,
    /// Datagrams addressed to this node that were dropped (any reason).
    pub datagrams_dropped: u64,
    /// Payload bytes sent (excluding framing).
    pub bytes_sent: u64,
    /// Payload bytes delivered (excluding framing).
    pub bytes_delivered: u64,
    /// Timers fired on this node.
    pub timers_fired: u64,
}

impl TrafficStats {
    /// Merges `other` into `self` (used to compute network-wide totals).
    pub fn merge(&mut self, other: &TrafficStats) {
        self.datagrams_sent += other.datagrams_sent;
        self.datagrams_delivered += other.datagrams_delivered;
        self.datagrams_dropped += other.datagrams_dropped;
        self.bytes_sent += other.bytes_sent;
        self.bytes_delivered += other.bytes_delivered;
        self.timers_fired += other.timers_fired;
    }

    /// The fraction of sent datagrams that were eventually delivered
    /// somewhere, or `1.0` when nothing was sent.
    pub fn delivery_ratio(&self) -> f64 {
        if self.datagrams_sent == 0 {
            1.0
        } else {
            self.datagrams_delivered as f64 / self.datagrams_sent as f64
        }
    }
}

impl fmt::Display for TrafficStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent={} delivered={} dropped={} bytes_sent={} bytes_delivered={} timers={}",
            self.datagrams_sent,
            self.datagrams_delivered,
            self.datagrams_dropped,
            self.bytes_sent,
            self.bytes_delivered,
            self.timers_fired
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = TrafficStats {
            datagrams_sent: 1,
            bytes_sent: 10,
            ..Default::default()
        };
        let b = TrafficStats {
            datagrams_sent: 2,
            datagrams_delivered: 2,
            bytes_delivered: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.datagrams_sent, 3);
        assert_eq!(a.datagrams_delivered, 2);
        assert_eq!(a.bytes_sent, 10);
        assert_eq!(a.bytes_delivered, 5);
    }

    #[test]
    fn delivery_ratio_handles_zero_sends() {
        assert_eq!(TrafficStats::default().delivery_ratio(), 1.0);
        let s = TrafficStats {
            datagrams_sent: 4,
            datagrams_delivered: 1,
            ..Default::default()
        };
        assert!((s.delivery_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn drop_reasons_have_readable_messages() {
        assert_eq!(DropReason::Firewall.to_string(), "blocked by firewall");
        assert!(DropReason::UnknownAddress.to_string().contains("address"));
    }

    #[test]
    fn drop_reason_labels_are_unique_and_exhaustive() {
        let labels: std::collections::HashSet<_> = DropReason::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), DropReason::ALL.len());
    }

    #[test]
    fn drop_reason_index_matches_all_order() {
        for (i, reason) in DropReason::ALL.into_iter().enumerate() {
            assert_eq!(reason.index(), i);
        }
    }

    #[test]
    fn drop_summary_accumulates_per_reason() {
        let mut summary = DropSummary::default();
        assert_eq!(summary.to_string(), "no drops");
        summary.add(DropReason::FaultInjected, 2);
        summary.add(DropReason::NodeDown, 1);
        summary.add(DropReason::FaultInjected, 1);
        assert_eq!(summary.of(DropReason::FaultInjected), 3);
        assert_eq!(summary.of(DropReason::NodeDown), 1);
        assert_eq!(summary.of(DropReason::RandomLoss), 0);
        assert_eq!(summary.total(), 4);
        assert_eq!(
            summary.nonzero(),
            vec![(DropReason::NodeDown, 1), (DropReason::FaultInjected, 3)]
        );
        assert_eq!(summary.to_string(), "node_down=1 fault_injected=3");
        let rebuilt = DropSummary::from_counts(summary.nonzero());
        assert_eq!(rebuilt, summary);
    }
}
