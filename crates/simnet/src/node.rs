//! The node abstraction: what a simulated peer implements, and the context
//! handed to its handlers.
//!
//! Handlers never touch the kernel directly. Instead they record *commands*
//! (send a datagram, set a timer, ...) in the [`NodeContext`]; the kernel
//! applies them once the handler returns. This keeps the programming model
//! single-threaded and deterministic, and side-steps borrow-checker contortions
//! that would otherwise arise from nodes calling back into the network that
//! owns them.

use crate::address::{SimAddress, TransportKind};
use crate::datagram::{Datagram, SendError};
use crate::firewall::FirewallPolicy;
use crate::id::{NodeId, SubnetId, TimerToken};
use crate::time::{SimDuration, SimTime};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::Rng;
use std::any::Any;

/// Behaviour of a simulated node.
///
/// Implementations are event-driven state machines: the kernel calls the
/// handlers below, each of which may queue commands on the [`NodeContext`].
///
/// The `as_any` methods exist so that test harnesses and applications can
/// recover the concrete node type from the kernel (e.g. to inspect received
/// events); they are boilerplate but keep the kernel entirely generic.
pub trait SimNode: Any {
    /// Called once, at the node's start time, before any other handler.
    fn on_start(&mut self, _ctx: &mut NodeContext<'_>) {}

    /// Called for every datagram delivered to one of the node's interfaces.
    fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, datagram: Datagram);

    /// Called when a timer previously set with [`NodeContext::set_timer`]
    /// fires. `tag` is the caller-chosen discriminator passed at `set_timer`
    /// time.
    fn on_timer(&mut self, _ctx: &mut NodeContext<'_>, _token: TimerToken, _tag: u64) {}

    /// Called when the harness re-assigns one of the node's addresses
    /// (simulating a DHCP lease change or a device moving networks).
    fn on_address_changed(&mut self, _ctx: &mut NodeContext<'_>, _old: SimAddress, _new: SimAddress) {}

    /// Upcast used by [`crate::Network::node_ref`].
    fn as_any(&self) -> &dyn Any;

    /// Upcast used by [`crate::Network::node_mut`] / [`crate::Network::invoke`].
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Static configuration of a node, supplied when it is added to the network.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// The broadcast domain the node lives in.
    pub subnet: SubnetId,
    /// The transports the node has interfaces for. At least one is required;
    /// the kernel assigns one address per transport.
    pub transports: Vec<TransportKind>,
    /// The node's firewall policy for inbound point-to-point traffic.
    pub firewall: FirewallPolicy,
    /// Fixed processing delay charged for every datagram the node receives
    /// before its handler runs (models OS + JVM dispatch cost).
    pub rx_overhead: SimDuration,
    /// Fixed processing delay charged for every datagram the node sends.
    pub tx_overhead: SimDuration,
}

impl NodeConfig {
    /// A node on `subnet` with TCP, HTTP and multicast interfaces, no
    /// firewall, and small fixed processing overheads.
    pub fn lan_peer(subnet: SubnetId) -> Self {
        NodeConfig {
            subnet,
            transports: vec![TransportKind::Tcp, TransportKind::Http, TransportKind::Multicast],
            firewall: FirewallPolicy::open(),
            rx_overhead: SimDuration::from_micros(150),
            tx_overhead: SimDuration::from_micros(150),
        }
    }

    /// Builder-style firewall override.
    pub fn with_firewall(mut self, firewall: FirewallPolicy) -> Self {
        self.firewall = firewall;
        self
    }

    /// Builder-style transport override.
    pub fn with_transports(mut self, transports: Vec<TransportKind>) -> Self {
        self.transports = transports;
        self
    }

    /// Builder-style processing-overhead override.
    pub fn with_overheads(mut self, rx: SimDuration, tx: SimDuration) -> Self {
        self.rx_overhead = rx;
        self.tx_overhead = tx;
        self
    }
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig::lan_peer(SubnetId(0))
    }
}

/// A command queued by a handler, applied by the kernel afterwards.
#[derive(Debug)]
pub(crate) enum Command {
    Send {
        /// Virtual CPU time already consumed in this handler when the send
        /// was issued; the departure is delayed by this much.
        local_delay: SimDuration,
        dst: SimAddress,
        payload: Bytes,
    },
    SetTimer {
        token: TimerToken,
        at: SimTime,
        tag: u64,
    },
    CancelTimer {
        token: TimerToken,
    },
    Trace {
        text: String,
    },
    Shutdown,
}

/// The per-invocation context handed to every [`SimNode`] handler.
///
/// It exposes the node's identity, addresses and a deterministic RNG, and
/// collects the commands the handler wants executed.
pub struct NodeContext<'a> {
    pub(crate) node_id: NodeId,
    pub(crate) now: SimTime,
    pub(crate) subnet: SubnetId,
    pub(crate) interfaces: &'a [SimAddress],
    pub(crate) rng: &'a mut StdRng,
    pub(crate) next_timer: &'a mut u64,
    pub(crate) charged: SimDuration,
    pub(crate) commands: Vec<Command>,
}

impl<'a> NodeContext<'a> {
    /// The identity of the node whose handler is running.
    pub fn node_id(&self) -> NodeId {
        self.node_id
    }

    /// The current virtual time, *including* any CPU time charged so far in
    /// this handler invocation.
    pub fn now(&self) -> SimTime {
        self.now + self.charged
    }

    /// The virtual time at which the handler was entered.
    pub fn invocation_time(&self) -> SimTime {
        self.now
    }

    /// The broadcast domain this node belongs to.
    pub fn subnet(&self) -> SubnetId {
        self.subnet
    }

    /// All local interface addresses (one per configured transport).
    pub fn local_addresses(&self) -> &[SimAddress] {
        self.interfaces
    }

    /// The local address bound to `transport`, if the node has one.
    pub fn local_address(&self, transport: TransportKind) -> Option<SimAddress> {
        self.interfaces.iter().copied().find(|a| a.transport == transport)
    }

    /// Charges `amount` of virtual CPU time to the current handler.
    ///
    /// Subsequent sends depart later by the accumulated amount, and
    /// [`NodeContext::now`] advances accordingly. This is how protocol layers
    /// model per-message processing cost (serialisation, duplicate detection,
    /// advertisement management, ...) without blocking a real thread.
    pub fn charge(&mut self, amount: SimDuration) {
        self.charged += amount;
    }

    /// The total CPU time charged so far in this handler invocation.
    pub fn charged(&self) -> SimDuration {
        self.charged
    }

    /// A deterministic random number generator private to this node.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Draws a uniform random duration in `[0, bound]`; convenient for
    /// protocol back-off and jitter.
    pub fn random_delay(&mut self, bound: SimDuration) -> SimDuration {
        if bound == SimDuration::ZERO {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros(self.rng.gen_range(0..=bound.as_micros()))
        }
    }

    /// Queues a datagram for transmission to `dst`.
    ///
    /// # Errors
    ///
    /// Returns [`SendError::NoLocalInterface`] if the node has no interface
    /// for the destination's transport. Delivery itself is *not* guaranteed:
    /// like UDP, losses and firewall rejections are silent.
    pub fn send(&mut self, dst: SimAddress, payload: Bytes) -> Result<(), SendError> {
        if self.local_address(dst.transport).is_none() {
            return Err(SendError::NoLocalInterface(dst.transport));
        }
        self.commands.push(Command::Send {
            local_delay: self.charged,
            dst,
            payload,
        });
        Ok(())
    }

    /// Queues a datagram to the well-known discovery multicast group of the
    /// local subnet.
    ///
    /// # Errors
    ///
    /// Returns [`SendError::NoLocalInterface`] if the node has no multicast
    /// interface.
    pub fn send_multicast(&mut self, payload: Bytes) -> Result<(), SendError> {
        self.send(SimAddress::DISCOVERY_MULTICAST, payload)
    }

    /// Sets a one-shot timer to fire `delay` from now; `tag` is returned to
    /// [`SimNode::on_timer`] so a node can multiplex many logical timers.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerToken {
        *self.next_timer += 1;
        let token = TimerToken(*self.next_timer);
        let at = self.now + self.charged + delay;
        self.commands.push(Command::SetTimer { token, at, tag });
        token
    }

    /// Cancels a previously set timer. Cancelling an already-fired or unknown
    /// timer is a no-op.
    pub fn cancel_timer(&mut self, token: TimerToken) {
        self.commands.push(Command::CancelTimer { token });
    }

    /// Emits a free-form trace annotation (kept only if tracing is enabled).
    pub fn trace(&mut self, text: impl Into<String>) {
        self.commands.push(Command::Trace { text: text.into() });
    }

    /// Requests that this node be shut down once the handler returns: no
    /// further datagrams or timers will be delivered to it.
    pub fn shutdown(&mut self) {
        self.commands.push(Command::Shutdown);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx<'a>(
        interfaces: &'a [SimAddress],
        rng: &'a mut StdRng,
        next_timer: &'a mut u64,
    ) -> NodeContext<'a> {
        NodeContext {
            node_id: NodeId::from_raw(3),
            now: SimTime::from_millis(10),
            subnet: SubnetId(1),
            interfaces,
            rng,
            next_timer,
            charged: SimDuration::ZERO,
            commands: Vec::new(),
        }
    }

    #[test]
    fn send_requires_matching_interface() {
        let interfaces = [SimAddress::new(TransportKind::Tcp, 1, 1)];
        let mut rng = StdRng::seed_from_u64(1);
        let mut next = 0;
        let mut c = ctx(&interfaces, &mut rng, &mut next);
        assert!(c
            .send(SimAddress::new(TransportKind::Tcp, 2, 2), Bytes::new())
            .is_ok());
        assert_eq!(
            c.send(SimAddress::new(TransportKind::Http, 2, 2), Bytes::new()),
            Err(SendError::NoLocalInterface(TransportKind::Http))
        );
        assert_eq!(c.commands.len(), 1);
    }

    #[test]
    fn charge_advances_now_and_delays_sends() {
        let interfaces = [SimAddress::new(TransportKind::Tcp, 1, 1)];
        let mut rng = StdRng::seed_from_u64(1);
        let mut next = 0;
        let mut c = ctx(&interfaces, &mut rng, &mut next);
        c.charge(SimDuration::from_millis(5));
        assert_eq!(c.now(), SimTime::from_millis(15));
        assert_eq!(c.invocation_time(), SimTime::from_millis(10));
        c.send(SimAddress::new(TransportKind::Tcp, 2, 2), Bytes::new())
            .unwrap();
        match &c.commands[0] {
            Command::Send { local_delay, .. } => assert_eq!(*local_delay, SimDuration::from_millis(5)),
            other => panic!("unexpected command {other:?}"),
        }
    }

    #[test]
    fn timers_get_unique_tokens_and_absolute_deadlines() {
        let interfaces = [SimAddress::new(TransportKind::Tcp, 1, 1)];
        let mut rng = StdRng::seed_from_u64(1);
        let mut next = 0;
        let mut c = ctx(&interfaces, &mut rng, &mut next);
        let t1 = c.set_timer(SimDuration::from_millis(1), 7);
        let t2 = c.set_timer(SimDuration::from_millis(2), 8);
        assert_ne!(t1, t2);
        match &c.commands[1] {
            Command::SetTimer { at, tag, .. } => {
                assert_eq!(*at, SimTime::from_millis(12));
                assert_eq!(*tag, 8);
            }
            other => panic!("unexpected command {other:?}"),
        }
    }

    #[test]
    fn random_delay_is_bounded() {
        let interfaces = [SimAddress::new(TransportKind::Tcp, 1, 1)];
        let mut rng = StdRng::seed_from_u64(42);
        let mut next = 0;
        let mut c = ctx(&interfaces, &mut rng, &mut next);
        assert_eq!(c.random_delay(SimDuration::ZERO), SimDuration::ZERO);
        for _ in 0..100 {
            let d = c.random_delay(SimDuration::from_millis(3));
            assert!(d <= SimDuration::from_millis(3));
        }
    }

    #[test]
    fn local_address_lookup_by_transport() {
        let interfaces = [
            SimAddress::new(TransportKind::Tcp, 1, 1),
            SimAddress::new(TransportKind::Multicast, 9, 9),
        ];
        let mut rng = StdRng::seed_from_u64(1);
        let mut next = 0;
        let c = ctx(&interfaces, &mut rng, &mut next);
        assert_eq!(c.local_address(TransportKind::Tcp), Some(interfaces[0]));
        assert_eq!(c.local_address(TransportKind::Http), None);
        assert_eq!(c.local_addresses().len(), 2);
        assert_eq!(c.subnet(), SubnetId(1));
        assert_eq!(c.node_id(), NodeId::from_raw(3));
    }
}
