//! Simulated network addresses and transports.
//!
//! JXTA peers are *not* addressed by IP: they carry stable UUIDs and learn
//! each other's volatile transport addresses through advertisements. To
//! exercise that machinery faithfully, the simulator addresses datagrams by
//! [`SimAddress`] (transport + host + port), and the kernel maps addresses to
//! nodes. When a node's address is re-assigned (simulating a DHCP change or a
//! laptop moving networks), packets sent to the stale address are dropped —
//! exactly the failure the Pipe Binding Protocol must recover from.

use std::fmt;
use std::str::FromStr;

/// The physical transport a datagram travels over.
///
/// JXTA peers may expose several network interfaces (TCP, HTTP, IP-multicast,
/// Bluetooth, ...); rendezvous/router peers bridge peers that have no
/// transport in common or that sit behind firewalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TransportKind {
    /// Plain TCP: point to point, blocked by firewalls for inbound traffic.
    Tcp,
    /// HTTP: point to point, can traverse firewalls (outbound and polled
    /// inbound), at a latency penalty.
    Http,
    /// IP multicast: reaches every node on the same subnet only.
    Multicast,
    /// Short-range transport (the paper's "any device with an electronic
    /// pulse"); only reaches nodes on the same subnet.
    Bluetooth,
}

impl TransportKind {
    /// All transports known to the simulator, in a stable order.
    pub const ALL: [TransportKind; 4] = [
        TransportKind::Tcp,
        TransportKind::Http,
        TransportKind::Multicast,
        TransportKind::Bluetooth,
    ];

    /// The URI scheme used when rendering addresses (`tcp://...`).
    pub const fn scheme(self) -> &'static str {
        match self {
            TransportKind::Tcp => "tcp",
            TransportKind::Http => "http",
            TransportKind::Multicast => "mcast",
            TransportKind::Bluetooth => "bt",
        }
    }

    /// Whether the transport is inherently point-to-point (as opposed to a
    /// broadcast domain transport).
    pub const fn is_point_to_point(self) -> bool {
        matches!(self, TransportKind::Tcp | TransportKind::Http)
    }
}

impl fmt::Display for TransportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.scheme())
    }
}

impl FromStr for TransportKind {
    type Err = ParseTransportError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "tcp" => Ok(TransportKind::Tcp),
            "http" => Ok(TransportKind::Http),
            "mcast" => Ok(TransportKind::Multicast),
            "bt" => Ok(TransportKind::Bluetooth),
            _ => Err(ParseTransportError),
        }
    }
}

/// Error returned when parsing an unknown transport scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseTransportError;

impl fmt::Display for ParseTransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("unknown transport scheme")
    }
}

impl std::error::Error for ParseTransportError {}

/// A transport-level address of one network interface of a node.
///
/// `host` plays the role of an IPv4 address (an opaque 32-bit value handed
/// out by the kernel and re-assignable at runtime), `port` the role of a TCP
/// or HTTP port.
///
/// # Examples
///
/// ```
/// use simnet::address::{SimAddress, TransportKind};
///
/// let a = SimAddress::new(TransportKind::Tcp, 0x0a00_0001, 9701);
/// assert_eq!(a.to_string(), "tcp://10.0.0.1:9701");
/// let parsed: SimAddress = "tcp://10.0.0.1:9701".parse().unwrap();
/// assert_eq!(parsed, a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimAddress {
    /// The transport this address belongs to.
    pub transport: TransportKind,
    /// The host part (rendered dotted-quad like an IPv4 address).
    pub host: u32,
    /// The port part.
    pub port: u16,
}

impl SimAddress {
    /// The well-known multicast group address used by peer discovery.
    pub const DISCOVERY_MULTICAST: SimAddress = SimAddress {
        transport: TransportKind::Multicast,
        host: 0xE000_00C9, // 224.0.0.201
        port: 1234,
    };

    /// Creates an address.
    pub const fn new(transport: TransportKind, host: u32, port: u16) -> Self {
        SimAddress {
            transport,
            host,
            port,
        }
    }

    /// Renders the host as a dotted quad.
    pub fn host_string(&self) -> String {
        let h = self.host;
        format!(
            "{}.{}.{}.{}",
            (h >> 24) & 0xff,
            (h >> 16) & 0xff,
            (h >> 8) & 0xff,
            h & 0xff
        )
    }

    /// Whether this is a multicast group address rather than a unicast one.
    pub fn is_multicast(&self) -> bool {
        self.transport == TransportKind::Multicast
    }
}

impl fmt::Display for SimAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}://{}:{}",
            self.transport.scheme(),
            self.host_string(),
            self.port
        )
    }
}

/// Error returned when a string is not a valid [`SimAddress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAddressError(String);

impl fmt::Display for ParseAddressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid simulated address: {}", self.0)
    }
}

impl std::error::Error for ParseAddressError {}

impl FromStr for SimAddress {
    type Err = ParseAddressError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseAddressError(s.to_owned());
        let (scheme, rest) = s.split_once("://").ok_or_else(err)?;
        let transport: TransportKind = scheme.parse().map_err(|_| err())?;
        let (host_str, port_str) = rest.rsplit_once(':').ok_or_else(err)?;
        let port: u16 = port_str.parse().map_err(|_| err())?;
        let mut host: u32 = 0;
        let mut octets = 0;
        for part in host_str.split('.') {
            let octet: u8 = part.parse().map_err(|_| err())?;
            host = (host << 8) | octet as u32;
            octets += 1;
        }
        if octets != 4 {
            return Err(err());
        }
        Ok(SimAddress {
            transport,
            host,
            port,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_scheme_roundtrip() {
        for t in TransportKind::ALL {
            assert_eq!(t.scheme().parse::<TransportKind>().unwrap(), t);
        }
        assert!("carrier-pigeon".parse::<TransportKind>().is_err());
    }

    #[test]
    fn address_display_and_parse_roundtrip() {
        let addr = SimAddress::new(TransportKind::Http, 0xC0A8_0102, 8080);
        assert_eq!(addr.to_string(), "http://192.168.1.2:8080");
        let parsed: SimAddress = addr.to_string().parse().unwrap();
        assert_eq!(parsed, addr);
    }

    #[test]
    fn address_parse_rejects_garbage() {
        assert!("tcp//1.2.3.4:1".parse::<SimAddress>().is_err());
        assert!("tcp://1.2.3:1".parse::<SimAddress>().is_err());
        assert!("tcp://1.2.3.4.5:1".parse::<SimAddress>().is_err());
        assert!("tcp://1.2.3.4:notaport".parse::<SimAddress>().is_err());
        assert!("warp://1.2.3.4:1".parse::<SimAddress>().is_err());
        assert!("tcp://300.2.3.4:1".parse::<SimAddress>().is_err());
    }

    #[test]
    fn multicast_detection() {
        assert!(SimAddress::DISCOVERY_MULTICAST.is_multicast());
        assert!(!SimAddress::new(TransportKind::Tcp, 1, 1).is_multicast());
    }

    #[test]
    fn point_to_point_classification() {
        assert!(TransportKind::Tcp.is_point_to_point());
        assert!(TransportKind::Http.is_point_to_point());
        assert!(!TransportKind::Multicast.is_point_to_point());
        assert!(!TransportKind::Bluetooth.is_point_to_point());
    }
}
