//! Optional event tracing.
//!
//! Tracing is off by default (it allocates); tests and the `reproduce` binary
//! turn it on to assert on, or pretty-print, the exact sequence of network
//! events of a run.

use crate::address::SimAddress;
use crate::id::NodeId;
use crate::stats::DropReason;
use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// One traced kernel event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A node's `on_start` hook ran.
    NodeStarted { node: NodeId },
    /// A node was shut down (no further deliveries).
    NodeStopped { node: NodeId },
    /// A datagram was accepted by the kernel for transmission.
    DatagramSent {
        from: NodeId,
        to_addr: SimAddress,
        bytes: usize,
    },
    /// A datagram was handed to the destination node's handler.
    DatagramDelivered { from: NodeId, to: NodeId, bytes: usize },
    /// A datagram was dropped in flight.
    DatagramDropped {
        from: NodeId,
        to_addr: SimAddress,
        reason: DropReason,
    },
    /// A timer fired on a node.
    TimerFired { node: NodeId, tag: u64 },
    /// A node's address was re-assigned by the test harness.
    AddressChanged {
        node: NodeId,
        old: SimAddress,
        new: SimAddress,
    },
    /// Free-form annotation emitted by a node through
    /// [`crate::NodeContext::trace`].
    Annotation { node: NodeId, text: String },
}

/// A single timestamped trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// When the event happened on the virtual clock.
    pub at: SimTime,
    /// What happened.
    pub event: TraceEvent,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.at)?;
        match &self.event {
            TraceEvent::NodeStarted { node } => write!(f, "{node} started"),
            TraceEvent::NodeStopped { node } => write!(f, "{node} stopped"),
            TraceEvent::DatagramSent { from, to_addr, bytes } => {
                write!(f, "{from} sent {bytes}B to {to_addr}")
            }
            TraceEvent::DatagramDelivered { from, to, bytes } => {
                write!(f, "{to} received {bytes}B from {from}")
            }
            TraceEvent::DatagramDropped {
                from,
                to_addr,
                reason,
            } => {
                write!(f, "datagram {from} -> {to_addr} dropped: {reason}")
            }
            TraceEvent::TimerFired { node, tag } => write!(f, "{node} timer tag={tag} fired"),
            TraceEvent::AddressChanged { node, old, new } => {
                write!(f, "{node} address changed {old} -> {new}")
            }
            TraceEvent::Annotation { node, text } => write!(f, "{node}: {text}"),
        }
    }
}

/// A bounded in-memory trace buffer.
///
/// The buffer is a ring: once `capacity` records are held, pushing a new one
/// evicts the **oldest** record (and counts it in
/// [`TraceBuffer::dropped_records`]), so a long trace-enabled run keeps the
/// most recent window of kernel events — the window an operator actually
/// wants when something just went wrong — at a fixed memory bound.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    enabled: bool,
    capacity: usize,
    records: VecDeque<TraceRecord>,
    dropped_records: u64,
}

impl TraceBuffer {
    /// Creates a disabled buffer (records are discarded).
    pub fn disabled() -> Self {
        TraceBuffer {
            enabled: false,
            capacity: 0,
            records: VecDeque::new(),
            dropped_records: 0,
        }
    }

    /// Creates an enabled buffer keeping at most `capacity` records (a zero
    /// capacity is promoted to 1); once full, the oldest records are evicted
    /// first and counted in [`TraceBuffer::dropped_records`].
    pub fn with_capacity(capacity: usize) -> Self {
        TraceBuffer {
            enabled: true,
            capacity: capacity.max(1),
            records: VecDeque::new(),
            dropped_records: 0,
        }
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends a record if tracing is enabled, evicting the oldest record
    /// when the buffer is at capacity.
    pub fn push(&mut self, at: SimTime, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.records.len() >= self.capacity {
            self.records.pop_front();
            self.dropped_records += 1;
        }
        self.records.push_back(TraceRecord { at, event });
    }

    /// The records currently retained, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no record is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// How many records were evicted because the buffer was full.
    pub fn dropped_records(&self) -> u64 {
        self.dropped_records
    }

    /// Removes all records (the buffer stays enabled).
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped_records = 0;
    }

    /// Counts records matching a predicate.
    pub fn count_matching(&self, mut predicate: impl FnMut(&TraceEvent) -> bool) -> usize {
        self.records.iter().filter(|r| predicate(&r.event)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_buffer_discards() {
        let mut buf = TraceBuffer::disabled();
        buf.push(
            SimTime::ZERO,
            TraceEvent::NodeStarted {
                node: NodeId::from_raw(0),
            },
        );
        assert!(buf.is_empty());
        assert!(!buf.is_enabled());
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let mut buf = TraceBuffer::with_capacity(2);
        for i in 0..5 {
            buf.push(
                SimTime::from_millis(i),
                TraceEvent::TimerFired {
                    node: NodeId::from_raw(0),
                    tag: i,
                },
            );
        }
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped_records(), 3);
        let kept: Vec<u64> = buf
            .records()
            .map(|r| match r.event {
                TraceEvent::TimerFired { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![3, 4], "the newest records survive");
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.dropped_records(), 0);
        assert_eq!(TraceBuffer::with_capacity(0).capacity, 1);
    }

    /// The ring at a mega-scale push count: a 4096-capacity buffer fed
    /// 20 000 records holds exactly the newest 4096 in order and accounts
    /// for every eviction.
    #[test]
    fn ring_stays_bounded_at_twenty_thousand_pushes() {
        const CAPACITY: usize = 4_096;
        const TOTAL: u64 = 20_000;
        let mut buf = TraceBuffer::with_capacity(CAPACITY);
        for i in 0..TOTAL {
            buf.push(
                SimTime::from_millis(i),
                TraceEvent::TimerFired {
                    node: NodeId::from_raw(0),
                    tag: i,
                },
            );
        }
        assert_eq!(buf.len(), CAPACITY);
        assert_eq!(buf.dropped_records(), TOTAL - CAPACITY as u64);
        let tags: Vec<u64> = buf
            .records()
            .map(|r| match r.event {
                TraceEvent::TimerFired { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags.first().copied(), Some(TOTAL - CAPACITY as u64));
        assert_eq!(tags.last().copied(), Some(TOTAL - 1));
        assert!(
            tags.windows(2).all(|w| w[1] == w[0] + 1),
            "the retained window is contiguous and ordered"
        );
    }

    #[test]
    fn count_matching_filters_events() {
        let mut buf = TraceBuffer::with_capacity(16);
        buf.push(
            SimTime::ZERO,
            TraceEvent::NodeStarted {
                node: NodeId::from_raw(0),
            },
        );
        buf.push(
            SimTime::ZERO,
            TraceEvent::TimerFired {
                node: NodeId::from_raw(0),
                tag: 1,
            },
        );
        buf.push(
            SimTime::ZERO,
            TraceEvent::TimerFired {
                node: NodeId::from_raw(0),
                tag: 2,
            },
        );
        assert_eq!(
            buf.count_matching(|e| matches!(e, TraceEvent::TimerFired { .. })),
            2
        );
    }

    #[test]
    fn records_render_for_humans() {
        let rec = TraceRecord {
            at: SimTime::from_millis(3),
            event: TraceEvent::Annotation {
                node: NodeId::from_raw(1),
                text: "hello".into(),
            },
        };
        let s = rec.to_string();
        assert!(s.contains("node-1"));
        assert!(s.contains("hello"));
    }
}
