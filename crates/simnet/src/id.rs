//! Identifiers used by the simulator: nodes, subnets and timers.

use std::fmt;

/// Identifies a simulated node (a "peer machine") inside a [`crate::Network`].
///
/// Node ids are dense indices handed out by the network builder in creation
/// order, which keeps event ordering deterministic and lets the kernel store
/// nodes in a plain vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from its raw index.
    ///
    /// This is mostly useful in tests; real ids are handed out by
    /// [`crate::NetworkBuilder::add_node`].
    pub const fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }

    /// The raw dense index of this node.
    pub const fn as_raw(self) -> u32 {
        self.0
    }

    /// The raw index as a `usize`, convenient for vector indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// Identifies a broadcast domain ("subnet"/LAN segment).
///
/// IP-multicast only reaches nodes within the same subnet, and link
/// characteristics can be specified per subnet pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SubnetId(pub u16);

impl fmt::Display for SubnetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "subnet-{}", self.0)
    }
}

/// A handle to a pending timer, returned by
/// [`crate::NodeContext::set_timer`] and usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerToken(pub(crate) u64);

impl TimerToken {
    /// The raw token value.
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TimerToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_raw(7);
        assert_eq!(id.as_raw(), 7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "node-7");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId::from_raw(1) < NodeId::from_raw(2));
        assert!(SubnetId(0) < SubnetId(3));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SubnetId(4).to_string(), "subnet-4");
        assert_eq!(TimerToken(9).to_string(), "timer-9");
    }
}
