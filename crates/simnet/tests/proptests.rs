//! Property-based tests of simnet's primitives.

use proptest::prelude::*;
use simnet::{LinkSpec, SimAddress, SimDuration, SimTime, TransportKind};

proptest! {
    /// Addresses round trip through their textual form.
    #[test]
    fn addresses_roundtrip(host in any::<u32>(), port in any::<u16>(), idx in 0usize..4) {
        let addr = SimAddress::new(TransportKind::ALL[idx], host, port);
        prop_assert_eq!(addr.to_string().parse::<SimAddress>().unwrap(), addr);
    }

    /// Virtual-time arithmetic is consistent: (t + d) - t == d and ordering
    /// is preserved.
    #[test]
    fn time_arithmetic_is_consistent(base in 0u64..1u64 << 40, delta in 0u64..1u64 << 30) {
        let t = SimTime::from_micros(base);
        let d = SimDuration::from_micros(delta);
        prop_assert_eq!((t + d) - t, d);
        prop_assert!(t + d >= t);
        prop_assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
    }

    /// Transmission delay grows monotonically with payload size and is zero
    /// on infinite-bandwidth links.
    #[test]
    fn transmission_delay_is_monotone(bw in 1u64..10_000_000, small in 0usize..10_000, extra in 0usize..10_000) {
        let spec = LinkSpec::perfect().with_bandwidth(bw);
        let a = spec.transmission_delay(small);
        let b = spec.transmission_delay(small + extra);
        prop_assert!(b >= a);
        prop_assert_eq!(LinkSpec::perfect().transmission_delay(small), SimDuration::ZERO);
    }

    /// Loss probabilities are always clamped into [0, 1].
    #[test]
    fn loss_probability_is_clamped(p in -10.0f64..10.0) {
        let spec = LinkSpec::lan().with_loss(p);
        prop_assert!((0.0..=1.0).contains(&spec.loss_probability));
    }
}
