//! Declarative SLO rules and the watchdog that turns series into alerts.
//!
//! A rule names a series in the flight recorder, a direction, and a
//! threshold: "`harness.delivery_ratio` must stay at or above 0.95",
//! "`trace.latency_p99_ms` must stay at or below 750". The
//! [`SloWatchdog`] evaluates every rule against the newest point of its
//! series each time the owning harness ticks it, and maintains an
//! edge-triggered alert log: one [`HealthAlert`] is opened when a rule
//! first fails and closed (timestamped, kept in the log) when it recovers.
//! Alerts carry virtual timestamps only, so the log is byte-identical
//! across same-seed runs and joins the determinism replay next to the
//! span trace and the series export.
//!
//! # Determinism contract for [`AlertKind`]
//!
//! `AlertKind` follows the same data-encoded exhaustiveness discipline as
//! `DropReason` and `SpanKind` (detlint rule D004): [`AlertKind::ALL`],
//! [`AlertKind::label`], and [`AlertKind::index`] each enumerate every
//! variant, and `detlint` textually cross-checks the enum against those
//! three regions. Adding a variant without extending all three tables is a
//! lint finding, not a silent gap.

use crate::export::{format_f64, push_json_string};
use crate::series::{MetricSeries, SeriesRecorder};
use std::fmt;

/// The typed condition a [`HealthAlert`] reports. Each variant corresponds
/// to one class of SLO rule; the mapping from rule to kind is fixed at rule
/// construction so alert logs stay stable as rules are reordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertKind {
    /// Delivery ratio fell below its floor.
    DeliveryRatioLow,
    /// Windowed p99 delivery latency exceeded its ceiling.
    LatencyP99High,
    /// An engine mailbox grew beyond its depth bound.
    MailboxDepthHigh,
    /// Shard load imbalance exceeded its bound.
    ShardImbalance,
    /// Live edges remained leased to a dead rendezvous.
    StaleLeases,
    /// The rebalancer's hot-shard detector flagged one or more shards.
    HotShard,
}

impl AlertKind {
    /// Every variant, in declaration order. detlint D004 anchors here.
    pub const ALL: [AlertKind; 6] = [
        AlertKind::DeliveryRatioLow,
        AlertKind::LatencyP99High,
        AlertKind::MailboxDepthHigh,
        AlertKind::ShardImbalance,
        AlertKind::StaleLeases,
        AlertKind::HotShard,
    ];

    /// A stable snake_case label for logs and exports.
    pub fn label(self) -> &'static str {
        match self {
            AlertKind::DeliveryRatioLow => "delivery_ratio_low",
            AlertKind::LatencyP99High => "latency_p99_high",
            AlertKind::MailboxDepthHigh => "mailbox_depth_high",
            AlertKind::ShardImbalance => "shard_imbalance",
            AlertKind::StaleLeases => "stale_leases",
            AlertKind::HotShard => "hot_shard",
        }
    }

    /// A stable dense index (position in [`AlertKind::ALL`]).
    pub fn index(self) -> usize {
        match self {
            AlertKind::DeliveryRatioLow => 0,
            AlertKind::LatencyP99High => 1,
            AlertKind::MailboxDepthHigh => 2,
            AlertKind::ShardImbalance => 3,
            AlertKind::StaleLeases => 4,
            AlertKind::HotShard => 5,
        }
    }
}

impl fmt::Display for AlertKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which direction violates a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloOp {
    /// The rule fires when the observed value drops below the threshold.
    Below,
    /// The rule fires when the observed value rises above the threshold.
    Above,
}

/// One declarative SLO rule: watch `series`, fire `kind` when the newest
/// value crosses `threshold` in the `op` direction.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// The alert kind emitted when this rule fails.
    pub kind: AlertKind,
    /// The recorder series the rule watches.
    pub series: String,
    /// The violating direction.
    pub op: SloOp,
    /// The threshold value.
    pub threshold: f64,
}

impl SloRule {
    /// A floor rule: fire `kind` when `series` drops below `threshold`.
    pub fn floor(kind: AlertKind, series: impl Into<String>, threshold: f64) -> Self {
        SloRule {
            kind,
            series: series.into(),
            op: SloOp::Below,
            threshold,
        }
    }

    /// A ceiling rule: fire `kind` when `series` rises above `threshold`.
    pub fn ceiling(kind: AlertKind, series: impl Into<String>, threshold: f64) -> Self {
        SloRule {
            kind,
            series: series.into(),
            op: SloOp::Above,
            threshold,
        }
    }

    fn violated_by(&self, value: f64) -> bool {
        match self.op {
            SloOp::Below => value < self.threshold,
            SloOp::Above => value > self.threshold,
        }
    }
}

/// One alert in the watchdog log. Open while `cleared_at_us` is `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthAlert {
    /// Virtual time the rule first failed.
    pub at_us: u64,
    /// The rule's alert kind.
    pub kind: AlertKind,
    /// The watched series.
    pub series: String,
    /// The observed value that opened the alert.
    pub value: f64,
    /// The rule threshold at open time.
    pub threshold: f64,
    /// Virtual time the rule recovered, if it has.
    pub cleared_at_us: Option<u64>,
}

impl fmt::Display for HealthAlert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}us] {:<18} {} = {} (threshold {})",
            self.at_us,
            self.kind.label(),
            self.series,
            format_f64(self.value),
            format_f64(self.threshold),
        )?;
        match self.cleared_at_us {
            Some(at) => write!(f, " cleared at {at}us"),
            None => write!(f, " ACTIVE"),
        }
    }
}

/// Evaluates [`SloRule`]s against a [`SeriesRecorder`] and keeps the
/// edge-triggered alert log. See the module docs for the contract.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloWatchdog {
    rules: Vec<SloRule>,
    // Parallel to `rules`: index into `alerts` of the open alert, if any.
    open: Vec<Option<usize>>,
    alerts: Vec<HealthAlert>,
}

impl SloWatchdog {
    /// An empty watchdog with no rules.
    pub fn new() -> Self {
        SloWatchdog::default()
    }

    /// Installs a rule. Rules are evaluated in installation order.
    pub fn add_rule(&mut self, rule: SloRule) {
        self.rules.push(rule);
        self.open.push(None);
    }

    /// The installed rules.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Evaluates every rule against the newest point of its series at
    /// virtual time `at_us`. A rule with no series (nothing recorded yet)
    /// is skipped: absence of data is not a violation. Returns how many
    /// alerts this evaluation opened.
    pub fn evaluate(&mut self, at_us: u64, recorder: &SeriesRecorder) -> usize {
        let mut opened = 0;
        for (i, rule) in self.rules.iter().enumerate() {
            let Some(point) = recorder.series(&rule.series).and_then(MetricSeries::last) else {
                continue;
            };
            let violated = rule.violated_by(point.value);
            match (violated, self.open[i]) {
                (true, None) => {
                    self.open[i] = Some(self.alerts.len());
                    self.alerts.push(HealthAlert {
                        at_us,
                        kind: rule.kind,
                        series: rule.series.clone(),
                        value: point.value,
                        threshold: rule.threshold,
                        cleared_at_us: None,
                    });
                    opened += 1;
                }
                (false, Some(idx)) => {
                    self.alerts[idx].cleared_at_us = Some(at_us);
                    self.open[i] = None;
                }
                _ => {}
            }
        }
        opened
    }

    /// Every alert ever opened, in open order (cleared ones included).
    pub fn alerts(&self) -> &[HealthAlert] {
        &self.alerts
    }

    /// The alerts currently open.
    pub fn active_alerts(&self) -> impl Iterator<Item = &HealthAlert> {
        self.alerts.iter().filter(|a| a.cleared_at_us.is_none())
    }

    /// Renders the full alert log as deterministic text, one line per
    /// alert, or `(no alerts)` when the log is empty. Byte-identical
    /// across same-seed runs; the determinism replay compares this.
    pub fn render_log(&self) -> String {
        if self.alerts.is_empty() {
            return "(no alerts)\n".to_owned();
        }
        let mut out = String::new();
        for alert in &self.alerts {
            out.push_str(&alert.to_string());
            out.push('\n');
        }
        out
    }

    /// Exports the alert log as JSON Lines, one object per alert, in open
    /// order. `cleared_at_us` is `null` while the alert is active.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for alert in &self.alerts {
            out.push_str("{\"at_us\":");
            out.push_str(&alert.at_us.to_string());
            out.push_str(",\"kind\":");
            push_json_string(&mut out, alert.kind.label());
            out.push_str(",\"series\":");
            push_json_string(&mut out, &alert.series);
            out.push_str(",\"value\":");
            out.push_str(&format_f64(alert.value));
            out.push_str(",\"threshold\":");
            out.push_str(&format_f64(alert.threshold));
            out.push_str(",\"cleared_at_us\":");
            match alert.cleared_at_us {
                Some(at) => out.push_str(&at.to_string()),
                None => out.push_str("null"),
            }
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{RecorderConfig, SeriesRecorder};

    fn recorder_with(name: &str, points: &[(u64, f64)]) -> SeriesRecorder {
        let mut recorder = SeriesRecorder::new(RecorderConfig::default_cadence());
        for &(at, v) in points {
            recorder.record_value(at, name, v);
        }
        recorder
    }

    #[test]
    fn alert_kind_tables_agree_with_the_enum() {
        for (i, kind) in AlertKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i, "ALL order matches index()");
        }
        let mut labels: Vec<&str> = AlertKind::ALL.iter().map(|k| k.label()).collect();
        labels.dedup();
        assert_eq!(labels.len(), AlertKind::ALL.len(), "labels are distinct");
    }

    #[test]
    fn a_floor_rule_opens_and_clears_edge_triggered() {
        let mut dog = SloWatchdog::new();
        dog.add_rule(SloRule::floor(AlertKind::DeliveryRatioLow, "ratio", 0.95));

        let mut rec = recorder_with("ratio", &[(1, 1.0)]);
        assert_eq!(dog.evaluate(1, &rec), 0, "healthy value opens nothing");

        rec.record_value(2, "ratio", 0.5);
        assert_eq!(dog.evaluate(2, &rec), 1);
        rec.record_value(3, "ratio", 0.4);
        assert_eq!(dog.evaluate(3, &rec), 0, "still failing: no duplicate alert");
        assert_eq!(dog.active_alerts().count(), 1);

        rec.record_value(4, "ratio", 0.99);
        dog.evaluate(4, &rec);
        assert_eq!(dog.active_alerts().count(), 0);
        let log = dog.alerts();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].at_us, 2);
        assert_eq!(log[0].cleared_at_us, Some(4));

        rec.record_value(5, "ratio", 0.1);
        dog.evaluate(5, &rec);
        assert_eq!(dog.alerts().len(), 2, "a relapse opens a fresh alert");
    }

    #[test]
    fn a_ceiling_rule_fires_above_and_missing_series_are_skipped() {
        let mut dog = SloWatchdog::new();
        dog.add_rule(SloRule::ceiling(AlertKind::LatencyP99High, "p99", 750.0));
        dog.add_rule(SloRule::ceiling(AlertKind::MailboxDepthHigh, "absent", 10.0));

        let rec = recorder_with("p99", &[(1, 750.0)]);
        let mut dog2 = dog.clone();
        assert_eq!(dog2.evaluate(1, &rec), 0, "at the threshold is not above it");

        let rec = recorder_with("p99", &[(1, 751.0)]);
        assert_eq!(dog.evaluate(1, &rec), 1);
        assert_eq!(dog.alerts()[0].kind, AlertKind::LatencyP99High);
        assert_eq!(dog.active_alerts().count(), 1, "the absent series opened nothing");
    }

    #[test]
    fn the_logs_are_deterministic_text() {
        let mut dog = SloWatchdog::new();
        assert_eq!(dog.render_log(), "(no alerts)\n");
        dog.add_rule(SloRule::floor(AlertKind::StaleLeases, "stale", 1.0));
        let rec = recorder_with("stale", &[(1_000_000, 0.0)]);
        dog.evaluate(1_000_000, &rec);
        let text = dog.render_log();
        assert!(text.contains("stale_leases"), "log: {text}");
        assert!(text.contains("ACTIVE"));
        let json = dog.export_jsonl();
        assert_eq!(
            json,
            "{\"at_us\":1000000,\"kind\":\"stale_leases\",\"series\":\"stale\",\"value\":0,\
             \"threshold\":1,\"cleared_at_us\":null}\n"
        );
    }
}
