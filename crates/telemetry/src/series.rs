//! The flight recorder: bounded per-metric time series over *virtual* time.
//!
//! A [`MetricsSnapshot`] answers "what is the system doing now"; the paper's
//! evaluation — and every operator staring at a recovering mesh — needs
//! "what has it been doing": delivery ratio dipping after a shard death and
//! climbing back as leases fail over, p99 latency under churn, mailbox depth
//! under a flood. The [`SeriesRecorder`] closes that gap. A harness samples
//! a registry snapshot into it on a fixed virtual-time cadence; each metric
//! becomes a bounded ring of `(sim_time, value)` points with derived views
//! (delta, rate) computed on read, and the whole record exports as
//! deterministic JSONL or Prometheus-style text — byte-identical across
//! same-seed runs, so it joins the determinism replay next to the span
//! trace.
//!
//! Memory is bounded twice over: each series keeps at most
//! `capacity_per_series` points (older ones are evicted, counted), and at
//! most `max_series` distinct series are tracked (later names are dropped,
//! counted). Both caps are part of the recorder's contract at
//! 100k-subscriber scale; [`SeriesRecorder::approx_bytes`] reports the
//! actual footprint so tests can pin the documented bound.

use crate::export::{canonical_entries, format_f64, prometheus_name, push_json_string, MetricEntry};
use crate::MetricsSnapshot;
use std::collections::{BTreeMap, VecDeque};

/// Configuration of a [`SeriesRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Sampling cadence in virtual microseconds (how often the owning
    /// harness should call [`SeriesRecorder::sample`]).
    pub cadence_us: u64,
    /// Points retained per series; older points are evicted ring-style.
    pub capacity_per_series: usize,
    /// Most distinct series tracked; names arriving after the cap are
    /// dropped (and counted in [`SeriesRecorder::dropped_series`]).
    pub max_series: usize,
}

impl RecorderConfig {
    /// The default posture: one sample per virtual second, 512 points per
    /// series, 4096 series — about 4 MiB of points at full occupancy.
    pub fn default_cadence() -> Self {
        RecorderConfig {
            cadence_us: 1_000_000,
            capacity_per_series: 512,
            max_series: 4096,
        }
    }

    /// Same caps, custom cadence.
    pub fn with_cadence_us(cadence_us: u64) -> Self {
        RecorderConfig {
            cadence_us: cadence_us.max(1),
            ..RecorderConfig::default_cadence()
        }
    }
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig::default_cadence()
    }
}

/// One sample of one series: a value at a virtual instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Virtual time of the sample, in microseconds.
    pub at_us: u64,
    /// The sampled value.
    pub value: f64,
}

/// A bounded ring of [`SeriesPoint`]s for one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSeries {
    capacity: usize,
    points: VecDeque<SeriesPoint>,
    evicted: u64,
}

impl MetricSeries {
    fn with_capacity(capacity: usize) -> Self {
        MetricSeries {
            capacity: capacity.max(2),
            points: VecDeque::new(),
            evicted: 0,
        }
    }

    fn push(&mut self, at_us: u64, value: f64) {
        self.points.push_back(SeriesPoint { at_us, value });
        if self.points.len() > self.capacity {
            self.points.pop_front();
            self.evicted += 1;
        }
    }

    /// Points currently retained, oldest first.
    pub fn points(&self) -> impl Iterator<Item = &SeriesPoint> {
        self.points.iter()
    }

    /// Number of points currently retained.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Points evicted from the ring over the series' lifetime.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The newest point, if any.
    pub fn last(&self) -> Option<SeriesPoint> {
        self.points.back().copied()
    }

    /// The oldest retained point, if any.
    pub fn first(&self) -> Option<SeriesPoint> {
        self.points.front().copied()
    }

    /// Derived series: newest value minus oldest retained value (the growth
    /// across the retained window; for monotonic counters, work done).
    pub fn delta(&self) -> f64 {
        match (self.first(), self.last()) {
            (Some(first), Some(last)) => last.value - first.value,
            _ => 0.0,
        }
    }

    /// Derived series: [`MetricSeries::delta`] per virtual second across the
    /// retained window. Zero for windows under one sample long.
    pub fn rate_per_sec(&self) -> f64 {
        match (self.first(), self.last()) {
            (Some(first), Some(last)) if last.at_us > first.at_us => {
                self.delta() / ((last.at_us - first.at_us) as f64 / 1_000_000.0)
            }
            _ => 0.0,
        }
    }

    /// The raw values in time order (for sparklines and assertions).
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.value).collect()
    }
}

/// The flight recorder. See the module docs for the contract.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeriesRecorder {
    config: RecorderConfig,
    series: BTreeMap<String, MetricSeries>,
    samples_taken: u64,
    dropped_series: u64,
}

impl SeriesRecorder {
    /// Creates a recorder with the given caps and cadence.
    pub fn new(config: RecorderConfig) -> Self {
        SeriesRecorder {
            config,
            series: BTreeMap::new(),
            samples_taken: 0,
            dropped_series: 0,
        }
    }

    /// The configured sampling cadence in virtual microseconds.
    pub fn cadence_us(&self) -> u64 {
        self.config.cadence_us
    }

    /// The recorder's configuration.
    pub fn config(&self) -> RecorderConfig {
        self.config
    }

    /// Samples one snapshot at virtual time `at_us`: every counter and gauge
    /// becomes one point in its series; every histogram contributes derived
    /// `<name>.p50` and `<name>.p99` sub-series (the windowed quantiles an
    /// SLO rule wants to watch). Iteration follows the canonical export
    /// order, so which names win the `max_series` race is deterministic.
    pub fn sample(&mut self, at_us: u64, snapshot: &MetricsSnapshot) {
        self.samples_taken += 1;
        for entry in canonical_entries(snapshot) {
            match entry {
                MetricEntry::Counter(name, value) => self.record_value_borrowed(at_us, name, value as f64),
                MetricEntry::Gauge(name, value) => self.record_value_borrowed(at_us, name, value as f64),
                MetricEntry::Histogram(name, summary) => {
                    self.record_value(at_us, format!("{name}.p50"), summary.p50);
                    self.record_value(at_us, format!("{name}.p99"), summary.p99);
                }
            }
        }
    }

    /// Records one point into the named series directly — the path for
    /// harness-computed figures that live in no registry (delivery ratio,
    /// probe outcomes) and for the histogram-derived sub-series.
    pub fn record_value(&mut self, at_us: u64, name: impl Into<String>, value: f64) {
        let name = name.into();
        self.record_value_borrowed(at_us, &name, value);
    }

    fn record_value_borrowed(&mut self, at_us: u64, name: &str, value: f64) {
        if let Some(series) = self.series.get_mut(name) {
            series.push(at_us, value);
            return;
        }
        if self.series.len() >= self.config.max_series {
            self.dropped_series += 1;
            return;
        }
        let mut series = MetricSeries::with_capacity(self.config.capacity_per_series);
        series.push(at_us, value);
        self.series.insert(name.to_owned(), series);
    }

    /// The named series, if any point was ever recorded under it.
    pub fn series(&self, name: &str) -> Option<&MetricSeries> {
        self.series.get(name)
    }

    /// Every tracked series name, in name order.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Number of distinct series tracked.
    pub fn num_series(&self) -> usize {
        self.series.len()
    }

    /// How many times [`SeriesRecorder::sample`] ran.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// Recordings refused because the `max_series` cap was reached.
    pub fn dropped_series(&self) -> u64 {
        self.dropped_series
    }

    /// Approximate heap footprint of the recorded data: name bytes plus
    /// 16 bytes per retained point. The figure the mega-scale bound test
    /// pins against the documented budget in `docs/observability.md`.
    pub fn approx_bytes(&self) -> usize {
        self.series
            .iter()
            .map(|(name, series)| name.len() + series.len() * std::mem::size_of::<SeriesPoint>())
            .sum()
    }

    /// Exports every retained point as JSON Lines, one object per point,
    /// series in name order and points in time order within a series:
    ///
    /// ```text
    /// {"series":"simnet.datagrams_delivered","t_us":1000000,"value":42}
    /// ```
    ///
    /// Deterministic: same recorded state, same bytes.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, series) in &self.series {
            for point in series.points() {
                out.push_str("{\"series\":");
                push_json_string(&mut out, name);
                out.push_str(",\"t_us\":");
                out.push_str(&point.at_us.to_string());
                out.push_str(",\"value\":");
                out.push_str(&format_f64(point.value));
                out.push_str("}\n");
            }
        }
        out
    }

    /// Exports the newest value of every series as Prometheus-style text
    /// (`# TYPE` line plus `name value timestamp_ms`), series in name order.
    /// Everything is exposed as a gauge: the recorder stores sampled values,
    /// not increments.
    pub fn export_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, series) in &self.series {
            let Some(last) = series.last() else { continue };
            let flat = prometheus_name(name);
            out.push_str("# TYPE ");
            out.push_str(&flat);
            out.push_str(" gauge\n");
            out.push_str(&flat);
            out.push(' ');
            out.push_str(&format_f64(last.value));
            out.push(' ');
            out.push_str(&(last.at_us / 1000).to_string());
            out.push('\n');
        }
        out
    }
}

/// Renders `values` as a unicode sparkline (`▁▂▃▄▅▆▇█`), normalised to the
/// series' own min/max; a flat series renders mid-height. The operator
/// view's one-line trend display.
pub fn sparkline(values: &[f64]) -> String {
    const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() || span <= 0.0 {
                RAMP[3]
            } else {
                let norm = (v - min) / span;
                RAMP[((norm * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn sampled_recorder() -> SeriesRecorder {
        let mut recorder = SeriesRecorder::new(RecorderConfig::with_cadence_us(1_000_000));
        let mut registry = MetricsRegistry::new();
        for tick in 0..5u64 {
            registry.set_counter("kernel.delivered", tick * 10);
            registry.set_gauge("kernel.queue", 3 - tick.min(3) as i64);
            registry.record("lat_ms", tick as f64);
            recorder.sample(tick * 1_000_000, &registry.snapshot());
        }
        recorder
    }

    #[test]
    fn sampling_builds_per_metric_series_with_derived_quantiles() {
        let recorder = sampled_recorder();
        assert_eq!(recorder.samples_taken(), 5);
        let delivered = recorder.series("kernel.delivered").expect("counter series");
        assert_eq!(delivered.len(), 5);
        assert_eq!(delivered.last().unwrap().value, 40.0);
        assert_eq!(delivered.delta(), 40.0);
        assert!((delivered.rate_per_sec() - 10.0).abs() < 1e-9);
        assert!(recorder.series("lat_ms.p50").is_some(), "histograms derive .p50");
        assert!(recorder.series("lat_ms.p99").is_some(), "histograms derive .p99");
        assert!(
            recorder.series("lat_ms").is_none(),
            "raw histogram has no scalar series"
        );
    }

    #[test]
    fn rings_evict_oldest_points_and_count_them() {
        let mut recorder = SeriesRecorder::new(RecorderConfig {
            cadence_us: 1,
            capacity_per_series: 4,
            max_series: 16,
        });
        for tick in 0..10u64 {
            recorder.record_value(tick, "s", tick as f64);
        }
        let series = recorder.series("s").unwrap();
        assert_eq!(series.len(), 4);
        assert_eq!(series.evicted(), 6);
        assert_eq!(
            series.first().unwrap().value,
            6.0,
            "oldest retained point moved up"
        );
        assert_eq!(series.last().unwrap().value, 9.0);
    }

    #[test]
    fn the_series_cap_drops_new_names_deterministically() {
        let mut recorder = SeriesRecorder::new(RecorderConfig {
            cadence_us: 1,
            capacity_per_series: 8,
            max_series: 2,
        });
        recorder.record_value(0, "a", 1.0);
        recorder.record_value(0, "b", 1.0);
        recorder.record_value(0, "c", 1.0);
        recorder.record_value(1, "a", 2.0);
        assert_eq!(recorder.num_series(), 2);
        assert_eq!(recorder.dropped_series(), 1);
        assert!(recorder.series("c").is_none(), "the name past the cap is dropped");
        assert_eq!(
            recorder.series("a").unwrap().len(),
            2,
            "existing series keep recording"
        );
    }

    #[test]
    fn jsonl_export_is_deterministic_and_name_ordered() {
        let a = sampled_recorder().export_jsonl();
        let b = sampled_recorder().export_jsonl();
        assert_eq!(a.as_bytes(), b.as_bytes(), "same state, same bytes");
        let first = a.lines().next().unwrap();
        assert_eq!(
            first, r#"{"series":"kernel.delivered","t_us":0,"value":0}"#,
            "alphabetically first series leads, oldest point first"
        );
        assert_eq!(
            a.lines().count(),
            5 * 4,
            "5 ticks x (counter + gauge + p50 + p99)"
        );
    }

    #[test]
    fn prometheus_export_carries_the_last_value() {
        let text = sampled_recorder().export_prometheus();
        assert!(text.contains("# TYPE kernel_delivered gauge\n"));
        assert!(text.contains("\nkernel_delivered 40 4000"));
        assert!(
            !text.contains('.'),
            "all names flattened to the prometheus charset"
        );
    }

    #[test]
    fn approx_bytes_tracks_points_and_names() {
        let recorder = sampled_recorder();
        let expected: usize = recorder
            .series_names()
            .map(|n| n.len() + recorder.series(n).unwrap().len() * 16)
            .sum();
        assert_eq!(recorder.approx_bytes(), expected);
        assert!(recorder.approx_bytes() > 0);
    }

    #[test]
    fn sparklines_normalise_to_the_series_range() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0, 1.0]), "▄▄", "flat series renders mid-height");
        let line = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.starts_with('▁') && line.ends_with('█'));
    }
}
