//! # telemetry — the observability substrate of the TPS stack
//!
//! The paper's JXTA deployment is a black box: rendezvous peers carry the
//! whole propagation load and nothing in the system can see how hot (or how
//! dead) any of them is. This crate is the zero-dependency metrics subsystem
//! the rest of the workspace hangs its instrumentation on:
//!
//! * [`MetricsRegistry`] — a named collection of monotonic counters, gauges
//!   and [`WindowedHistogram`]s with a deterministic [`MetricsSnapshot`]
//!   view. Every layer exports into a registry under its own prefix
//!   (`simnet.*`, `jxta.*`, `tps.*`), so one snapshot shows the whole stack.
//! * [`WindowedHistogram`] — a bounded sliding window of samples with
//!   mean/min/max/quantile summaries; old samples fall out, so the summary
//!   tracks *recent* behaviour under sustained load.
//! * [`LoadReport`] — the compact per-peer load record of the wire-level
//!   load-report plane: events relayed, fan-out, mailbox depth and lease
//!   count. Edge peers piggyback one on their housekeeping tick; rendezvous
//!   peers aggregate them into a per-shard load table and gossip their own
//!   across the mesh links (see the `jxta` crate), and the rebalancing
//!   controller in `dissem` decides from the table.
//! * [`trace`] — the causal event-tracing plane: per-event [`trace::TraceId`]s,
//!   typed hop spans collected into a bounded [`trace::TraceCollector`], path
//!   reconstruction (`trace_of`), latency accounting and drop forensics
//!   (`why_missing`). Off by default; zero-cost when disabled.
//! * [`series`] — the flight recorder: [`series::SeriesRecorder`] samples
//!   snapshots on a virtual-time cadence into bounded per-metric rings and
//!   exports them as deterministic JSONL / Prometheus-style text.
//! * [`slo`] — declarative SLO rules ([`slo::SloRule`]) evaluated by an
//!   [`slo::SloWatchdog`] against the recorded series, emitting typed,
//!   virtually-timestamped [`slo::HealthAlert`]s.
//! * [`export`] — the canonical metric iteration order and the shared
//!   text/JSON encoding helpers every exporter goes through.
//!
//! Everything here is plain owned state — no interior mutability, no
//! threads, no clocks — so the simulator's determinism guarantees carry
//! through unchanged.
#![warn(rust_2018_idioms)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

pub mod export;
pub mod series;
pub mod slo;
pub mod trace;

/// Default number of samples a [`WindowedHistogram`] retains.
pub const DEFAULT_HISTOGRAM_WINDOW: usize = 1024;

// ---------------------------------------------------------------------------
// WindowedHistogram
// ---------------------------------------------------------------------------

/// A bounded sliding window of `f64` samples. Recording past the capacity
/// evicts the oldest sample, so summaries describe the most recent
/// `capacity` observations — the behaviour an operator actually wants from
/// a long-running relay ("how slow is it *now*", not "since boot").
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedHistogram {
    capacity: usize,
    samples: VecDeque<f64>,
    recorded: u64,
}

/// Summary statistics of one histogram window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Samples currently in the window.
    pub count: usize,
    /// Samples recorded over the histogram's lifetime (including evicted).
    pub recorded: u64,
    /// Arithmetic mean of the window.
    pub mean: f64,
    /// Smallest sample in the window.
    pub min: f64,
    /// Largest sample in the window.
    pub max: f64,
    /// Median of the window.
    pub p50: f64,
    /// 90th percentile of the window.
    pub p90: f64,
    /// 99th percentile of the window.
    pub p99: f64,
}

impl WindowedHistogram {
    /// Creates a histogram retaining the latest `capacity` samples
    /// (`capacity == 0` is promoted to 1).
    pub fn with_capacity(capacity: usize) -> Self {
        WindowedHistogram {
            capacity: capacity.max(1),
            samples: VecDeque::new(),
            recorded: 0,
        }
    }

    /// The window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one sample, evicting the oldest if the window is full.
    pub fn record(&mut self, sample: f64) {
        self.recorded += 1;
        self.samples.push_back(sample);
        if self.samples.len() > self.capacity {
            self.samples.pop_front();
        }
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no sample has been recorded (or all have been evicted).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Summarises the current window. An empty window yields all-zero stats.
    pub fn summary(&self) -> HistogramSummary {
        if self.samples.is_empty() {
            return HistogramSummary::default();
        }
        let mut sorted: Vec<f64> = self.samples.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let count = sorted.len();
        let quantile = |q: f64| -> f64 {
            // Nearest-rank on the sorted window; q in [0, 1].
            let rank = ((count as f64 * q).ceil() as usize).clamp(1, count);
            sorted[rank - 1]
        };
        HistogramSummary {
            count,
            recorded: self.recorded,
            mean: sorted.iter().sum::<f64>() / count as f64,
            min: sorted[0],
            max: sorted[count - 1],
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

impl Default for WindowedHistogram {
    fn default() -> Self {
        WindowedHistogram::with_capacity(DEFAULT_HISTOGRAM_WINDOW)
    }
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

/// A named collection of counters, gauges and windowed histograms.
///
/// Names are free-form dotted paths (`"jxta.rdv-0.relayed"`); iteration is
/// name-ordered (BTree-backed), so two snapshots of identical state render
/// identically — a property the deterministic tests lean on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, WindowedHistogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `by` to the named monotonic counter (creating it at zero).
    pub fn inc_counter(&mut self, name: impl Into<String>, by: u64) {
        *self.counters.entry(name.into()).or_insert(0) += by;
    }

    /// Sets the named counter to an absolute value — used when exporting an
    /// already-accumulated total from another layer's own counter.
    pub fn set_counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.insert(name.into(), value);
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, name: impl Into<String>, value: i64) {
        self.gauges.insert(name.into(), value);
    }

    /// Records one sample into the named histogram (created with the default
    /// window on first use).
    pub fn record(&mut self, name: impl Into<String>, sample: f64) {
        self.histograms.entry(name.into()).or_default().record(sample);
    }

    /// Installs an already-populated histogram under a name (replacing any
    /// existing one) — used when a layer maintains its own window and only
    /// hands it over at snapshot time.
    pub fn insert_histogram(&mut self, name: impl Into<String>, histogram: WindowedHistogram) {
        self.histograms.insert(name.into(), histogram);
    }

    /// The current value of a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The current value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Read access to a histogram, if any sample was recorded under the name.
    pub fn histogram(&self, name: &str) -> Option<&WindowedHistogram> {
        self.histograms.get(name)
    }

    /// Counters whose name starts with `prefix`, in name order.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(name, value)| (name.clone(), *value))
            .collect()
    }

    /// A point-in-time, name-ordered view of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(n, v)| (n.clone(), *v)).collect(),
            gauges: self.gauges.iter().map(|(n, v)| (n.clone(), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.summary()))
                .collect(),
        }
    }
}

/// A point-in-time view of a [`MetricsRegistry`], suitable for assertions
/// and operator reports.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values, name-ordered.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, name-ordered.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries, name-ordered.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// The value of a counter in this snapshot (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The value of a gauge in this snapshot, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Renders the snapshot as stable, name-sorted text — the operator-view
    /// dump format. Identical state renders identically, so the output is
    /// safe to assert on (and to diff between two runs).
    pub fn render_text(&self) -> String {
        self.to_string()
    }

    /// Iterates the snapshot in the canonical export order (counters, then
    /// gauges, then histograms, each name-sorted). Delegates to
    /// [`export::canonical_entries`]; every exporter walks this.
    pub fn canonical_entries(&self) -> impl Iterator<Item = export::MetricEntry<'_>> {
        export::canonical_entries(self)
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for entry in export::canonical_entries(self) {
            match entry {
                export::MetricEntry::Counter(name, value) => writeln!(f, "counter {name} = {value}")?,
                export::MetricEntry::Gauge(name, value) => writeln!(f, "gauge   {name} = {value}")?,
                export::MetricEntry::Histogram(name, summary) => writeln!(
                    f,
                    "histo   {name} = mean {:.2} p50 {:.2} p99 {:.2} max {:.2} (n={})",
                    summary.mean, summary.p50, summary.p99, summary.max, summary.count
                )?,
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// LoadReport
// ---------------------------------------------------------------------------

/// The compact per-peer load record carried by the wire-level load-report
/// plane. Small enough to piggyback on every housekeeping tick; rich enough
/// for the rebalancing controller to spot dead and hot shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadReport {
    /// Propagated/forwarded events since boot (monotonic).
    pub events_relayed: u64,
    /// Current forwarding fan-out (client leases + mesh links for a
    /// rendezvous; bound listeners for an edge publisher).
    pub fan_out: u32,
    /// Commands waiting in the application-layer mailbox (TPS session
    /// mailbox depth for TPS peers; zero where no mailbox exists).
    pub mailbox_depth: u32,
    /// Client leases currently held (rendezvous role; zero on edges).
    pub lease_count: u32,
}

impl LoadReport {
    /// Folds another report into this one (used when aggregating the
    /// reports of a shard's edge peers into the shard's own entry).
    pub fn absorb(&mut self, other: &LoadReport) {
        self.events_relayed += other.events_relayed;
        self.fan_out = self.fan_out.max(other.fan_out);
        self.mailbox_depth = self.mailbox_depth.max(other.mailbox_depth);
        self.lease_count += other.lease_count;
    }
}

impl fmt::Display for LoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "relayed={} fan_out={} mailbox={} leases={}",
            self.events_relayed, self.fan_out, self.mailbox_depth, self.lease_count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_window_slides() {
        let mut h = WindowedHistogram::with_capacity(4);
        for v in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4, "window keeps only the latest capacity samples");
        assert_eq!(s.recorded, 6, "lifetime count includes evicted samples");
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 6.0);
        assert!((s.mean - 4.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_are_nearest_rank() {
        let mut h = WindowedHistogram::with_capacity(100);
        for v in 1..=100 {
            h.record(v as f64);
        }
        let s = h.summary();
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.p99, 99.0);
    }

    #[test]
    fn empty_histogram_summary_is_zeroed() {
        let h = WindowedHistogram::default();
        assert!(h.is_empty());
        assert_eq!(h.summary(), HistogramSummary::default());
        assert_eq!(h.capacity(), DEFAULT_HISTOGRAM_WINDOW);
        assert_eq!(WindowedHistogram::with_capacity(0).capacity(), 1);
    }

    #[test]
    fn registry_counters_gauges_and_histograms() {
        let mut registry = MetricsRegistry::new();
        registry.inc_counter("a.relayed", 3);
        registry.inc_counter("a.relayed", 2);
        registry.set_counter("b.relayed", 10);
        registry.set_gauge("a.leases", 7);
        registry.record("a.latency_ms", 5.0);
        registry.record("a.latency_ms", 15.0);

        assert_eq!(registry.counter("a.relayed"), 5);
        assert_eq!(registry.counter("missing"), 0);
        assert_eq!(registry.gauge("a.leases"), Some(7));
        assert_eq!(registry.gauge("missing"), None);
        assert_eq!(registry.histogram("a.latency_ms").unwrap().len(), 2);
        assert_eq!(
            registry.counters_with_prefix("a."),
            vec![("a.relayed".to_owned(), 5)]
        );
    }

    #[test]
    fn snapshots_are_name_ordered_and_render() {
        let mut registry = MetricsRegistry::new();
        registry.inc_counter("z.last", 1);
        registry.inc_counter("a.first", 2);
        registry.set_gauge("m.middle", -4);
        registry.record("h.histo", 2.0);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters[0].0, "a.first");
        assert_eq!(snapshot.counters[1].0, "z.last");
        assert_eq!(snapshot.counter("z.last"), 1);
        assert_eq!(snapshot.gauge("m.middle"), Some(-4));
        let rendered = snapshot.to_string();
        assert!(rendered.contains("counter a.first = 2"));
        assert!(rendered.contains("gauge   m.middle = -4"));
        assert!(rendered.contains("histo   h.histo"));
        assert_eq!(
            snapshot.render_text(),
            rendered,
            "render_text is the stable Display form"
        );
    }

    #[test]
    fn identical_state_snapshots_identically() {
        let build = || {
            let mut r = MetricsRegistry::new();
            r.inc_counter("x", 1);
            r.set_gauge("g", 2);
            r.record("h", 3.0);
            r.snapshot()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn load_reports_absorb_and_render() {
        let mut total = LoadReport {
            events_relayed: 10,
            fan_out: 4,
            mailbox_depth: 1,
            lease_count: 4,
        };
        total.absorb(&LoadReport {
            events_relayed: 5,
            fan_out: 9,
            mailbox_depth: 0,
            lease_count: 2,
        });
        assert_eq!(total.events_relayed, 15);
        assert_eq!(total.fan_out, 9, "fan-out aggregates as the maximum");
        assert_eq!(total.lease_count, 6, "lease counts sum");
        assert_eq!(total.to_string(), "relayed=15 fan_out=9 mailbox=1 leases=6");
    }
}
