//! Canonical export ordering and the shared text/JSON encoding helpers.
//!
//! Every exporter in the workspace — [`MetricsSnapshot::render_text`], the
//! flight recorder's JSONL series dump, the Prometheus-style text format —
//! must walk metrics in the *same* order, or two renderings of identical
//! state stop being byte-comparable and the determinism replay loses its
//! cheapest oracle. This module owns that order: counters first, then
//! gauges, then histograms, each name-sorted (the snapshot vectors are
//! already name-ordered because the registry is BTree-backed). Exporters
//! iterate [`canonical_entries`] instead of re-sorting locally.

use crate::{HistogramSummary, MetricsSnapshot};

/// One metric in canonical export order, borrowed from a snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricEntry<'a> {
    /// A monotonic counter.
    Counter(&'a str, u64),
    /// A point-in-time gauge.
    Gauge(&'a str, i64),
    /// A windowed histogram summary.
    Histogram(&'a str, &'a HistogramSummary),
}

impl MetricEntry<'_> {
    /// The metric's name.
    pub fn name(&self) -> &str {
        match self {
            MetricEntry::Counter(name, _) | MetricEntry::Gauge(name, _) | MetricEntry::Histogram(name, _) => {
                name
            }
        }
    }
}

/// Iterates a snapshot in the canonical export order: counters, then gauges,
/// then histograms, each name-sorted. Every exporter must use this (or
/// [`MetricsSnapshot::canonical_entries`], which delegates here) so that two
/// renderings of the same state agree byte for byte.
pub fn canonical_entries(snapshot: &MetricsSnapshot) -> impl Iterator<Item = MetricEntry<'_>> {
    let counters = snapshot.counters.iter().map(|(n, v)| MetricEntry::Counter(n, *v));
    let gauges = snapshot.gauges.iter().map(|(n, v)| MetricEntry::Gauge(n, *v));
    let histograms = snapshot
        .histograms
        .iter()
        .map(|(n, s)| MetricEntry::Histogram(n, s));
    counters.chain(gauges).chain(histograms)
}

/// Rewrites a dotted metric name (`simnet.drops.node_down`) into the
/// Prometheus identifier charset (`simnet_drops_node_down`): every character
/// outside `[a-zA-Z0-9_:]` becomes `_`.
pub fn prometheus_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Appends `value` as a JSON string literal (quotes included) to `out`.
/// Metric names are plain ASCII paths, but the escape is complete anyway so
/// a creative series name cannot corrupt the JSONL stream.
pub fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` for export: finite values use Rust's shortest-roundtrip
/// formatting (deterministic for equal bits), non-finite values — which JSON
/// cannot carry — are pinned to `null`-safe sentinels.
pub fn format_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else if value.is_nan() {
        "0".to_owned()
    } else if value > 0.0 {
        "1e308".to_owned()
    } else {
        "-1e308".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn canonical_order_is_counters_gauges_histograms_each_name_sorted() {
        let mut registry = MetricsRegistry::new();
        registry.set_gauge("b.gauge", 2);
        registry.inc_counter("z.counter", 1);
        registry.record("a.histo", 1.0);
        registry.inc_counter("a.counter", 1);
        registry.set_gauge("a.gauge", 1);
        let snapshot = registry.snapshot();
        let names: Vec<String> = canonical_entries(&snapshot)
            .map(|e| e.name().to_owned())
            .collect();
        assert_eq!(
            names,
            vec!["a.counter", "z.counter", "a.gauge", "b.gauge", "a.histo"],
            "counters first, then gauges, then histograms, each name-sorted"
        );
    }

    #[test]
    fn render_text_follows_the_canonical_order() {
        // The ordering pin of the shared helper: render_text must list
        // metrics exactly as canonical_entries yields them.
        let mut registry = MetricsRegistry::new();
        registry.inc_counter("m.events", 7);
        registry.set_gauge("a.depth", -1);
        registry.record("z.lat", 3.0);
        let snapshot = registry.snapshot();
        let rendered = snapshot.render_text();
        let rendered_names: Vec<&str> = rendered
            .lines()
            .map(|l| l.split_whitespace().nth(1).expect("metric name column"))
            .collect();
        let canonical: Vec<String> = canonical_entries(&snapshot)
            .map(|e| e.name().to_owned())
            .collect();
        assert_eq!(rendered_names, canonical);
    }

    #[test]
    fn prometheus_names_replace_the_dots() {
        assert_eq!(
            prometheus_name("simnet.drops.node_down"),
            "simnet_drops_node_down"
        );
        assert_eq!(prometheus_name("a:b-c d.e"), "a:b_c_d_e");
    }

    #[test]
    fn json_strings_escape_the_dangerous_characters() {
        let mut out = String::new();
        push_json_string(&mut out, "plain.name");
        assert_eq!(out, "\"plain.name\"");
        let mut out = String::new();
        push_json_string(&mut out, "q\"b\\n\n\u{1}");
        assert_eq!(out, "\"q\\\"b\\\\n\\n\\u0001\"");
    }

    #[test]
    fn float_formatting_is_shortest_roundtrip_and_total() {
        assert_eq!(format_f64(1.5), "1.5");
        assert_eq!(format_f64(1.0), "1");
        assert_eq!(format_f64(f64::NAN), "0");
        assert_eq!(format_f64(f64::INFINITY), "1e308");
        assert_eq!(format_f64(f64::NEG_INFINITY), "-1e308");
    }
}
