//! Causal event tracing: end-to-end delivery spans, latency accounting and
//! drop forensics.
//!
//! The metrics plane (the crate root) says *how much* happened; this module
//! says *what happened to one event*. Every published event is stamped with a
//! compact [`TraceId`] (origin peer + per-origin sequence number) that rides
//! inside the wire envelope, so it survives rendezvous relay, mesh relay,
//! batching and fan-down. Each layer that touches a copy of the event records
//! a typed [`TraceSpan`] into a shared [`TraceCollector`]:
//!
//! | span                    | recorded by                 | meaning |
//! |-------------------------|-----------------------------|---------|
//! | [`SpanKind::Published`] | publisher                   | the event entered the stack |
//! | [`SpanKind::WireOut`]   | any peer                    | one unicast copy left for `to` |
//! | [`SpanKind::MeshRelay`] | rendezvous                  | a copy crossed a rendezvous-to-rendezvous mesh link |
//! | [`SpanKind::FanDown`]   | rendezvous                  | a copy fanned down a client lease |
//! | [`SpanKind::WireIn`]    | any peer                    | a copy arrived from `from` |
//! | [`SpanKind::Delivered`] | subscriber                  | the copy reached the local listener/mailbox |
//! | [`SpanKind::Dropped`]   | any peer                    | the copy died here, with a [`DropCause`] |
//!
//! Tracing is **off by default and zero-cost when disabled**: no collector
//! installed means no ids are allocated, no wire element is added and no span
//! is recorded — the hot paths only pay an `Option` check. The collector is a
//! bounded ring buffer (oldest spans evicted first, counted in
//! [`TraceCollector::dropped_records`]), so trace-enabled long runs cannot
//! grow memory without bound.
//!
//! # Debugging a lost event
//!
//! The forensics entry point is [`TraceCollector::why_missing`]: given a
//! subscriber and a [`TraceId`], it replays the event's recorded spans and
//! returns a [`DeliveryVerdict`] naming the exact hop where the subscriber's
//! copy died:
//!
//! 1. Find the id of the missing event (the publisher's `Published` span, or
//!    the application's own send history).
//! 2. `trace_of(id)` shows the ordered hop list — who forwarded what, when.
//! 3. `why_missing(subscriber, id)` classifies the loss:
//!    [`DeliveryVerdict::LostOnWire`] points at the send span whose target
//!    never recorded a `WireIn` (join its timestamp against the simulation
//!    kernel's own drop log to get the transport-level drop reason);
//!    [`DeliveryVerdict::DroppedAt`] points at an explicit `Dropped` span
//!    (duplicate suppression, TTL exhaustion, no route).
//!
//! Timestamps are plain `u64` microseconds of the caller's (virtual) clock;
//! node identities are plain `u64` handles registered with
//! [`TraceCollector::register_node`], which keeps this crate dependency-free.

use crate::WindowedHistogram;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// The `to`/`from` handle used when a copy was sent to no single peer
/// (multicast/broadcast fallback paths). [`TraceSpan::send_target`] returns
/// `None` for it, so forensics never blames a broadcast for a missing copy.
pub const BROADCAST: u64 = 0;

/// Default number of spans a [`TraceCollector`] retains.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

// ---------------------------------------------------------------------------
// TraceId
// ---------------------------------------------------------------------------

/// The compact per-event trace identity stamped into the wire envelope:
/// the originating peer's trace handle plus a per-origin sequence number.
/// Allocation is deterministic (a per-origin counter), so same-seed runs
/// produce bit-identical ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId {
    /// Trace handle of the publishing peer.
    pub origin: u64,
    /// Sequence number of the event at its origin (starts at 1).
    pub seq: u64,
}

impl TraceId {
    /// Renders the id in its wire form (`origin:seq`, both hex).
    pub fn to_wire(self) -> String {
        format!("{:x}:{:x}", self.origin, self.seq)
    }

    /// Parses the wire form produced by [`TraceId::to_wire`].
    pub fn from_wire(s: &str) -> Option<TraceId> {
        let (origin, seq) = s.split_once(':')?;
        Some(TraceId {
            origin: u64::from_str_radix(origin, 16).ok()?,
            seq: u64::from_str_radix(seq, 16).ok()?,
        })
    }

    /// Renders a list of ids as one comma-separated wire string.
    pub fn encode_list(ids: &[TraceId]) -> String {
        ids.iter().map(|id| id.to_wire()).collect::<Vec<_>>().join(",")
    }

    /// Parses a comma-separated wire string back into ids; malformed entries
    /// are skipped (a traced peer must interoperate with untraced senders).
    pub fn decode_list(s: &str) -> Vec<TraceId> {
        s.split(',').filter_map(TraceId::from_wire).collect()
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}:{}", self.origin, self.seq)
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// Why a copy of an event died where it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// Duplicate suppression: an identical copy had already been seen (wire
    /// message-id window or TPS event-id window).
    Duplicate,
    /// The copy's hop budget reached zero at a peer that was not a listener.
    TtlExhausted,
    /// No next hop could be resolved for the copy.
    NoRoute,
}

impl fmt::Display for DropCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DropCause::Duplicate => "duplicate",
            DropCause::TtlExhausted => "ttl-exhausted",
            DropCause::NoRoute => "no-route",
        })
    }
}

/// What happened to a copy of an event at one hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// The event entered the stack at its publisher.
    Published,
    /// One unicast copy left this peer for `to` ([`BROADCAST`] when the copy
    /// went out on a multicast/propagate fallback instead of a single peer).
    WireOut {
        /// Trace handle of the receiving peer.
        to: u64,
    },
    /// A copy arrived at this peer from `from`.
    WireIn {
        /// Trace handle of the sending peer.
        from: u64,
    },
    /// A rendezvous relayed a copy across a mesh link to another rendezvous.
    MeshRelay {
        /// Trace handle of the receiving rendezvous.
        to: u64,
    },
    /// A rendezvous fanned a copy down a client lease.
    FanDown {
        /// Trace handle of the leased client.
        to: u64,
    },
    /// The copy reached this peer's local listener / subscriber mailbox.
    Delivered,
    /// The copy died at this peer.
    Dropped {
        /// Why it died.
        cause: DropCause,
    },
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpanKind::Published => f.write_str("published"),
            SpanKind::WireOut { to } => write!(f, "wire-out -> {to:x}"),
            SpanKind::WireIn { from } => write!(f, "wire-in <- {from:x}"),
            SpanKind::MeshRelay { to } => write!(f, "mesh-relay -> {to:x}"),
            SpanKind::FanDown { to } => write!(f, "fan-down -> {to:x}"),
            SpanKind::Delivered => f.write_str("delivered"),
            SpanKind::Dropped { cause } => write!(f, "dropped ({cause})"),
        }
    }
}

/// One timestamped hop record of one event copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpan {
    /// Which event this span belongs to.
    pub id: TraceId,
    /// When it happened, in microseconds of the caller's (virtual) clock.
    pub at_us: u64,
    /// Trace handle of the peer the span happened at.
    pub node: u64,
    /// What happened.
    pub kind: SpanKind,
}

impl TraceSpan {
    /// The single peer this span sent a copy to, if it is a send span
    /// (`None` for non-send spans and for [`BROADCAST`] sends).
    pub fn send_target(&self) -> Option<u64> {
        match self.kind {
            SpanKind::WireOut { to } | SpanKind::MeshRelay { to } | SpanKind::FanDown { to } => {
                (to != BROADCAST).then_some(to)
            }
            _ => None,
        }
    }
}

impl fmt::Display for TraceSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10.3}ms] {} @{:x} {}",
            self.at_us as f64 / 1_000.0,
            self.id,
            self.node,
            self.kind
        )
    }
}

// ---------------------------------------------------------------------------
// Verdicts
// ---------------------------------------------------------------------------

/// The outcome of [`TraceCollector::why_missing`]: where a subscriber's copy
/// of an event ended up, reconstructed from the recorded spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeliveryVerdict {
    /// The event *was* delivered to the subscriber.
    Delivered {
        /// Delivery instant in microseconds.
        at_us: u64,
    },
    /// The copy died at an instrumented hop which recorded an explicit
    /// `Dropped` span (duplicate suppression, TTL exhaustion, no route).
    DroppedAt {
        /// The drop span.
        span: TraceSpan,
    },
    /// A copy was put on the wire (`last_send`) but its target never recorded
    /// a `WireIn`: it died in the network kernel. Join `last_send.at_us`
    /// against the kernel's own drop log for the transport-level reason.
    LostOnWire {
        /// The last send span whose copy vanished.
        last_send: TraceSpan,
    },
    /// The event was published but no copy was ever routed toward the
    /// subscriber (and none was lost on the wire) — the dissemination plan
    /// simply never covered it. `last_span` is the trace's final hop.
    NeverRouted {
        /// The last span recorded for the event.
        last_span: TraceSpan,
    },
    /// No span exists for the id at all (it was never published, or the
    /// collector has already evicted its spans).
    NeverPublished,
}

impl DeliveryVerdict {
    /// Whether the verdict says the subscriber actually got the event.
    pub fn is_delivered(&self) -> bool {
        matches!(self, DeliveryVerdict::Delivered { .. })
    }
}

impl fmt::Display for DeliveryVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeliveryVerdict::Delivered { at_us } => {
                write!(f, "delivered at {:.3}ms", *at_us as f64 / 1_000.0)
            }
            DeliveryVerdict::DroppedAt { span } => write!(f, "dropped at hop: {span}"),
            DeliveryVerdict::LostOnWire { last_send } => {
                write!(f, "lost on the wire after: {last_send}")
            }
            DeliveryVerdict::NeverRouted { last_span } => {
                write!(
                    f,
                    "never routed toward the subscriber; trace ends at: {last_span}"
                )
            }
            DeliveryVerdict::NeverPublished => f.write_str("no trace recorded for this id"),
        }
    }
}

// ---------------------------------------------------------------------------
// TraceCollector
// ---------------------------------------------------------------------------

/// The bounded span sink shared by every instrumented layer of one
/// simulation. Also the [`TraceId`] allocator: ids come from deterministic
/// per-origin counters, so a given seed always yields the same ids.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCollector {
    capacity: usize,
    spans: VecDeque<TraceSpan>,
    dropped_records: u64,
    names: BTreeMap<u64, String>,
    next_seq: BTreeMap<u64, u64>,
}

impl TraceCollector {
    /// Creates a collector retaining at most `capacity` spans (a zero
    /// capacity is promoted to 1). Oldest spans are evicted first.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceCollector {
            capacity: capacity.max(1),
            spans: VecDeque::new(),
            dropped_records: 0,
            names: BTreeMap::new(),
            next_seq: BTreeMap::new(),
        }
    }

    /// Allocates the next [`TraceId`] for events published by `origin`.
    pub fn allocate(&mut self, origin: u64) -> TraceId {
        let seq = self.next_seq.entry(origin).or_insert(0);
        *seq += 1;
        TraceId { origin, seq: *seq }
    }

    /// Records one span, evicting the oldest if the ring is full.
    pub fn record(&mut self, span: TraceSpan) {
        if self.spans.len() >= self.capacity {
            self.spans.pop_front();
            self.dropped_records += 1;
        }
        self.spans.push_back(span);
    }

    /// Registers a human-readable name for a trace handle, used by the text
    /// timeline.
    pub fn register_node(&mut self, node: u64, name: impl Into<String>) {
        self.names.insert(node, name.into());
    }

    /// The registered name of a handle, or `peer-<hex>` if unregistered.
    pub fn node_name(&self, node: u64) -> String {
        self.names
            .get(&node)
            .cloned()
            .unwrap_or_else(|| format!("peer-{node:x}"))
    }

    /// Every span currently retained, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &TraceSpan> {
        self.spans.iter()
    }

    /// Number of spans currently retained.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no span is retained.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans evicted because the ring was full.
    pub fn dropped_records(&self) -> u64 {
        self.dropped_records
    }

    /// Removes all spans (names and sequence counters are kept).
    pub fn clear(&mut self) {
        self.spans.clear();
        self.dropped_records = 0;
    }

    /// The ordered hop list of one event: every retained span carrying `id`,
    /// in recording (= virtual-clock) order.
    pub fn trace_of(&self, id: TraceId) -> Vec<TraceSpan> {
        self.spans.iter().filter(|s| s.id == id).copied().collect()
    }

    /// Every distinct id with at least one retained span, in id order.
    pub fn known_ids(&self) -> Vec<TraceId> {
        let set: BTreeSet<TraceId> = self.spans.iter().map(|s| s.id).collect();
        set.into_iter().collect()
    }

    /// Drop forensics: where did `subscriber`'s copy of `id` end up?
    ///
    /// The verdict walks the recorded spans: a `Delivered` at the subscriber
    /// wins; otherwise an arrival without delivery points at the local drop;
    /// otherwise the last send targeting the subscriber (or the last send
    /// whose target never recorded an arrival — an upstream wire loss) is
    /// blamed; an explicit `Dropped` anywhere on the path comes next; and a
    /// trace that never sent anything toward the subscriber is
    /// [`DeliveryVerdict::NeverRouted`].
    pub fn why_missing(&self, subscriber: u64, id: TraceId) -> DeliveryVerdict {
        let spans = self.trace_of(id);
        let Some(last) = spans.last().copied() else {
            return DeliveryVerdict::NeverPublished;
        };
        if let Some(d) = spans
            .iter()
            .find(|s| s.node == subscriber && matches!(s.kind, SpanKind::Delivered))
        {
            return DeliveryVerdict::Delivered { at_us: d.at_us };
        }
        let arrived = spans
            .iter()
            .any(|s| s.node == subscriber && matches!(s.kind, SpanKind::WireIn { .. }));
        if arrived {
            let local = spans
                .iter()
                .rev()
                .find(|s| s.node == subscriber && matches!(s.kind, SpanKind::Dropped { .. }))
                .or_else(|| spans.iter().rev().find(|s| s.node == subscriber))
                .copied()
                .expect("an arrival span exists at the subscriber");
            return DeliveryVerdict::DroppedAt { span: local };
        }
        if let Some(send) = spans.iter().rev().find(|s| s.send_target() == Some(subscriber)) {
            return DeliveryVerdict::LostOnWire { last_send: *send };
        }
        // An upstream copy that left a peer but never arrived anywhere: the
        // network kernel ate it before it could be routed further toward the
        // subscriber.
        if let Some(send) = spans.iter().rev().find(|s| match s.send_target() {
            Some(to) => !spans
                .iter()
                .any(|r| r.node == to && matches!(r.kind, SpanKind::WireIn { .. })),
            None => false,
        }) {
            return DeliveryVerdict::LostOnWire { last_send: *send };
        }
        if let Some(drop) = spans
            .iter()
            .rev()
            .find(|s| matches!(s.kind, SpanKind::Dropped { .. }))
        {
            return DeliveryVerdict::DroppedAt { span: *drop };
        }
        DeliveryVerdict::NeverRouted { last_span: last }
    }

    /// End-to-end latency in microseconds of one delivery: the gap between
    /// the id's `Published` span and the `Delivered` span at `subscriber`.
    pub fn delivery_latency_us(&self, subscriber: u64, id: TraceId) -> Option<u64> {
        let spans = self.trace_of(id);
        let published = spans.iter().find(|s| matches!(s.kind, SpanKind::Published))?;
        let delivered = spans
            .iter()
            .find(|s| s.node == subscriber && matches!(s.kind, SpanKind::Delivered))?;
        Some(delivered.at_us.saturating_sub(published.at_us))
    }

    /// All end-to-end latencies in milliseconds: one sample per `Delivered`
    /// span whose id still has its `Published` span in the ring.
    pub fn latencies_ms(&self) -> Vec<f64> {
        let mut published: BTreeMap<TraceId, u64> = BTreeMap::new();
        for span in &self.spans {
            if matches!(span.kind, SpanKind::Published) {
                published.entry(span.id).or_insert(span.at_us);
            }
        }
        self.spans
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::Delivered))
            .filter_map(|s| {
                published
                    .get(&s.id)
                    .map(|&t0| s.at_us.saturating_sub(t0) as f64 / 1_000.0)
            })
            .collect()
    }

    /// Per-event hop counts: for every id with at least one delivery, the
    /// number of distinct peers its copies visited beyond the publisher.
    pub fn hop_counts(&self) -> Vec<f64> {
        let mut nodes: BTreeMap<TraceId, BTreeSet<u64>> = BTreeMap::new();
        let mut delivered: BTreeSet<TraceId> = BTreeSet::new();
        for span in &self.spans {
            nodes.entry(span.id).or_default().insert(span.node);
            if matches!(span.kind, SpanKind::Delivered) {
                delivered.insert(span.id);
            }
        }
        delivered
            .iter()
            .map(|id| (nodes[id].len().saturating_sub(1)) as f64)
            .collect()
    }

    /// Feeds every end-to-end latency sample into a fresh
    /// [`WindowedHistogram`] sized to hold them all.
    pub fn latency_histogram(&self) -> WindowedHistogram {
        let samples = self.latencies_ms();
        let mut histogram = WindowedHistogram::with_capacity(samples.len().max(1));
        for sample in samples {
            histogram.record(sample);
        }
        histogram
    }

    /// A human-readable timeline of one event: one line per span, with
    /// registered peer names substituted for raw handles.
    pub fn timeline(&self, id: TraceId) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for span in self.trace_of(id) {
            let place = self.node_name(span.node);
            let what = match span.kind {
                SpanKind::Published => "published".to_owned(),
                SpanKind::WireOut { to } => format!("wire-out -> {}", self.describe_target(to)),
                SpanKind::WireIn { from } => format!("wire-in <- {}", self.describe_target(from)),
                SpanKind::MeshRelay { to } => format!("mesh-relay -> {}", self.describe_target(to)),
                SpanKind::FanDown { to } => format!("fan-down -> {}", self.describe_target(to)),
                SpanKind::Delivered => "delivered".to_owned(),
                SpanKind::Dropped { cause } => format!("dropped ({cause})"),
            };
            let _ = writeln!(out, "[{:>10.3}ms] {place}: {what}", span.at_us as f64 / 1_000.0);
        }
        out
    }

    fn describe_target(&self, node: u64) -> String {
        if node == BROADCAST {
            "broadcast".to_owned()
        } else {
            self.node_name(node)
        }
    }
}

impl Default for TraceCollector {
    fn default() -> Self {
        TraceCollector::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: TraceId, at_us: u64, node: u64, kind: SpanKind) -> TraceSpan {
        TraceSpan {
            id,
            at_us,
            node,
            kind,
        }
    }

    #[test]
    fn trace_ids_roundtrip_the_wire_form() {
        let id = TraceId {
            origin: 0xDEAD_BEEF,
            seq: 42,
        };
        assert_eq!(TraceId::from_wire(&id.to_wire()), Some(id));
        assert_eq!(TraceId::from_wire("nonsense"), None);
        assert_eq!(TraceId::from_wire("12:zz"), None);
        let ids = vec![id, TraceId { origin: 1, seq: 2 }];
        assert_eq!(TraceId::decode_list(&TraceId::encode_list(&ids)), ids);
        assert_eq!(
            TraceId::decode_list("garbage,1:2"),
            vec![TraceId { origin: 1, seq: 2 }]
        );
    }

    #[test]
    fn allocation_is_per_origin_and_sequential() {
        let mut collector = TraceCollector::with_capacity(8);
        assert_eq!(collector.allocate(7), TraceId { origin: 7, seq: 1 });
        assert_eq!(collector.allocate(7), TraceId { origin: 7, seq: 2 });
        assert_eq!(collector.allocate(9), TraceId { origin: 9, seq: 1 });
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut collector = TraceCollector::with_capacity(2);
        let id = TraceId { origin: 1, seq: 1 };
        for at in 0..5u64 {
            collector.record(span(id, at, 1, SpanKind::Published));
        }
        assert_eq!(collector.len(), 2);
        assert_eq!(collector.dropped_records(), 3);
        let kept: Vec<u64> = collector.spans().map(|s| s.at_us).collect();
        assert_eq!(kept, vec![3, 4], "oldest spans leave first");
        collector.clear();
        assert!(collector.is_empty());
        assert_eq!(collector.dropped_records(), 0);
    }

    /// The span ring at a mega-scale record count: a 4096-capacity collector
    /// fed 20 000 spans holds exactly the newest 4096 in order and accounts
    /// for every eviction.
    #[test]
    fn ring_stays_bounded_at_twenty_thousand_spans() {
        const CAPACITY: usize = 4_096;
        const TOTAL: u64 = 20_000;
        let mut collector = TraceCollector::with_capacity(CAPACITY);
        let id = TraceId { origin: 1, seq: 1 };
        for at in 0..TOTAL {
            collector.record(span(id, at, 1, SpanKind::Published));
        }
        assert_eq!(collector.len(), CAPACITY);
        assert_eq!(collector.dropped_records(), TOTAL - CAPACITY as u64);
        let kept: Vec<u64> = collector.spans().map(|s| s.at_us).collect();
        assert_eq!(kept.first().copied(), Some(TOTAL - CAPACITY as u64));
        assert_eq!(kept.last().copied(), Some(TOTAL - 1));
        assert!(
            kept.windows(2).all(|w| w[1] == w[0] + 1),
            "the retained window is contiguous and ordered"
        );
    }

    #[test]
    fn trace_of_reconstructs_the_ordered_path() {
        let mut collector = TraceCollector::with_capacity(64);
        let id = collector.allocate(0xA);
        let other = collector.allocate(0xB);
        collector.record(span(id, 0, 0xA, SpanKind::Published));
        collector.record(span(other, 1, 0xB, SpanKind::Published));
        collector.record(span(id, 2, 0xA, SpanKind::WireOut { to: 0xC }));
        collector.record(span(id, 5, 0xC, SpanKind::WireIn { from: 0xA }));
        collector.record(span(id, 6, 0xC, SpanKind::Delivered));
        let path = collector.trace_of(id);
        assert_eq!(path.len(), 4);
        assert!(path.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        assert_eq!(collector.known_ids(), vec![id, other]);
    }

    #[test]
    fn why_missing_classifies_delivery_and_wire_loss() {
        let mut collector = TraceCollector::with_capacity(64);
        let id = collector.allocate(0xA);
        collector.record(span(id, 0, 0xA, SpanKind::Published));
        collector.record(span(id, 1, 0xA, SpanKind::WireOut { to: 0xC }));
        collector.record(span(id, 1, 0xA, SpanKind::WireOut { to: 0xD }));
        collector.record(span(id, 4, 0xC, SpanKind::WireIn { from: 0xA }));
        collector.record(span(id, 5, 0xC, SpanKind::Delivered));
        assert!(collector.why_missing(0xC, id).is_delivered());
        // 0xD's copy was sent but never arrived: lost on the wire.
        match collector.why_missing(0xD, id) {
            DeliveryVerdict::LostOnWire { last_send } => {
                assert_eq!(last_send.send_target(), Some(0xD));
            }
            other => panic!("expected LostOnWire, got {other}"),
        }
        // An uninvolved peer is *also* explained by that vanished copy (it
        // could have been the relay hop toward them).
        assert!(matches!(
            collector.why_missing(0xE, id),
            DeliveryVerdict::LostOnWire { .. }
        ));
        // Once 0xD's copy lands too, nothing was lost anywhere: a subscriber
        // the plan never covered gets a NeverRouted verdict.
        collector.record(span(id, 6, 0xD, SpanKind::WireIn { from: 0xA }));
        collector.record(span(id, 7, 0xD, SpanKind::Delivered));
        assert_eq!(
            collector.why_missing(0xE, id),
            DeliveryVerdict::NeverRouted {
                last_span: span(id, 7, 0xD, SpanKind::Delivered)
            }
        );
        assert_eq!(
            collector.why_missing(0xC, TraceId { origin: 9, seq: 9 }),
            DeliveryVerdict::NeverPublished
        );
    }

    #[test]
    fn why_missing_blames_upstream_wire_loss() {
        // publisher -> rendezvous copy vanished; the subscriber never saw a
        // thing, but the verdict still names the exact dead hop.
        let mut collector = TraceCollector::with_capacity(64);
        let id = collector.allocate(0xA);
        collector.record(span(id, 0, 0xA, SpanKind::Published));
        collector.record(span(id, 1, 0xA, SpanKind::WireOut { to: 0xF0 }));
        match collector.why_missing(0x5, id) {
            DeliveryVerdict::LostOnWire { last_send } => {
                assert_eq!(last_send.send_target(), Some(0xF0));
                assert_eq!(last_send.node, 0xA);
            }
            other => panic!("expected LostOnWire, got {other}"),
        }
    }

    #[test]
    fn why_missing_reports_local_drops() {
        let mut collector = TraceCollector::with_capacity(64);
        let id = collector.allocate(0xA);
        collector.record(span(id, 0, 0xA, SpanKind::Published));
        collector.record(span(id, 1, 0xA, SpanKind::WireOut { to: 0xC }));
        collector.record(span(id, 2, 0xC, SpanKind::WireIn { from: 0xA }));
        collector.record(span(
            id,
            2,
            0xC,
            SpanKind::Dropped {
                cause: DropCause::Duplicate,
            },
        ));
        match collector.why_missing(0xC, id) {
            DeliveryVerdict::DroppedAt { span } => {
                assert_eq!(
                    span.kind,
                    SpanKind::Dropped {
                        cause: DropCause::Duplicate
                    }
                );
            }
            other => panic!("expected DroppedAt, got {other}"),
        }
    }

    #[test]
    fn latency_and_hop_accounting() {
        let mut collector = TraceCollector::with_capacity(64);
        let id = collector.allocate(0xA);
        collector.record(span(id, 1_000, 0xA, SpanKind::Published));
        collector.record(span(id, 1_100, 0xA, SpanKind::WireOut { to: 0xB }));
        collector.record(span(id, 2_000, 0xB, SpanKind::WireIn { from: 0xA }));
        collector.record(span(id, 2_200, 0xB, SpanKind::FanDown { to: 0xC }));
        collector.record(span(id, 3_000, 0xC, SpanKind::WireIn { from: 0xB }));
        collector.record(span(id, 3_500, 0xC, SpanKind::Delivered));
        assert_eq!(collector.delivery_latency_us(0xC, id), Some(2_500));
        assert_eq!(collector.delivery_latency_us(0xB, id), None);
        assert_eq!(collector.latencies_ms(), vec![2.5]);
        assert_eq!(collector.hop_counts(), vec![2.0]);
        let histogram = collector.latency_histogram();
        assert_eq!(histogram.len(), 1);
        assert!((histogram.summary().p50 - 2.5).abs() < 1e-9);
    }

    #[test]
    fn timeline_uses_registered_names() {
        let mut collector = TraceCollector::with_capacity(64);
        collector.register_node(0xA, "shop-0");
        collector.register_node(0xB, "rdv-0");
        let id = collector.allocate(0xA);
        collector.record(span(id, 0, 0xA, SpanKind::Published));
        collector.record(span(id, 10, 0xA, SpanKind::WireOut { to: 0xB }));
        let text = collector.timeline(id);
        assert!(text.contains("shop-0: published"));
        assert!(text.contains("wire-out -> rdv-0"));
        assert_eq!(collector.node_name(0xF), "peer-f");
    }
}
