//! Offline stand-in for the `bytes` crate: a cheaply clonable, immutable,
//! shared byte buffer with the subset of the `Bytes` API this workspace uses.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning is O(1).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer borrowing nothing: the static slice is copied once into the
    /// shared allocation (the real crate borrows it; the semantics are the
    /// same for immutable data).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copies `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// The number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let c = Bytes::from_static(b"\x01\x02\x03");
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![9u8; 1024]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn clone_is_refcount_only() {
        // A clone must never copy the payload: it bumps the shared
        // allocation's refcount and nothing else, no matter the size.
        let a = Bytes::from(vec![7u8; 1 << 20]);
        assert_eq!(std::sync::Arc::strong_count(&a.data), 1);
        let clones: Vec<Bytes> = (0..64).map(|_| a.clone()).collect();
        assert_eq!(std::sync::Arc::strong_count(&a.data), 65);
        assert!(clones.iter().all(|c| c.as_ptr() == a.as_ptr()));
        drop(clones);
        assert_eq!(std::sync::Arc::strong_count(&a.data), 1);
    }

    #[test]
    fn copies_detach_from_the_source() {
        // `Bytes` is immutable, so clone-then-mutate hazards can only come
        // from aliasing the *source* buffer. Construction must snapshot.
        let mut src = vec![1u8, 2, 3];
        let snapshot = Bytes::copy_from_slice(&src);
        let via_slice = Bytes::from(&src[..]);
        src[0] = 99;
        src.push(4);
        assert_eq!(snapshot, [1u8, 2, 3][..]);
        assert_eq!(via_slice, [1u8, 2, 3][..]);
        assert_eq!(Bytes::from(src), [99u8, 2, 3, 4][..]);
    }

    #[test]
    fn deref_gives_slice_methods() {
        let a = Bytes::from("hello".to_owned());
        assert_eq!(&a[1..3], b"el");
        assert_eq!(a.to_vec(), b"hello");
    }
}
