//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace uses: non-generic structs with named fields and
//! non-generic enums whose variants are unit, newtype, tuple or struct
//! shaped. No `#[serde(...)]` attributes are supported.
//!
//! The implementation parses the item's token stream by hand (no `syn`) and
//! emits the impl as source text, which keeps the shim dependency-free.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// item model + parser
// ---------------------------------------------------------------------------

enum Item {
    /// A struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// An enum; each variant is (name, shape).
    Enum {
        name: String,
        variants: Vec<(String, VariantShape)>,
    },
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Skips attributes (`#[...]`, covering doc comments) and visibility
/// (`pub`, `pub(...)`) starting at `i`; returns the next index.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parses the named fields of a brace-delimited group, returning field names.
fn parse_named_fields(group: &TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            panic!(
                "serde_derive shim: expected field name, got {:?}",
                tokens.get(i).map(|t| t.to_string())
            );
        };
        fields.push(name.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!(
                "serde_derive shim: expected ':' after field, got {:?}",
                other.map(|t| t.to_string())
            ),
        }
        // Skip the type: everything up to a comma outside angle brackets.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a paren-delimited tuple group.
fn count_tuple_fields(group: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.clone().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_tokens_since_comma = true;
    for token in &tokens {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens_since_comma = false;
            }
            _ => saw_tokens_since_comma = true,
        }
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(group: &TokenStream) -> Vec<(String, VariantShape)> {
    let tokens: Vec<TokenTree> = group.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            panic!(
                "serde_derive shim: expected variant name, got {:?}",
                tokens.get(i).map(|t| t.to_string())
            );
        };
        let name = name.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(&g.stream()))
            }
            _ => VariantShape::Unit,
        };
        variants.push((name, shape));
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!(
            "serde_derive shim: expected item keyword, got {:?}",
            other.map(|t| t.to_string())
        ),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!(
            "serde_derive shim: expected item name, got {:?}",
            other.map(|t| t.to_string())
        ),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generics on `{name}` are not supported");
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: parse_named_fields(&g.stream()),
            },
            _ => panic!("serde_derive shim: only structs with named fields are supported (`{name}`)"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(&g.stream()),
            },
            _ => panic!("serde_derive shim: malformed enum `{name}`"),
        },
        other => panic!("serde_derive shim: unsupported item kind `{other}`"),
    }
}

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

/// Derives `serde::ser::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut out = String::new();
            out.push_str(&format!(
                "let mut __state = ::serde::ser::Serializer::serialize_struct(__serializer, \"{name}\", {}usize)?;\n",
                fields.len()
            ));
            for field in &fields {
                out.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __state, \"{field}\", &self.{field})?;\n"
                ));
            }
            out.push_str("::serde::ser::SerializeStruct::end(__state)\n");
            format!(
                "impl ::serde::ser::Serialize for {name} {{ {} }}",
                serialize_fn(&out)
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (index, (variant, shape)) in variants.iter().enumerate() {
                match shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{variant} => ::serde::ser::Serializer::serialize_unit_variant(__serializer, \"{name}\", {index}u32, \"{variant}\"),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{variant}(__f0) => ::serde::ser::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {index}u32, \"{variant}\", __f0),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                        let mut arm = format!(
                            "{name}::{variant}({}) => {{ let mut __state = ::serde::ser::Serializer::serialize_tuple_variant(__serializer, \"{name}\", {index}u32, \"{variant}\", {arity}usize)?;\n",
                            binders.join(", ")
                        );
                        for binder in &binders {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(&mut __state, {binder})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeTupleVariant::end(__state) },\n");
                        arms.push_str(&arm);
                    }
                    VariantShape::Struct(fields) => {
                        let mut arm = format!(
                            "{name}::{variant} {{ {} }} => {{ let mut __state = ::serde::ser::Serializer::serialize_struct_variant(__serializer, \"{name}\", {index}u32, \"{variant}\", {}usize)?;\n",
                            fields.join(", "),
                            fields.len()
                        );
                        for field in fields {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(&mut __state, \"{field}\", {field})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeStructVariant::end(__state) },\n");
                        arms.push_str(&arm);
                    }
                }
            }
            let body = format!("match self {{ {arms} }}");
            format!(
                "impl ::serde::ser::Serialize for {name} {{ {} }}",
                serialize_fn(&body)
            )
        }
    };
    body.parse()
        .expect("serde_derive shim: generated invalid Serialize impl")
}

fn serialize_fn(body: &str) -> String {
    format!(
        "fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{ {body} }}"
    )
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

/// Emits the body of a `visit_map` that builds `constructor { fields }`.
/// `error_ty` is the in-scope error type expression (e.g. `__A::Error`).
fn visit_map_body(constructor: &str, fields: &[String], error_ty: &str) -> String {
    let mut out = String::new();
    for (k, _) in fields.iter().enumerate() {
        out.push_str(&format!("let mut __field{k} = ::core::option::Option::None;\n"));
    }
    out.push_str(
        "while let ::core::option::Option::Some(__key) = __map.next_key::<::std::string::String>()? {\n\
         match __key.as_str() {\n",
    );
    for (k, field) in fields.iter().enumerate() {
        out.push_str(&format!(
            "\"{field}\" => {{ __field{k} = ::core::option::Option::Some(__map.next_value()?); }}\n"
        ));
    }
    out.push_str("_ => { let _ = __map.next_value::<::serde::de::IgnoredAny>()?; }\n} }\n");
    out.push_str(&format!("::core::result::Result::Ok({constructor} {{\n"));
    for (k, field) in fields.iter().enumerate() {
        out.push_str(&format!(
            "{field}: match __field{k} {{ ::core::option::Option::Some(__v) => __v, \
             ::core::option::Option::None => return ::core::result::Result::Err(\
             <{error_ty} as ::serde::de::Error>::missing_field(\"{field}\")) }},\n"
        ));
    }
    out.push_str("})\n");
    out
}

/// Derives `serde::de::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let generated = match parse_item(input) {
        Item::Struct { name, fields } => {
            let field_list: Vec<String> = fields.iter().map(|f| format!("\"{f}\"")).collect();
            let map_body = visit_map_body(&name, &fields, "__A::Error");
            format!(
                "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
                 fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D) \
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 #[allow(unused_imports)] use ::serde::de::{{MapAccess as _, SeqAccess as _, EnumAccess as _, VariantAccess as _}};\n\
                 struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{ __f.write_str(\"struct {name}\") }}\n\
                 fn visit_map<__A: ::serde::de::MapAccess<'de>>(self, mut __map: __A) \
                 -> ::core::result::Result<{name}, __A::Error> {{\n{map_body}}}\n\
                 }}\n\
                 ::serde::de::Deserializer::deserialize_struct(__deserializer, \"{name}\", &[{field_names}], __Visitor)\n\
                 }}\n}}",
                field_names = field_list.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let variant_list: Vec<String> = variants.iter().map(|(v, _)| format!("\"{v}\"")).collect();
            let mut arms = String::new();
            for (variant, shape) in &variants {
                match shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "\"{variant}\" => {{ __data.unit_variant()?; ::core::result::Result::Ok({name}::{variant}) }}\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "\"{variant}\" => ::core::result::Result::Ok({name}::{variant}(__data.newtype_variant()?)),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let mut seq_body = String::new();
                        for k in 0..*arity {
                            seq_body.push_str(&format!(
                                "let __f{k} = match __seq.next_element()? {{ \
                                 ::core::option::Option::Some(__v) => __v, \
                                 ::core::option::Option::None => return ::core::result::Result::Err(\
                                 <__A2::Error as ::serde::de::Error>::invalid_length({k}, &\"tuple variant {variant}\")) }};\n"
                            ));
                        }
                        let binders: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                        arms.push_str(&format!(
                            "\"{variant}\" => {{\n\
                             struct __TupleVisitor;\n\
                             impl<'de> ::serde::de::Visitor<'de> for __TupleVisitor {{\n\
                             type Value = {name};\n\
                             fn visit_seq<__A2: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A2) \
                             -> ::core::result::Result<{name}, __A2::Error> {{\n\
                             {seq_body}\
                             ::core::result::Result::Ok({name}::{variant}({binder_list}))\n\
                             }}\n}}\n\
                             __data.tuple_variant({arity}usize, __TupleVisitor)\n\
                             }}\n",
                            binder_list = binders.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let field_list: Vec<String> = fields.iter().map(|f| format!("\"{f}\"")).collect();
                        let map_body = visit_map_body(&format!("{name}::{variant}"), fields, "__A2::Error");
                        arms.push_str(&format!(
                            "\"{variant}\" => {{\n\
                             struct __StructVisitor;\n\
                             impl<'de> ::serde::de::Visitor<'de> for __StructVisitor {{\n\
                             type Value = {name};\n\
                             fn visit_map<__A2: ::serde::de::MapAccess<'de>>(self, mut __map: __A2) \
                             -> ::core::result::Result<{name}, __A2::Error> {{\n{map_body}}}\n\
                             }}\n\
                             __data.struct_variant(&[{field_names}], __StructVisitor)\n\
                             }}\n",
                            field_names = field_list.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
                 fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D) \
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 #[allow(unused_imports)] use ::serde::de::{{MapAccess as _, SeqAccess as _, EnumAccess as _, VariantAccess as _}};\n\
                 struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{ __f.write_str(\"enum {name}\") }}\n\
                 fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, __access: __A) \
                 -> ::core::result::Result<{name}, __A::Error> {{\n\
                 let (__variant, __data): (::std::string::String, _) = __access.variant()?;\n\
                 match __variant.as_str() {{\n{arms}\
                 __other => ::core::result::Result::Err(<__A::Error as ::serde::de::Error>::unknown_variant(__other, &[{variant_names}])),\n\
                 }}\n}}\n}}\n\
                 ::serde::de::Deserializer::deserialize_enum(__deserializer, \"{name}\", &[{variant_names}], __Visitor)\n\
                 }}\n}}",
                variant_names = variant_list.join(", ")
            )
        }
    };
    generated
        .parse()
        .expect("serde_derive shim: generated invalid Deserialize impl")
}
