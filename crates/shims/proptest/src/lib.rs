//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace uses: the [`proptest!`] test macro,
//! `prop_assert*!` assertions, strategies for regex-like string patterns
//! (a small subset of the regex syntax), numeric ranges, tuples,
//! `collection::vec`, `option::of`, and `any::<T>()`.
//!
//! Each property runs a fixed number of deterministic cases (derived from the
//! test name), so failures are reproducible run-to-run. There is no input
//! shrinking: the failing inputs are included in the panic message instead.
//!
//! Setting the `PROPTEST_SEED` environment variable (a `u64`) mixes an extra
//! pinned seed into every property's case stream: CI pins it so a red run
//! names the exact seed, and re-exporting the same value locally replays the
//! identical cases. Unset, the per-test-name stream is used (also
//! deterministic).

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Number of cases each property is exercised with.
pub const NUM_CASES: u32 = 64;

/// Error produced by a failing `prop_assert*!`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

// ---------------------------------------------------------------------------
// deterministic test RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 generator used to produce test cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

/// The pinned seed from the `PROPTEST_SEED` environment variable, if set to
/// a parseable `u64`. Read once per process, so every property in a test
/// binary sees the same pin (and the pin a failure message names is the pin
/// that actually generated the failing case).
pub fn env_seed() -> Option<u64> {
    static PINNED: std::sync::OnceLock<Option<u64>> = std::sync::OnceLock::new();
    *PINNED.get_or_init(|| std::env::var("PROPTEST_SEED").ok()?.trim().parse().ok())
}

impl TestRng {
    /// Seeds the generator from an arbitrary string (the test name), mixed
    /// with the pinned [`env_seed`] when one is exported.
    pub fn deterministic(name: &str) -> Self {
        TestRng::with_pin(name, env_seed())
    }

    /// [`TestRng::deterministic`] with an explicit pin instead of the
    /// environment's.
    pub fn with_pin(name: &str, pin: Option<u64>) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        if let Some(pinned) = pin {
            seed ^= pinned.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        TestRng { state: seed }
    }

    /// The next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform value in `[lo, hi]`.
    pub fn in_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            self.next_u64()
        } else {
            lo + self.below(span + 1)
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// strategies
// ---------------------------------------------------------------------------

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value generated.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
}

/// Full-range uniform values (the `any::<T>()` strategy).
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy wrapper for [`Arbitrary`] types.
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(pub PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

/// Numeric-module strategies (`proptest::num::i64::ANY` and friends).
pub mod num {
    /// Strategies over `i64`.
    pub mod i64 {
        use std::marker::PhantomData;
        /// The full-range `i64` strategy.
        pub const ANY: crate::Any<i64> = crate::Any(PhantomData);
    }
    /// Strategies over `u64`.
    pub mod u64 {
        use std::marker::PhantomData;
        /// The full-range `u64` strategy.
        pub const ANY: crate::Any<u64> = crate::Any(PhantomData);
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy generating `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// A strategy generating `Option`s of an inner strategy.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `proptest::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

// ---------------------------------------------------------------------------
// regex-subset string strategy
// ---------------------------------------------------------------------------

/// One atom of the pattern subset: a set of candidate chars plus repetition.
#[derive(Debug, Clone)]
struct Atom {
    choices: CharClass,
    min: usize,
    max: usize,
}

#[derive(Debug, Clone)]
enum CharClass {
    /// Explicit candidates (from a literal or a `[...]` class).
    Set(Vec<char>),
    /// `.` / `\PC`: any printable character (ASCII + a sprinkle of unicode).
    Printable,
}

/// Draws one printable character: mostly ASCII, with a sprinkle of non-ASCII
/// so unicode handling is exercised.
fn printable_char(rng: &mut TestRng) -> char {
    const POOL: &[char] = &['é', 'ß', 'ü', 'Ω', '→', '€', '☃', '⛷', '山', '界', '𝛼'];
    if rng.below(5) == 0 {
        POOL[rng.below(POOL.len() as u64) as usize]
    } else {
        // Printable ASCII, space through tilde.
        char::from_u32(rng.in_range_u64(0x20, 0x7E) as u32).unwrap()
    }
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let class = match chars[i] {
            '.' => {
                i += 1;
                CharClass::Printable
            }
            '\\' => {
                // Only the `\PC` ("not a control character") escape and
                // escaped literals are supported.
                match chars.get(i + 1) {
                    Some('P') => {
                        i += 3; // consume \ P <category>
                        CharClass::Printable
                    }
                    Some(&c) => {
                        i += 2;
                        CharClass::Set(vec![c])
                    }
                    None => panic!("trailing backslash in pattern {pattern:?}"),
                }
            }
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = chars[i];
                    if c == '\\' {
                        i += 1;
                        set.push(chars[i]);
                        i += 1;
                    } else if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&n| n != ']') {
                        let hi = chars[i + 2];
                        for code in c as u32..=hi as u32 {
                            if let Some(ch) = char::from_u32(code) {
                                set.push(ch);
                            }
                        }
                        i += 3;
                    } else {
                        set.push(c);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated character class in {pattern:?}");
                i += 1; // consume ']'
                CharClass::Set(set)
            }
            c => {
                i += 1;
                CharClass::Set(vec![c])
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated quantifier")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (lo.trim().parse().unwrap(), hi.trim().parse().unwrap()),
                    None => {
                        let n = body.trim().parse().unwrap();
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        atoms.push(Atom {
            choices: class,
            min,
            max,
        });
    }
    atoms
}

impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = rng.in_range_u64(atom.min as u64, atom.max as u64) as usize;
            for _ in 0..count {
                match &atom.choices {
                    CharClass::Printable => out.push(printable_char(rng)),
                    CharClass::Set(set) => {
                        assert!(!set.is_empty(), "empty character class");
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`NUM_CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "property {} failed at case {}/{} (PROPTEST_SEED={}): {}\n  inputs: {}",
                            stringify!($name), __case + 1, $crate::NUM_CASES,
                            match $crate::env_seed() {
                                ::std::option::Option::Some(s) => s.to_string(),
                                ::std::option::Option::None => "unset".to_owned(),
                            },
                            e, __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), left, right
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn string_patterns_respect_classes_and_bounds() {
        let mut rng = TestRng::deterministic("shape");
        for _ in 0..200 {
            let s = Strategy::generate(&"[A-Za-z][A-Za-z0-9_:-]{0,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 13);
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s
                .chars()
                .skip(1)
                .all(|c| c.is_ascii_alphanumeric() || "_:-".contains(c)));

            let t = Strategy::generate(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&t.chars().count()));
            assert!(t.chars().all(|c| c.is_ascii_lowercase()));

            let p = Strategy::generate(&"\\PC*", &mut rng);
            assert!(p.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn ranges_tuples_vecs_and_options_generate() {
        let mut rng = TestRng::deterministic("combined");
        for _ in 0..200 {
            let (a, b) = Strategy::generate(&(0usize..4, -10.0f64..10.0), &mut rng);
            assert!(a < 4);
            assert!((-10.0..10.0).contains(&b));
            let v = Strategy::generate(&crate::collection::vec(crate::any::<u8>(), 0..5), &mut rng);
            assert!(v.len() < 5);
            let _o = Strategy::generate(&crate::option::of(".{0,3}"), &mut rng);
        }
    }

    proptest! {
        /// The macro itself works end to end.
        #[test]
        fn macro_round_trips(x in 0u32..1000, s in "[a-z]{0,6}") {
            prop_assert!(x < 1000);
            prop_assert_eq!(s.len(), s.chars().count());
        }
    }

    #[test]
    fn pinned_seed_changes_the_case_stream_reproducibly() {
        // Exercised through the explicit-pin constructor: mutating the
        // process environment would race the sibling tests (which read the
        // cached env pin on every TestRng::deterministic call).
        let unpinned = TestRng::with_pin("seed-check", None).next_u64();
        let pinned_a = TestRng::with_pin("seed-check", Some(424_242)).next_u64();
        let pinned_b = TestRng::with_pin("seed-check", Some(424_242)).next_u64();
        assert_eq!(pinned_a, pinned_b, "a pinned seed is reproducible");
        assert_ne!(pinned_a, unpinned, "the pin actually changes the stream");
        assert_ne!(
            TestRng::with_pin("seed-check", Some(1)).next_u64(),
            pinned_a,
            "different pins give different streams"
        );
        // The environment hookup itself: deterministic() follows env_seed().
        assert_eq!(
            TestRng::deterministic("seed-check").next_u64(),
            TestRng::with_pin("seed-check", crate::env_seed()).next_u64()
        );
    }
}
