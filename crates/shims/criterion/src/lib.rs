//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro and builder surface this workspace's benches use. The
//! statistics machinery of the real crate is replaced by a fixed, small
//! number of timed iterations per benchmark with a mean/min/max report —
//! enough to chart trends (the figures of the paper reproduction are computed
//! from *virtual* time inside the benches themselves; wall-clock numbers here
//! only show the simulator's real cost).
//!
//! Benchmark executables are registered with `harness = false`; when run by
//! `cargo test` (which passes no `--bench` flag) they exit immediately so the
//! tier-1 test command stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many timed iterations each benchmark runs.
const ITERATIONS: u32 = 3;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Begins a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, &mut f);
        self
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's measurement time is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks a function against one input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, &mut |b| f(b, input));
        self
    }

    /// Benchmarks a function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name.into());
        run_benchmark(&label, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { samples: Vec::new() };
    f(&mut bencher);
    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("  {label}: no samples");
        return;
    }
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "  {label}: mean {:.3} ms (min {:.3}, max {:.3}, n={})",
        mean.as_secs_f64() * 1e3,
        min.as_secs_f64() * 1e3,
        max.as_secs_f64() * 1e3,
        samples.len()
    );
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Builds an id from a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Batch sizing hints (ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Times closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..ITERATIONS {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over inputs built by `setup` (setup time excluded).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..ITERATIONS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a group-runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro. Exits immediately
/// unless run under `cargo bench` (which passes `--bench`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !::std::env::args().any(|arg| arg == "--bench") {
                // Running under `cargo test`: nothing to verify here.
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10).measurement_time(Duration::from_secs(1));
        group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &n| b.iter(|| n * n));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn api_surface_works() {
        let mut criterion = Criterion::default();
        sample_bench(&mut criterion);
        criterion.bench_function("top-level", |b| b.iter(|| black_box(2 + 2)));
    }
}
