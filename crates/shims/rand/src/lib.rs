//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this workspace uses: the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits and a deterministic
//! [`rngs::StdRng`] built on xoshiro256** seeded through SplitMix64. The
//! generator is *not* cryptographic; determinism and uniformity are the only
//! goals, matching what the discrete-event simulator needs.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// The next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from an [`RngCore`] (the shim's
/// replacement for `Standard: Distribution<T>`).
pub trait FromRng {
    /// Draws one uniform value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! from_rng_ints {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_rng_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for u128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl FromRng for i128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::from_rng(rng) as i128
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly (the shim's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, bound)` without modulo bias worth caring about for
/// simulation purposes (bias is < 2^-32 for the bounds used here).
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % bound
}

macro_rules! sample_range_ints {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}
sample_range_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_range_floats {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as FromRng>::from_rng(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
sample_range_floats!(f32, f64);

/// Convenience methods layered on any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..9);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(0u64..=5);
            assert!(y <= 5);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn dyn_rng_core_is_usable() {
        let mut rng = StdRng::seed_from_u64(4);
        let dynamic: &mut dyn super::RngCore = &mut rng;
        let _ = dynamic.next_u64();
        let _: u128 = dynamic.gen();
    }
}
