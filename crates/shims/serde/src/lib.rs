//! Offline stand-in for the `serde` crate.
//!
//! Implements the serde 1.x data-model traits this workspace programs
//! against: the [`ser`] and [`de`] trait families, the
//! [`forward_to_deserialize_any!`] macro, implementations for the std types
//! the codebase serialises, and re-exports of the derive macros from the
//! sibling `serde_derive` shim.

pub mod de;
pub mod ser;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};
#[allow(unused_imports)]
pub use serde_derive::{Deserialize, Serialize};

/// Expands to `deserialize_*` methods that forward to `deserialize_any`,
/// mirroring serde's macro of the same name. Must be invoked inside an
/// `impl<'de> Deserializer<'de> for ...` block.
#[macro_export]
macro_rules! forward_to_deserialize_any {
    ($($kind:tt)*) => {
        $( $crate::forward_one_to_deserialize_any!{$kind} )*
    };
}

/// Implementation detail of [`forward_to_deserialize_any!`]: one method.
#[doc(hidden)]
#[macro_export]
macro_rules! forward_one_to_deserialize_any {
    (bool) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_bool}
    };
    (i8) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_i8}
    };
    (i16) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_i16}
    };
    (i32) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_i32}
    };
    (i64) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_i64}
    };
    (i128) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_i128}
    };
    (u8) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_u8}
    };
    (u16) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_u16}
    };
    (u32) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_u32}
    };
    (u64) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_u64}
    };
    (u128) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_u128}
    };
    (f32) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_f32}
    };
    (f64) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_f64}
    };
    (char) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_char}
    };
    (str) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_str}
    };
    (string) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_string}
    };
    (bytes) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_bytes}
    };
    (byte_buf) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_byte_buf}
    };
    (option) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_option}
    };
    (unit) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_unit}
    };
    (seq) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_seq}
    };
    (map) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_map}
    };
    (identifier) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_identifier}
    };
    (ignored_any) => {
        $crate::forward_simple_to_deserialize_any! {deserialize_ignored_any}
    };
    (unit_struct) => {
        fn deserialize_unit_struct<V: $crate::de::Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> ::core::result::Result<V::Value, Self::Error> {
            self.deserialize_any(visitor)
        }
    };
    (newtype_struct) => {
        fn deserialize_newtype_struct<V: $crate::de::Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> ::core::result::Result<V::Value, Self::Error> {
            self.deserialize_any(visitor)
        }
    };
    (tuple) => {
        fn deserialize_tuple<V: $crate::de::Visitor<'de>>(
            self,
            _len: usize,
            visitor: V,
        ) -> ::core::result::Result<V::Value, Self::Error> {
            self.deserialize_any(visitor)
        }
    };
    (tuple_struct) => {
        fn deserialize_tuple_struct<V: $crate::de::Visitor<'de>>(
            self,
            _name: &'static str,
            _len: usize,
            visitor: V,
        ) -> ::core::result::Result<V::Value, Self::Error> {
            self.deserialize_any(visitor)
        }
    };
    (struct) => {
        fn deserialize_struct<V: $crate::de::Visitor<'de>>(
            self,
            _name: &'static str,
            _fields: &'static [&'static str],
            visitor: V,
        ) -> ::core::result::Result<V::Value, Self::Error> {
            self.deserialize_any(visitor)
        }
    };
    (enum) => {
        fn deserialize_enum<V: $crate::de::Visitor<'de>>(
            self,
            _name: &'static str,
            _variants: &'static [&'static str],
            visitor: V,
        ) -> ::core::result::Result<V::Value, Self::Error> {
            self.deserialize_any(visitor)
        }
    };
}

/// Implementation detail: a `(self, visitor)` forwarding method.
#[doc(hidden)]
#[macro_export]
macro_rules! forward_simple_to_deserialize_any {
    ($method:ident) => {
        fn $method<V: $crate::de::Visitor<'de>>(
            self,
            visitor: V,
        ) -> ::core::result::Result<V::Value, Self::Error> {
            self.deserialize_any(visitor)
        }
    };
}
