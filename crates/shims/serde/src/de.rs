//! The deserialisation half of the serde data model.

use std::fmt::Display;
use std::marker::PhantomData;

/// Errors produced by a [`Deserializer`].
pub trait Error: Sized + std::error::Error {
    /// Builds an error from a message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A required field was absent.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }

    /// A field appeared twice.
    fn duplicate_field(field: &'static str) -> Self {
        Self::custom(format_args!("duplicate field `{field}`"))
    }

    /// An enum variant name was not recognised.
    fn unknown_variant(variant: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!(
            "unknown variant `{variant}`, expected one of {expected:?}"
        ))
    }

    /// A compound had the wrong number of elements.
    fn invalid_length(len: usize, expected: &dyn Display) -> Self {
        Self::custom(format_args!("invalid length {len}, expected {expected}"))
    }
}

/// A data structure deserialisable from any serde data format.
pub trait Deserialize<'de>: Sized {
    /// Deserialises `Self` from the given deserialiser.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Marker for types deserialisable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A stateful `Deserialize` (serde's seed mechanism). The only seed this shim
/// ships is `PhantomData<T>`, which behaves like plain `T::deserialize`.
pub trait DeserializeSeed<'de>: Sized {
    /// The produced value.
    type Value;
    /// Deserialises the value.
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// Walks the values a [`Deserializer`] produces.
///
/// Every `visit_*` method defaults to a type-mismatch error; formats call the
/// one matching the input.
pub trait Visitor<'de>: Sized {
    /// The value built by this visitor.
    type Value;

    /// Describes what the visitor expects, for error messages.
    fn expecting(&self, formatter: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        formatter.write_str("a value")
    }

    /// Visits a `bool`.
    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected bool `{v}`")))
    }

    /// Visits a signed integer.
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected integer `{v}`")))
    }

    /// Visits an unsigned integer.
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected unsigned integer `{v}`")))
    }

    /// Visits an `f32` (defaults to widening to `f64`).
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v as f64)
    }

    /// Visits an `f64`.
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected float `{v}`")))
    }

    /// Visits a borrowed string.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected string {v:?}")))
    }

    /// Visits an owned string (defaults to [`Visitor::visit_str`]).
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    /// Visits a unit / null.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected null"))
    }

    /// Visits an absent optional.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected none"))
    }

    /// Visits a present optional.
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(D::Error::custom("unexpected some"))
    }

    /// Visits a newtype struct's inner value.
    fn visit_newtype_struct<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(D::Error::custom("unexpected newtype struct"))
    }

    /// Visits a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(A::Error::custom("unexpected sequence"))
    }

    /// Visits a map.
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(A::Error::custom("unexpected map"))
    }

    /// Visits an enum.
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        Err(A::Error::custom("unexpected enum"))
    }
}

/// A data format that can deserialise any serde-compatible data structure.
///
/// Only [`Deserializer::deserialize_any`] is required; every other method
/// defaults to forwarding to it (self-describing formats, like this
/// workspace's codec, override only what needs type hints).
pub trait Deserializer<'de>: Sized {
    /// Error type of the format.
    type Error: Error;

    /// Deserialises whatever the input contains next.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    crate::forward_to_deserialize_any! {
        bool i8 i16 i32 i64 i128 u8 u16 u32 u64 u128 f32 f64 char str string
        bytes byte_buf option unit unit_struct newtype_struct seq tuple
        tuple_struct map struct enum identifier ignored_any
    }
}

/// Provides access to the elements of a sequence.
pub trait SeqAccess<'de> {
    /// Error type of the format.
    type Error: Error;

    /// Deserialises the next element with a seed.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    /// Deserialises the next element.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    /// A hint of how many elements remain, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

impl<'de, A: SeqAccess<'de> + ?Sized> SeqAccess<'de> for &mut A {
    type Error = A::Error;
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error> {
        (**self).next_element_seed(seed)
    }
}

/// Provides access to the entries of a map.
pub trait MapAccess<'de> {
    /// Error type of the format.
    type Error: Error;

    /// Deserialises the next key with a seed.
    fn next_key_seed<K: DeserializeSeed<'de>>(&mut self, seed: K) -> Result<Option<K::Value>, Self::Error>;

    /// Deserialises the value matching the key just returned.
    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value, Self::Error>;

    /// Deserialises the next key.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    /// Deserialises the next value.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    /// Deserialises the next key/value entry.
    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(key) => Ok(Some((key, self.next_value()?))),
            None => Ok(None),
        }
    }

    /// A hint of how many entries remain, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

impl<'de, A: MapAccess<'de> + ?Sized> MapAccess<'de> for &mut A {
    type Error = A::Error;
    fn next_key_seed<K: DeserializeSeed<'de>>(&mut self, seed: K) -> Result<Option<K::Value>, Self::Error> {
        (**self).next_key_seed(seed)
    }
    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value, Self::Error> {
        (**self).next_value_seed(seed)
    }
}

/// Provides access to the variant of an enum.
pub trait EnumAccess<'de>: Sized {
    /// Error type of the format.
    type Error: Error;
    /// Accessor for the variant's payload.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Deserialises the variant identifier with a seed.
    fn variant_seed<V: DeserializeSeed<'de>>(self, seed: V)
        -> Result<(V::Value, Self::Variant), Self::Error>;

    /// Deserialises the variant identifier.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Provides access to the payload of one enum variant.
pub trait VariantAccess<'de>: Sized {
    /// Error type of the format.
    type Error: Error;

    /// Consumes a unit variant.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// Deserialises a newtype variant's payload with a seed.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value, Self::Error>;

    /// Deserialises a newtype variant's payload.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    /// Visits a tuple variant's payload.
    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value, Self::Error>;

    /// Visits a struct variant's payload.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Conversion of plain values into deserialisers (used for enum variant
/// identifiers).
pub trait IntoDeserializer<'de, E: Error> {
    /// The produced deserialiser.
    type Deserializer: Deserializer<'de, Error = E>;
    /// Performs the conversion.
    fn into_deserializer(self) -> Self::Deserializer;
}

/// A deserialiser over one owned string.
pub struct StringDeserializer<E> {
    value: String,
    marker: PhantomData<E>,
}

impl<'de, E: Error> Deserializer<'de> for StringDeserializer<E> {
    type Error = E;
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
        visitor.visit_string(self.value)
    }
}

impl<'de, E: Error> IntoDeserializer<'de, E> for String {
    type Deserializer = StringDeserializer<E>;
    fn into_deserializer(self) -> StringDeserializer<E> {
        StringDeserializer {
            value: self,
            marker: PhantomData,
        }
    }
}

/// A value that consumes and discards whatever the input contains (used for
/// unknown struct fields).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IgnoredAny;

impl<'de> Deserialize<'de> for IgnoredAny {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct IgnoredVisitor;
        impl<'de> Visitor<'de> for IgnoredVisitor {
            type Value = IgnoredAny;
            fn visit_bool<E: Error>(self, _: bool) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_i64<E: Error>(self, _: i64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_u64<E: Error>(self, _: u64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_f64<E: Error>(self, _: f64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_str<E: Error>(self, _: &str) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_unit<E: Error>(self) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_none<E: Error>(self) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_some<D: Deserializer<'de>>(self, d: D) -> Result<IgnoredAny, D::Error> {
                IgnoredAny::deserialize(d)
            }
            fn visit_newtype_struct<D: Deserializer<'de>>(self, d: D) -> Result<IgnoredAny, D::Error> {
                IgnoredAny::deserialize(d)
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<IgnoredAny, A::Error> {
                while seq.next_element::<IgnoredAny>()?.is_some() {}
                Ok(IgnoredAny)
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<IgnoredAny, A::Error> {
                while map.next_entry::<IgnoredAny, IgnoredAny>()?.is_some() {}
                Ok(IgnoredAny)
            }
        }
        deserializer.deserialize_ignored_any(IgnoredVisitor)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BoolVisitor;
        impl<'de> Visitor<'de> for BoolVisitor {
            type Value = bool;
            fn visit_bool<E: Error>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_bool(BoolVisitor)
    }
}

macro_rules! deserialize_ints {
    ($($t:ty => $method:ident),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct IntVisitor;
                impl<'de> Visitor<'de> for IntVisitor {
                    type Value = $t;
                    fn visit_i64<E: Error>(self, v: i64) -> Result<$t, E> {
                        <$t>::try_from(v)
                            .map_err(|_| E::custom(format_args!("integer `{v}` out of range")))
                    }
                    fn visit_u64<E: Error>(self, v: u64) -> Result<$t, E> {
                        <$t>::try_from(v)
                            .map_err(|_| E::custom(format_args!("integer `{v}` out of range")))
                    }
                }
                deserializer.$method(IntVisitor)
            }
        }
    )*};
}
deserialize_ints! {
    i8 => deserialize_i8,
    i16 => deserialize_i16,
    i32 => deserialize_i32,
    i64 => deserialize_i64,
    u8 => deserialize_u8,
    u16 => deserialize_u16,
    u32 => deserialize_u32,
    u64 => deserialize_u64,
    usize => deserialize_u64,
    isize => deserialize_i64
}

macro_rules! deserialize_floats {
    ($($t:ty => $method:ident),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct FloatVisitor;
                impl<'de> Visitor<'de> for FloatVisitor {
                    type Value = $t;
                    fn visit_f32<E: Error>(self, v: f32) -> Result<$t, E> {
                        Ok(v as $t)
                    }
                    fn visit_f64<E: Error>(self, v: f64) -> Result<$t, E> {
                        Ok(v as $t)
                    }
                    fn visit_i64<E: Error>(self, v: i64) -> Result<$t, E> {
                        Ok(v as $t)
                    }
                    fn visit_u64<E: Error>(self, v: u64) -> Result<$t, E> {
                        Ok(v as $t)
                    }
                }
                deserializer.$method(FloatVisitor)
            }
        }
    )*};
}
deserialize_floats! {
    f32 => deserialize_f32,
    f64 => deserialize_f64
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct CharVisitor;
        impl<'de> Visitor<'de> for CharVisitor {
            type Value = char;
            fn visit_str<E: Error>(self, v: &str) -> Result<char, E> {
                let mut chars = v.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(E::custom(format_args!("expected a single character, got {v:?}"))),
                }
            }
        }
        deserializer.deserialize_char(CharVisitor)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(self, d: D) -> Result<Option<T>, D::Error> {
                T::deserialize(d).map(Some)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for MapVisitor<K, V> {
            type Value = std::collections::BTreeMap<K, V>;
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some((key, value)) = map.next_entry()? {
                    out.insert(key, value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

impl<'de, K, V, H> Deserialize<'de> for std::collections::HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for MapVisitor<K, V, H>
        where
            K: Deserialize<'de> + Eq + std::hash::Hash,
            V: Deserialize<'de>,
            H: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashMap<K, V, H>;
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::HashMap::with_hasher(H::default());
                while let Some((key, value)) = map.next_entry()? {
                    out.insert(key, value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}
