//! The serialisation half of the serde data model.

use std::fmt::Display;

/// Errors produced by a [`Serializer`].
pub trait Error: Sized + std::error::Error {
    /// Builds an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialised into any serde data format.
pub trait Serialize {
    /// Serialises `self` with the given serialiser.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that can serialise any serde-compatible data structure.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type of the format.
    type Error: Error;
    /// Compound state for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound state for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Compound state for tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound state for tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Compound state for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Compound state for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound state for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serialises a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialises an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serialises an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serialises an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serialises an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialises a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serialises a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serialises a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serialises a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialises an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serialises an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialises a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serialises a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialises raw bytes.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serialises `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serialises `Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serialises `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serialises a unit struct.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serialises a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialises a newtype struct.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialises a newtype enum variant.
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begins a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begins a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begins a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins a struct.
    fn serialize_struct(self, name: &'static str, len: usize) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// In-progress sequence serialisation.
pub trait SerializeSeq {
    /// Output produced on success.
    type Ok;
    /// Error type of the format.
    type Error: Error;
    /// Serialises one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress tuple serialisation.
pub trait SerializeTuple {
    /// Output produced on success.
    type Ok;
    /// Error type of the format.
    type Error: Error;
    /// Serialises one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress tuple-struct serialisation.
pub trait SerializeTupleStruct {
    /// Output produced on success.
    type Ok;
    /// Error type of the format.
    type Error: Error;
    /// Serialises one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress tuple-variant serialisation.
pub trait SerializeTupleVariant {
    /// Output produced on success.
    type Ok;
    /// Error type of the format.
    type Error: Error;
    /// Serialises one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress map serialisation.
pub trait SerializeMap {
    /// Output produced on success.
    type Ok;
    /// Error type of the format.
    type Error: Error;
    /// Serialises one key.
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serialises one value.
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Serialises one key/value entry.
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error> {
        self.serialize_key(key)?;
        self.serialize_value(value)
    }
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress struct serialisation.
pub trait SerializeStruct {
    /// Output produced on success.
    type Ok;
    /// Error type of the format.
    type Error: Error;
    /// Serialises one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress struct-variant serialisation.
pub trait SerializeStructVariant {
    /// Output produced on success.
    type Ok;
    /// Error type of the format.
    type Error: Error;
    /// Serialises one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! serialize_primitives {
    ($($t:ty => $method:ident),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        }
    )*};
}
serialize_primitives! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(value) => serializer.serialize_some(value),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (key, value) in self {
            map.serialize_entry(key, value)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (key, value) in self {
            map.serialize_entry(key, value)?;
        }
        map.end()
    }
}
