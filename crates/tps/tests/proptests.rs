//! Property-based tests of the TPS codec and the type registry.

use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use tps::codec;
use tps::TypeRegistry;

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
struct Offer {
    shop: String,
    price: f64,
    days: u32,
    tags: Vec<String>,
    note: Option<String>,
}

proptest! {
    /// Any offer survives a marshal/unmarshal round trip unchanged.
    #[test]
    fn codec_roundtrips_arbitrary_offers(
        shop in ".{0,40}",
        price in -1.0e6f64..1.0e6,
        days in 0u32..10_000,
        tags in proptest::collection::vec(".{0,12}", 0..6),
        note in proptest::option::of(".{0,20}"),
    ) {
        let offer = Offer { shop, price, days, tags, note };
        let bytes = codec::to_vec(&offer).unwrap();
        let back: Offer = codec::from_slice(&bytes).unwrap();
        prop_assert_eq!(back, offer);
    }

    /// Strings with arbitrary unicode and control characters round trip.
    #[test]
    fn codec_roundtrips_arbitrary_strings(s in "\\PC*") {
        let bytes = codec::to_vec(&s).unwrap();
        let back: String = codec::from_slice(&bytes).unwrap();
        prop_assert_eq!(back, s);
    }

    /// Scalars round trip across the full integer range.
    #[test]
    fn codec_roundtrips_integers(value in proptest::num::i64::ANY) {
        let bytes = codec::to_vec(&value).unwrap();
        let back: i64 = codec::from_slice(&bytes).unwrap();
        prop_assert_eq!(back, value);
    }

    /// A subtype payload always projects onto a supertype sharing a subset of
    /// its fields (structural upcast never fails).
    #[test]
    fn structural_upcast_never_fails(shop in ".{0,20}", price in 0.0f64..1000.0, days in 0u32..100) {
        #[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
        struct Super { shop: String, price: f64 }
        let sub = Offer { shop: shop.clone(), price, days, tags: vec![], note: None };
        let bytes = codec::to_vec(&sub).unwrap();
        let projected: Super = codec::from_slice(&bytes).unwrap();
        prop_assert_eq!(projected.shop, shop);
        prop_assert!((projected.price - price).abs() < 1e-9);
    }

    /// The subtype relation is reflexive and respects registered edges, and
    /// `ancestors_of` always contains the type itself and all its parents.
    #[test]
    fn registry_subtyping_invariants(
        edges in proptest::collection::vec((0usize..8, 0usize..8), 0..16)
    ) {
        let name = |i: usize| format!("T{i}");
        let mut registry = TypeRegistry::new();
        for (child, parent) in &edges {
            registry.register_raw(&name(*child), vec![name(*parent)]);
        }
        for i in 0..8 {
            prop_assert!(registry.is_subtype_of(&name(i), &name(i)));
            let ancestors = registry.ancestors_of(&name(i));
            prop_assert!(ancestors.contains(&name(i)));
            for ancestor in &ancestors {
                prop_assert!(registry.is_subtype_of(&name(i), ancestor));
            }
        }
        for (child, parent) in &edges {
            prop_assert!(registry.is_subtype_of(&name(*child), &name(*parent)));
        }
    }
}
