//! The event codec: a small self-describing (JSON-compatible) serde data
//! format used to marshal application-defined event types into wire messages.
//!
//! The paper relies on Java serialization of event objects; here events are
//! any `serde`-serialisable Rust type. The format is *self-describing* and
//! *tolerant*: unknown fields are ignored when deserialising, which is what
//! lets a subscriber to a supertype decode an instance of a subtype (the
//! structural projection behind the Figure 7 delivery semantics).

use serde::de::{self, DeserializeOwned, Deserializer as _, IntoDeserializer, Visitor};
use serde::ser::{self, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Errors raised by the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(String);

impl CodecError {
    fn new(msg: impl Into<String>) -> Self {
        CodecError(msg.into())
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CodecError {}

impl ser::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError(msg.to_string())
    }
}

impl de::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError(msg.to_string())
    }
}

/// Serialises a value to the codec's textual representation.
///
/// # Errors
///
/// Returns [`CodecError`] if the value cannot be represented (e.g. a map with
/// non-string keys).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, CodecError> {
    let mut serializer = Serializer { out: String::new() };
    value.serialize(&mut serializer)?;
    Ok(serializer.out)
}

/// Serialises a value to bytes (UTF-8 of [`to_string`]).
///
/// # Errors
///
/// Returns [`CodecError`] if the value cannot be represented.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, CodecError> {
    to_string(value).map(String::into_bytes)
}

/// Deserialises a value from the codec's textual representation.
///
/// Unknown fields are ignored, which is what allows projecting a subtype's
/// payload onto a supertype.
///
/// # Errors
///
/// Returns [`CodecError`] on syntax errors or type mismatches.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, CodecError> {
    let value = Parser {
        input: text.as_bytes(),
        pos: 0,
    }
    .parse_document()?;
    T::deserialize(ValueDeserializer(value))
}

/// Deserialises a value from bytes.
///
/// # Errors
///
/// Returns [`CodecError`] on invalid UTF-8, syntax errors or type mismatches.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, CodecError> {
    let text = std::str::from_utf8(bytes).map_err(|e| CodecError::new(format!("invalid utf-8: {e}")))?;
    from_str(text)
}

// ---------------------------------------------------------------------------
// value model + parser
// ---------------------------------------------------------------------------

/// A parsed self-describing value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// A string-keyed object (sorted for determinism).
    Object(BTreeMap<String, Value>),
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse_document(mut self) -> Result<Value, CodecError> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.input.len() {
            return Err(CodecError::new("trailing characters after document"));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while matches!(self.input.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, CodecError> {
        self.skip_ws();
        self.input
            .get(self.pos)
            .copied()
            .ok_or_else(|| CodecError::new("unexpected end of input"))
    }

    fn expect(&mut self, byte: u8) -> Result<(), CodecError> {
        if self.peek()? != byte {
            return Err(CodecError::new(format!(
                "expected '{}' at offset {}",
                byte as char, self.pos
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, CodecError> {
        match self.peek()? {
            b'n' => self.parse_keyword("null", Value::Null),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.parse_string()?)),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            _ => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, CodecError> {
        self.skip_ws();
        if self.input[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(CodecError::new(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, CodecError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let byte = *self
                .input
                .get(self.pos)
                .ok_or_else(|| CodecError::new("unterminated string"))?;
            self.pos += 1;
            match byte {
                b'"' => return Ok(out),
                b'\\' => {
                    let escape = *self
                        .input
                        .get(self.pos)
                        .ok_or_else(|| CodecError::new("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .input
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| CodecError::new("truncated unicode escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| CodecError::new("bad escape"))?,
                                16,
                            )
                            .map_err(|_| CodecError::new("bad unicode escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(CodecError::new(format!("unknown escape \\{}", other as char))),
                    }
                }
                _ => {
                    // Re-borrow as UTF-8: collect the full multi-byte sequence.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.input.len() && (self.input[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.input[start..end])
                        .map_err(|_| CodecError::new("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, CodecError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => {
                    self.pos += 1;
                }
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(CodecError::new("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, CodecError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            match self.peek()? {
                b',' => {
                    self.pos += 1;
                }
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(CodecError::new("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, CodecError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(b) = self.input.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| CodecError::new("invalid number"))?;
        if text.is_empty() {
            return Err(CodecError::new(format!("unexpected character at offset {start}")));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| CodecError::new(format!("invalid number '{text}'")))
    }
}

// ---------------------------------------------------------------------------
// serializer
// ---------------------------------------------------------------------------

struct Serializer {
    out: String,
}

impl Serializer {
    fn write_escaped(&mut self, s: &str) {
        self.out.push('"');
        for ch in s.chars() {
            match ch {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\t' => self.out.push_str("\\t"),
                '\r' => self.out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

struct Compound<'a> {
    ser: &'a mut Serializer,
    first: bool,
}

impl<'a> Compound<'a> {
    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.ser.out.push(',');
        }
    }
}

impl<'a> ser::Serializer for &'a mut Serializer {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), CodecError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i16(self, v: i16) -> Result<(), CodecError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i32(self, v: i32) -> Result<(), CodecError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i64(self, v: i64) -> Result<(), CodecError> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), CodecError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u16(self, v: u16) -> Result<(), CodecError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u32(self, v: u32) -> Result<(), CodecError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u64(self, v: u64) -> Result<(), CodecError> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), CodecError> {
        self.serialize_f64(v as f64)
    }
    fn serialize_f64(self, v: f64) -> Result<(), CodecError> {
        if v.is_finite() {
            let mut text = format!("{v}");
            if !text.contains(['.', 'e', 'E']) {
                text.push_str(".0");
            }
            self.out.push_str(&text);
            Ok(())
        } else {
            Err(CodecError::new("cannot serialise non-finite float"))
        }
    }
    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.write_escaped(&v.to_string());
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.write_escaped(v);
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        use serde::ser::SerializeSeq;
        let mut seq = self.serialize_seq(Some(v.len()))?;
        for byte in v {
            seq.serialize_element(byte)?;
        }
        seq.end()
    }
    fn serialize_none(self) -> Result<(), CodecError> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CodecError> {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), CodecError> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        self.serialize_unit()
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
    ) -> Result<(), CodecError> {
        self.serialize_str(variant)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.out.push('{');
        self.write_escaped(variant);
        self.out.push(':');
        value.serialize(&mut *self)?;
        self.out.push('}');
        Ok(())
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>, CodecError> {
        self.out.push('[');
        Ok(Compound {
            ser: self,
            first: true,
        })
    }
    fn serialize_tuple(self, len: usize) -> Result<Compound<'a>, CodecError> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_struct(self, _name: &'static str, len: usize) -> Result<Compound<'a>, CodecError> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, CodecError> {
        self.out.push('{');
        self.write_escaped(variant);
        self.out.push_str(":[");
        Ok(Compound {
            ser: self,
            first: true,
        })
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'a>, CodecError> {
        self.out.push('{');
        Ok(Compound {
            ser: self,
            first: true,
        })
    }
    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<Compound<'a>, CodecError> {
        self.serialize_map(Some(len))
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, CodecError> {
        self.out.push('{');
        self.write_escaped(variant);
        self.out.push_str(":{");
        Ok(Compound {
            ser: self,
            first: true,
        })
    }
}

impl<'a> ser::SerializeSeq for Compound<'a> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        self.sep();
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), CodecError> {
        self.ser.out.push(']');
        Ok(())
    }
}

impl<'a> ser::SerializeTuple for Compound<'a> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), CodecError> {
        ser::SerializeSeq::end(self)
    }
}

impl<'a> ser::SerializeTupleStruct for Compound<'a> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), CodecError> {
        ser::SerializeSeq::end(self)
    }
}

impl<'a> ser::SerializeTupleVariant for Compound<'a> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        self.sep();
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), CodecError> {
        self.ser.out.push_str("]}");
        Ok(())
    }
}

impl<'a> ser::SerializeMap for Compound<'a> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CodecError> {
        self.sep();
        // Keys must serialise to strings.
        let mut key_ser = Serializer { out: String::new() };
        key.serialize(&mut key_ser)?;
        if !key_ser.out.starts_with('"') {
            return Err(CodecError::new("map keys must be strings"));
        }
        self.ser.out.push_str(&key_ser.out);
        self.ser.out.push(':');
        Ok(())
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), CodecError> {
        self.ser.out.push('}');
        Ok(())
    }
}

impl<'a> ser::SerializeStruct for Compound<'a> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.sep();
        self.ser.write_escaped(key);
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), CodecError> {
        self.ser.out.push('}');
        Ok(())
    }
}

impl<'a> ser::SerializeStructVariant for Compound<'a> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.sep();
        self.ser.write_escaped(key);
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), CodecError> {
        self.ser.out.push_str("}}");
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// deserializer
// ---------------------------------------------------------------------------

struct ValueDeserializer(Value);

impl<'de> de::Deserializer<'de> for ValueDeserializer {
    type Error = CodecError;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.0 {
            Value::Null => visitor.visit_unit(),
            Value::Bool(b) => visitor.visit_bool(b),
            Value::Int(i) => visitor.visit_i64(i),
            Value::UInt(u) => visitor.visit_u64(u),
            Value::Float(f) => visitor.visit_f64(f),
            Value::String(s) => visitor.visit_string(s),
            Value::Array(items) => {
                let mut seq = SeqAccess {
                    iter: items.into_iter(),
                };
                visitor.visit_seq(&mut seq)
            }
            Value::Object(map) => {
                let mut access = MapAccess {
                    iter: map.into_iter(),
                    value: None,
                };
                visitor.visit_map(&mut access)
            }
        }
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.0 {
            Value::Null => visitor.visit_none(),
            other => visitor.visit_some(ValueDeserializer(other)),
        }
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        match self.0 {
            Value::String(variant) => visitor.visit_enum(EnumAccess { variant, value: None }),
            Value::Object(map) => {
                let mut iter = map.into_iter();
                let (variant, value) = iter
                    .next()
                    .ok_or_else(|| CodecError::new("empty object cannot be an enum"))?;
                if iter.next().is_some() {
                    return Err(CodecError::new("enum object must have exactly one key"));
                }
                visitor.visit_enum(EnumAccess {
                    variant,
                    value: Some(value),
                })
            }
            _ => Err(CodecError::new("expected string or object for enum")),
        }
    }

    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.0 {
            Value::Int(i) => visitor.visit_f32(i as f32),
            Value::UInt(u) => visitor.visit_f32(u as f32),
            Value::Float(f) => visitor.visit_f32(f as f32),
            other => ValueDeserializer(other).deserialize_any(visitor),
        }
    }

    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.0 {
            Value::Int(i) => visitor.visit_f64(i as f64),
            Value::UInt(u) => visitor.visit_f64(u as f64),
            other => ValueDeserializer(other).deserialize_any(visitor),
        }
    }

    serde::forward_to_deserialize_any! {
        bool i8 i16 i32 i64 i128 u8 u16 u32 u64 u128 char str string
        bytes byte_buf unit unit_struct seq tuple
        tuple_struct map struct identifier ignored_any
    }
}

struct SeqAccess {
    iter: std::vec::IntoIter<Value>,
}

impl<'de> de::SeqAccess<'de> for SeqAccess {
    type Error = CodecError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, CodecError> {
        match self.iter.next() {
            Some(value) => seed.deserialize(ValueDeserializer(value)).map(Some),
            None => Ok(None),
        }
    }
}

struct MapAccess {
    iter: std::collections::btree_map::IntoIter<String, Value>,
    value: Option<Value>,
}

impl<'de> de::MapAccess<'de> for MapAccess {
    type Error = CodecError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, CodecError> {
        match self.iter.next() {
            Some((key, value)) => {
                self.value = Some(value);
                seed.deserialize(ValueDeserializer(Value::String(key))).map(Some)
            }
            None => Ok(None),
        }
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value, CodecError> {
        let value = self
            .value
            .take()
            .ok_or_else(|| CodecError::new("value requested before key"))?;
        seed.deserialize(ValueDeserializer(value))
    }
}

struct EnumAccess {
    variant: String,
    value: Option<Value>,
}

impl<'de> de::EnumAccess<'de> for EnumAccess {
    type Error = CodecError;
    type Variant = VariantAccess;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, VariantAccess), CodecError> {
        let variant = seed.deserialize(self.variant.clone().into_deserializer())?;
        Ok((variant, VariantAccess { value: self.value }))
    }
}

struct VariantAccess {
    value: Option<Value>,
}

impl<'de> de::VariantAccess<'de> for VariantAccess {
    type Error = CodecError;

    fn unit_variant(self) -> Result<(), CodecError> {
        match self.value {
            None | Some(Value::Null) => Ok(()),
            Some(_) => Err(CodecError::new("unexpected payload for unit variant")),
        }
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value, CodecError> {
        let value = self
            .value
            .ok_or_else(|| CodecError::new("missing payload for newtype variant"))?;
        seed.deserialize(ValueDeserializer(value))
    }

    fn tuple_variant<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value, CodecError> {
        let value = self
            .value
            .ok_or_else(|| CodecError::new("missing payload for tuple variant"))?;
        ValueDeserializer(value).deserialize_any(visitor)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        let value = self
            .value
            .ok_or_else(|| CodecError::new("missing payload for struct variant"))?;
        ValueDeserializer(value).deserialize_any(visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap as Map;

    #[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
    struct SkiRental {
        shop: String,
        price: f32,
        brand: String,
        number_of_days: f32,
    }

    #[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
    struct Nested {
        id: u64,
        tags: Vec<String>,
        maybe: Option<i32>,
        inner: SkiRental,
        table: Map<String, u8>,
    }

    #[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
    enum Mixed {
        Unit,
        One(i32),
        Pair(i32, String),
        Rec { a: bool, b: f64 },
    }

    fn ski() -> SkiRental {
        SkiRental {
            shop: "XTremShop \"the best\"".into(),
            price: 14.0,
            brand: "Salomon".into(),
            number_of_days: 100.0,
        }
    }

    #[test]
    fn struct_roundtrip() {
        let original = ski();
        let text = to_string(&original).unwrap();
        let back: SkiRental = from_str(&text).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn nested_roundtrip_with_options_maps_and_seqs() {
        let mut table = Map::new();
        table.insert("a".to_owned(), 1);
        table.insert("b".to_owned(), 2);
        let original = Nested {
            id: u64::MAX,
            tags: vec!["p2p".into(), "tps".into()],
            maybe: None,
            inner: ski(),
            table,
        };
        let back: Nested = from_slice(&to_vec(&original).unwrap()).unwrap();
        assert_eq!(back, original);

        let with_some = Nested {
            maybe: Some(-5),
            ..original
        };
        let back: Nested = from_str(&to_string(&with_some).unwrap()).unwrap();
        assert_eq!(back.maybe, Some(-5));
    }

    #[test]
    fn enum_variants_roundtrip() {
        for value in [
            Mixed::Unit,
            Mixed::One(7),
            Mixed::Pair(1, "x".into()),
            Mixed::Rec { a: true, b: 2.5 },
        ] {
            let text = to_string(&value).unwrap();
            let back: Mixed = from_str(&text).unwrap();
            assert_eq!(back, value);
        }
    }

    #[test]
    fn unknown_fields_are_ignored_enabling_structural_upcast() {
        #[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
        struct RentalOffer {
            shop: String,
            price: f32,
        }
        // A subtype payload (SkiRental) projects onto the supertype (RentalOffer).
        let text = to_string(&ski()).unwrap();
        let upcast: RentalOffer = from_str(&text).unwrap();
        assert_eq!(upcast.shop, ski().shop);
        assert_eq!(upcast.price, 14.0);
    }

    #[test]
    fn missing_fields_are_an_error() {
        #[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
        struct Wants {
            shop: String,
            discount: f32,
        }
        let text = to_string(&ski()).unwrap();
        assert!(from_str::<Wants>(&text).is_err());
    }

    #[test]
    fn scalars_strings_and_escapes_roundtrip() {
        let text = to_string(&"line\nbreak\t\"quoted\" \\slash\u{1}").unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, "line\nbreak\t\"quoted\" \\slash\u{1}");

        assert!(from_str::<bool>(&to_string(&true).unwrap()).unwrap());
        assert_eq!(from_str::<i64>(&to_string(&-42i64).unwrap()).unwrap(), -42);
        assert_eq!(from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(), u64::MAX);
        assert_eq!(from_str::<f64>(&to_string(&1.25f64).unwrap()).unwrap(), 1.25);
        assert_eq!(from_str::<char>(&to_string(&'é').unwrap()).unwrap(), 'é');
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
        assert_eq!(
            from_str::<Vec<u8>>(&to_string(&vec![1u8, 2, 3]).unwrap()).unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let text = to_string(&"höhenmeter ⛷ 山").unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, "höhenmeter ⛷ 山");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(from_str::<SkiRental>("{").is_err());
        assert!(from_str::<SkiRental>("{}{}").is_err());
        assert!(from_str::<SkiRental>("not json").is_err());
        assert!(from_str::<SkiRental>("{\"shop\":}").is_err());
        assert!(from_str::<u8>("\"unterminated").is_err());
        assert!(from_str::<f64>("1.2.3").is_err());
        assert!(from_slice::<String>(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn non_finite_floats_and_non_string_keys_are_rejected() {
        assert!(to_string(&f64::NAN).is_err());
        let mut bad_keys = Map::new();
        bad_keys.insert(3u32, "x");
        assert!(to_string(&bad_keys).is_err());
    }

    #[test]
    fn numbers_coerce_into_float_fields() {
        #[derive(Debug, Deserialize)]
        struct P {
            price: f32,
        }
        // An integer literal must still deserialise into a float field,
        // since the wire format does not distinguish 14 from 14.0.
        let p: P = from_str("{\"price\":14}").unwrap();
        assert_eq!(p.price, 14.0);
    }
}
