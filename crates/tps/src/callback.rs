//! Call-back objects and exception handlers — the paper's
//! `TPSCallBackInterface` and `TPSExceptionHandler`.

use crate::error::{CallBackException, PsException};
use std::cell::RefCell;
use std::rc::Rc;

/// Handles events delivered for a subscription (the paper's
/// `TPSCallBackInterface<Type>.handle(Type)`).
///
/// Implementations are owned by the TPS engine; closures are accepted through
/// [`CallbackFn`].
pub trait TpsCallBack<T>: 'static {
    /// Handles one delivered event.
    ///
    /// # Errors
    ///
    /// Returning [`CallBackException`] routes the failure to the subscription's
    /// [`TpsExceptionHandler`] instead of the publisher.
    fn handle(&mut self, event: T) -> Result<(), CallBackException>;
}

/// Handles exceptions raised while delivering events for a subscription (the
/// paper's `TPSExceptionHandler<Type>.handle(Throwable)`).
pub trait TpsExceptionHandler<T>: 'static {
    /// Handles a delivery failure.
    fn handle(&mut self, error: &PsException);
}

/// Adapts a closure into a [`TpsCallBack`].
pub struct CallbackFn<F>(pub F);

impl<T, F> TpsCallBack<T> for CallbackFn<F>
where
    F: FnMut(T) -> Result<(), CallBackException> + 'static,
{
    fn handle(&mut self, event: T) -> Result<(), CallBackException> {
        (self.0)(event)
    }
}

/// Adapts a closure into a [`TpsExceptionHandler`].
pub struct ExceptionHandlerFn<F>(pub F);

impl<T, F> TpsExceptionHandler<T> for ExceptionHandlerFn<F>
where
    F: FnMut(&PsException) + 'static,
{
    fn handle(&mut self, error: &PsException) {
        (self.0)(error);
    }
}

/// A callback that appends every delivered event to a shared vector; the
/// bread-and-butter consumer of examples and tests (the console printer of
/// the paper's `MyCBInterface`).
pub struct CollectingCallback<T> {
    sink: Rc<RefCell<Vec<T>>>,
}

impl<T> CollectingCallback<T> {
    /// Creates the callback and the shared sink it appends to.
    pub fn new() -> (Self, Rc<RefCell<Vec<T>>>) {
        let sink = Rc::new(RefCell::new(Vec::new()));
        (
            CollectingCallback {
                sink: Rc::clone(&sink),
            },
            sink,
        )
    }

    /// Creates a callback appending to an existing sink.
    pub fn into_sink(sink: Rc<RefCell<Vec<T>>>) -> Self {
        CollectingCallback { sink }
    }
}

impl<T: 'static> TpsCallBack<T> for CollectingCallback<T> {
    fn handle(&mut self, event: T) -> Result<(), CallBackException> {
        self.sink.borrow_mut().push(event);
        Ok(())
    }
}

/// An exception handler that counts the failures it sees; useful both in
/// tests and as a default "log and continue" policy.
pub struct CountingExceptionHandler {
    count: Rc<RefCell<u64>>,
}

impl CountingExceptionHandler {
    /// Creates the handler and the shared failure counter.
    pub fn new() -> (Self, Rc<RefCell<u64>>) {
        let count = Rc::new(RefCell::new(0));
        (
            CountingExceptionHandler {
                count: Rc::clone(&count),
            },
            count,
        )
    }
}

impl<T> TpsExceptionHandler<T> for CountingExceptionHandler {
    fn handle(&mut self, _error: &PsException) {
        *self.count.borrow_mut() += 1;
    }
}

/// An exception handler that silently swallows failures (the minimal
/// `MyExHandler` of the paper's example).
#[derive(Debug, Clone, Copy, Default)]
pub struct IgnoreExceptions;

impl<T> TpsExceptionHandler<T> for IgnoreExceptions {
    fn handle(&mut self, _error: &PsException) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_callback_and_handler_adapt() {
        let seen = Rc::new(RefCell::new(Vec::new()));
        let seen_in_cb = Rc::clone(&seen);
        let mut cb = CallbackFn(move |x: u32| {
            if x == 13 {
                Err(CallBackException::new("unlucky"))
            } else {
                seen_in_cb.borrow_mut().push(x);
                Ok(())
            }
        });
        assert!(cb.handle(1).is_ok());
        assert!(cb.handle(13).is_err());
        assert_eq!(*seen.borrow(), vec![1]);

        let count = Rc::new(RefCell::new(0));
        let count_in_handler = Rc::clone(&count);
        let mut handler = ExceptionHandlerFn(move |_e: &PsException| *count_in_handler.borrow_mut() += 1);
        TpsExceptionHandler::<u32>::handle(&mut handler, &PsException::UnknownSubscription(1));
        assert_eq!(*count.borrow(), 1);
    }

    #[test]
    fn collecting_callback_accumulates() {
        let (mut cb, sink) = CollectingCallback::<String>::new();
        cb.handle("a".to_owned()).unwrap();
        cb.handle("b".to_owned()).unwrap();
        assert_eq!(*sink.borrow(), vec!["a".to_owned(), "b".to_owned()]);

        let mut second = CollectingCallback::into_sink(Rc::clone(&sink));
        second.handle("c".to_owned()).unwrap();
        assert_eq!(sink.borrow().len(), 3);
    }

    #[test]
    fn counting_handler_counts() {
        let (mut handler, count) = CountingExceptionHandler::new();
        TpsExceptionHandler::<u8>::handle(&mut handler, &PsException::UnknownSubscription(2));
        TpsExceptionHandler::<u8>::handle(&mut handler, &PsException::UnknownSubscription(3));
        assert_eq!(*count.borrow(), 2);
        let mut ignore = IgnoreExceptions;
        TpsExceptionHandler::<u8>::handle(&mut ignore, &PsException::UnknownSubscription(4));
    }
}
