//! The v1 typed facade over the engine: the paper's `TPSInterface<Type>`,
//! kept as a **paper-fidelity adapter** over the v2 core.
//!
//! ```text
//! public interface TPSInterface<Type> {
//!     void publish(Type type);                                   // (1)
//!     void subscribe(cb, exh);                                   // (2)
//!     void subscribe(cb[], exh[]);                               // (3)
//!     void unsubscribe(cb, exh);                                 // (4)
//!     void unsubscribe();                                        // (5)
//!     Vector objectsReceived();                                  // (6)
//!     Vector objectsSent();                                      // (7)
//! }
//! ```
//!
//! The Rust rendition is a short-lived typed view borrowed from the
//! [`TpsEngine`] (obtained with [`TpsEngine::interface`] via
//! [`TpsInterfaceExt`]); subscriptions are identified by the
//! [`SubscriptionId`] returned at subscribe time. Because the view borrows
//! the engine mutably, only one interface can exist at a time — that
//! restriction (absent from the Java original, which hands out callback
//! objects) is exactly what the owned-handle session API
//! ([`crate::session`]) removes. New code should prefer
//! [`TpsEngine::session`](crate::engine::TpsEngine::session); this facade
//! stays for literal method-by-method correspondence with the published API
//! and routes through the same publish/subscribe core as the handles.

use crate::callback::{TpsCallBack, TpsExceptionHandler};
use crate::criteria::Criteria;
use crate::engine::{SubscriptionId, TpsEngine};
use crate::error::PsException;
use crate::event::TpsEvent;
use simnet::NodeContext;
use std::marker::PhantomData;

/// A boxed call-back / exception-handler pair with an optional content
/// filter, as accepted by [`TpsInterface::subscribe_many`] (`None` filters
/// nothing, like the paper's `null` criteria).
pub type CallbackPair<T> = (
    Box<dyn TpsCallBack<T>>,
    Box<dyn TpsExceptionHandler<T>>,
    Option<Criteria<T>>,
);

/// A typed view over a [`TpsEngine`] for one event type.
pub struct TpsInterface<'e, T: TpsEvent> {
    engine: &'e mut TpsEngine,
    _marker: PhantomData<T>,
}

/// Extension trait providing the `interface::<T>()` constructor (kept as a
/// trait so the engine's inherent API stays free of type parameters that only
/// matter to the facade).
pub trait TpsInterfaceExt {
    /// A typed interface for event type `T` (the paper's
    /// `TPSEngine.newInterface`).
    fn interface<T: TpsEvent>(&mut self) -> TpsInterface<'_, T>;
}

impl TpsInterfaceExt for TpsEngine {
    fn interface<T: TpsEvent>(&mut self) -> TpsInterface<'_, T> {
        self.register_type::<T>();
        TpsInterface {
            engine: self,
            _marker: PhantomData,
        }
    }
}

impl<'e, T: TpsEvent> TpsInterface<'e, T> {
    /// Publishes an instance of the type as an event to the subscribers
    /// (method (1) of the paper's API).
    ///
    /// # Errors
    ///
    /// Returns [`PsException`] when marshalling or the underlying pipes fail.
    pub fn publish(&mut self, ctx: &mut NodeContext<'_>, event: T) -> Result<(), PsException> {
        self.engine.publish(ctx, &event)
    }

    /// Subscribes with a call-back object and an exception handler
    /// (method (2)).
    pub fn subscribe(
        &mut self,
        ctx: &mut NodeContext<'_>,
        callback: impl TpsCallBack<T>,
        exception_handler: impl TpsExceptionHandler<T>,
    ) -> SubscriptionId {
        self.engine
            .subscribe(ctx, callback, exception_handler, Criteria::any())
    }

    /// Subscribes with an additional content filter (the `Criteria` parameter
    /// of the paper's `newInterface`).
    pub fn subscribe_with(
        &mut self,
        ctx: &mut NodeContext<'_>,
        callback: impl TpsCallBack<T>,
        exception_handler: impl TpsExceptionHandler<T>,
        criteria: Criteria<T>,
    ) -> SubscriptionId {
        self.engine.subscribe(ctx, callback, exception_handler, criteria)
    }

    /// Registers several call-back objects at once, "to handle the events in
    /// different ways" (method (3): console + GUI in the paper's example).
    /// Each pair carries its own optional content filter.
    pub fn subscribe_many(
        &mut self,
        ctx: &mut NodeContext<'_>,
        pairs: Vec<CallbackPair<T>>,
    ) -> Vec<SubscriptionId> {
        pairs
            .into_iter()
            .map(|(cb, exh, criteria)| {
                self.engine.subscribe(
                    ctx,
                    BoxedCallback(cb),
                    BoxedHandler(exh),
                    criteria.unwrap_or_default(),
                )
            })
            .collect()
    }

    /// Removes one subscription (method (4)).
    ///
    /// # Errors
    ///
    /// Returns [`PsException::UnknownSubscription`] if the id is not live.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> Result<(), PsException> {
        self.engine.unsubscribe(id)
    }

    /// Removes every subscription of this type (method (5), scoped to `T`).
    pub fn unsubscribe_all(&mut self) {
        self.engine.unsubscribe_type::<T>();
    }

    /// The events of this type received so far (method (6); a bounded view,
    /// see [`crate::TpsConfig::history_limit`]).
    pub fn objects_received(&self) -> Vec<T> {
        self.engine.objects_received::<T>()
    }

    /// The events of this type sent so far (method (7); a bounded view).
    pub fn objects_sent(&self) -> Vec<T> {
        self.engine.objects_sent::<T>()
    }
}

struct BoxedCallback<T>(Box<dyn TpsCallBack<T>>);

impl<T: 'static> TpsCallBack<T> for BoxedCallback<T> {
    fn handle(&mut self, event: T) -> Result<(), crate::error::CallBackException> {
        self.0.handle(event)
    }
}

struct BoxedHandler<T>(Box<dyn TpsExceptionHandler<T>>);

impl<T: 'static> TpsExceptionHandler<T> for BoxedHandler<T> {
    fn handle(&mut self, error: &PsException) {
        self.0.handle(error);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TpsConfig;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
    struct SkiRental {
        shop: String,
        price: f32,
    }
    impl TpsEvent for SkiRental {
        const TYPE_NAME: &'static str = "SkiRental";
    }

    #[test]
    fn interface_registers_the_type() {
        let mut engine = TpsEngine::new(TpsConfig::new("alice"));
        {
            let _facade: TpsInterface<'_, SkiRental> = engine.interface::<SkiRental>();
        }
        assert!(engine.registry().knows("SkiRental"));
    }

    #[test]
    fn objects_logs_start_empty() {
        let mut engine = TpsEngine::new(TpsConfig::new("alice"));
        let facade = engine.interface::<SkiRental>();
        assert!(facade.objects_received().is_empty());
        assert!(facade.objects_sent().is_empty());
    }
}
