//! The v2 programmer-facing TPS API: owned, cloneable typed handles.
//!
//! The paper's `TPSInterface<Type>` (kept in [`crate::interface`] as a
//! paper-fidelity adapter) is a short-lived borrow of the engine, which makes
//! it impossible to hold a publisher and a subscriber at the same time or to
//! keep a handle across simulation steps. The session API removes that
//! restriction:
//!
//! * [`TpsEngine::session`] yields a cloneable [`Session`];
//! * [`Session::publisher`] / [`Session::subscriber`] yield owned typed
//!   handles — [`Publisher<T>`] and [`Subscriber<T>`] — that do **not**
//!   borrow the engine, so any number of them can coexist per node and they
//!   may live outside the simulation (application code can keep them across
//!   `Network::run_for` calls);
//! * handles communicate with the engine through a command mailbox drained at
//!   the next simulation tick (every lifecycle hook plus a periodic mailbox
//!   timer; [`TpsEngine::pump`] drains it immediately when a
//!   `NodeContext` is at hand);
//! * [`Subscriber<T>`] supports classic **callback mode** and a **pull
//!   mode** ([`Subscriber::try_recv`] / [`Subscriber::drain`] over a bounded
//!   typed mailbox with a configurable [`OverflowPolicy`]);
//! * subscribing returns a [`SubscriptionGuard`] that unsubscribes on drop
//!   and supports [`SubscriptionGuard::pause`] /
//!   [`SubscriptionGuard::resume`];
//! * [`Publisher::publish_batch`] marshals a slice of events into **one**
//!   multi-event wire message, unwrapped at the subscriber edge — the first
//!   step of the roadmap's batching/aggregation item.
//!
//! [`TpsEngine::session`]: crate::engine::TpsEngine::session
//! [`TpsEngine::pump`]: crate::engine::TpsEngine::pump

use crate::callback::{TpsCallBack, TpsExceptionHandler};
use crate::codec;
use crate::criteria::Criteria;
use crate::engine::SubscriptionId;
use crate::error::PsException;
use crate::event::TpsEvent;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::rc::Rc;

/// First id handed out to session subscriptions. The v1 facade allocates ids
/// from the engine's own counter starting at 1, so the two spaces never
/// collide.
pub(crate) const SESSION_ID_BASE: u64 = 1 << 32;

/// A boxed delivery closure, identical to the engine's internal one:
/// `(actual_type_name, payload)`.
pub(crate) type DeliveryFn = Box<dyn FnMut(&str, &[u8])>;

/// A command enqueued by a handle, executed when the engine drains its
/// mailbox.
pub(crate) enum SessionCommand {
    /// Register a type's supertype edges with the engine registry.
    RegisterType {
        type_name: &'static str,
        supertypes: &'static [&'static str],
    },
    /// Eagerly open the output channel for a type (handle creation).
    PreparePublisher { type_name: &'static str },
    /// Publish the marshalled payloads as **one** wire message (a single
    /// event when `payloads.len() == 1`, a batch otherwise).
    Publish {
        type_name: &'static str,
        payloads: Vec<Vec<u8>>,
    },
    /// Install a subscription under a pre-allocated id.
    Subscribe {
        id: SubscriptionId,
        type_name: &'static str,
        deliver: DeliveryFn,
    },
    /// Remove a subscription (guard drop or explicit unsubscribe).
    Unsubscribe { id: SubscriptionId },
    /// Suspend delivery to a subscription without removing it.
    Pause { id: SubscriptionId },
    /// Resume delivery to a paused subscription.
    Resume { id: SubscriptionId },
}

impl std::fmt::Debug for SessionCommand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionCommand::RegisterType { type_name, .. } => {
                f.debug_struct("RegisterType").field("type", type_name).finish()
            }
            SessionCommand::PreparePublisher { type_name } => f
                .debug_struct("PreparePublisher")
                .field("type", type_name)
                .finish(),
            SessionCommand::Publish { type_name, payloads } => f
                .debug_struct("Publish")
                .field("type", type_name)
                .field("events", &payloads.len())
                .finish(),
            SessionCommand::Subscribe { id, type_name, .. } => f
                .debug_struct("Subscribe")
                .field("id", id)
                .field("type", type_name)
                .finish(),
            SessionCommand::Unsubscribe { id } => f.debug_struct("Unsubscribe").field("id", id).finish(),
            SessionCommand::Pause { id } => f.debug_struct("Pause").field("id", id).finish(),
            SessionCommand::Resume { id } => f.debug_struct("Resume").field("id", id).finish(),
        }
    }
}

/// State shared between an engine and every handle of its session: the
/// command mailbox, the session-side id allocator and the deferred-error log.
#[derive(Debug, Default)]
pub(crate) struct SessionShared {
    commands: RefCell<VecDeque<SessionCommand>>,
    next_id: Cell<u64>,
    errors: RefCell<Vec<PsException>>,
}

impl SessionShared {
    pub(crate) fn new() -> Rc<Self> {
        Rc::new(SessionShared {
            commands: RefCell::new(VecDeque::new()),
            next_id: Cell::new(SESSION_ID_BASE),
            errors: RefCell::new(Vec::new()),
        })
    }

    fn push(&self, command: SessionCommand) {
        self.commands.borrow_mut().push_back(command);
    }

    fn allocate_id(&self) -> SubscriptionId {
        let id = self.next_id.get() + 1;
        self.next_id.set(id);
        SubscriptionId(id)
    }

    /// Moves every pending command out (the engine's drain step).
    pub(crate) fn take_commands(&self) -> VecDeque<SessionCommand> {
        std::mem::take(&mut *self.commands.borrow_mut())
    }

    /// Number of commands waiting for the next tick.
    pub(crate) fn pending(&self) -> usize {
        self.commands.borrow().len()
    }

    /// Records an error raised while executing a command (surfaced through
    /// [`Session::take_errors`], since the enqueuing call already returned).
    pub(crate) fn record_error(&self, error: PsException) {
        self.errors.borrow_mut().push(error);
    }
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// A cloneable capability to mint typed handles for one engine.
///
/// Obtained from [`TpsEngine::session`](crate::engine::TpsEngine::session);
/// every clone (and every handle minted from any clone) feeds the same
/// engine-owned command mailbox.
#[derive(Clone, Debug)]
pub struct Session {
    shared: Rc<SessionShared>,
}

impl Session {
    pub(crate) fn new(shared: Rc<SessionShared>) -> Self {
        Session { shared }
    }

    /// An owned publisher handle for events of type `T`. Creating the handle
    /// eagerly opens the type's output channel at the next tick (the paper
    /// publisher's initialisation phase), so the first publish finds resolved
    /// listeners.
    pub fn publisher<T: TpsEvent>(&self) -> Publisher<T> {
        self.register::<T>();
        self.shared.push(SessionCommand::PreparePublisher {
            type_name: T::TYPE_NAME,
        });
        Publisher {
            shared: Rc::clone(&self.shared),
            _marker: PhantomData,
        }
    }

    /// An owned subscriber handle for events of type `T` (and its subtypes).
    /// The handle is inert until one of its `subscribe*` methods is called.
    pub fn subscriber<T: TpsEvent>(&self) -> Subscriber<T> {
        self.register::<T>();
        Subscriber {
            shared: Rc::clone(&self.shared),
            mailbox: Rc::new(RefCell::new(Mailbox::new(MailboxPolicy::default()))),
            _marker: PhantomData,
        }
    }

    /// Registers `T`'s supertype edges with the engine registry without
    /// publishing or subscribing (needed when a peer should recognise subtype
    /// relationships of types it neither publishes nor subscribes itself).
    pub fn register<T: TpsEvent>(&self) {
        self.shared.push(SessionCommand::RegisterType {
            type_name: T::TYPE_NAME,
            supertypes: T::SUPERTYPES,
        });
    }

    /// Commands enqueued but not yet executed by the engine.
    pub fn pending_commands(&self) -> usize {
        self.shared.pending()
    }

    /// Errors raised while executing previously enqueued commands (publish
    /// failures surface here because the enqueuing call has already
    /// returned). Draining is destructive.
    pub fn take_errors(&self) -> Vec<PsException> {
        std::mem::take(&mut *self.shared.errors.borrow_mut())
    }
}

// ---------------------------------------------------------------------------
// Publisher
// ---------------------------------------------------------------------------

/// An owned, cloneable publishing handle for events of type `T`.
///
/// `publish` marshals immediately (so type errors surface synchronously) and
/// enqueues the payload; the engine sends it at the next simulation tick.
pub struct Publisher<T: TpsEvent> {
    shared: Rc<SessionShared>,
    _marker: PhantomData<fn(T)>,
}

impl<T: TpsEvent> Clone for Publisher<T> {
    fn clone(&self) -> Self {
        Publisher {
            shared: Rc::clone(&self.shared),
            _marker: PhantomData,
        }
    }
}

impl<T: TpsEvent> std::fmt::Debug for Publisher<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Publisher").field("type", &T::TYPE_NAME).finish()
    }
}

impl<T: TpsEvent> Publisher<T> {
    /// Publishes one event (one wire message per type channel).
    ///
    /// # Errors
    ///
    /// Returns [`PsException::Marshal`] if the event cannot be serialised.
    /// Errors raised later, while the engine executes the command, are
    /// surfaced through [`Session::take_errors`].
    pub fn publish(&self, event: &T) -> Result<(), PsException> {
        let payload = codec::to_vec(event).map_err(|e| PsException::Marshal(e.to_string()))?;
        self.shared.push(SessionCommand::Publish {
            type_name: T::TYPE_NAME,
            payloads: vec![payload],
        });
        Ok(())
    }

    /// Publishes a batch of events as **one** multi-event wire message per
    /// type channel. Subscribers observe the same event sequence as `len()`
    /// single publishes, but the publisher pays the per-message costs
    /// (connection service, padding, fan-out copies) once per batch instead
    /// of once per event.
    ///
    /// # Errors
    ///
    /// Returns [`PsException::Marshal`] if any event cannot be serialised
    /// (the whole batch is then withheld).
    pub fn publish_batch(&self, events: &[T]) -> Result<(), PsException> {
        if events.is_empty() {
            return Ok(());
        }
        let payloads = events
            .iter()
            .map(|event| codec::to_vec(event).map_err(|e| PsException::Marshal(e.to_string())))
            .collect::<Result<Vec<_>, _>>()?;
        self.shared.push(SessionCommand::Publish {
            type_name: T::TYPE_NAME,
            payloads,
        });
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Subscriber + pull-mode mailbox
// ---------------------------------------------------------------------------

/// What a full pull-mode mailbox does with the next event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Evict the oldest queued event to make room (keep the freshest data).
    #[default]
    DropOldest,
    /// Reject the incoming event (keep the oldest backlog intact).
    DropNewest,
}

/// Capacity and overflow behaviour of a pull-mode mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MailboxPolicy {
    /// Maximum number of events held; beyond it, `overflow` applies.
    pub capacity: usize,
    /// What to do with an event arriving at a full mailbox.
    pub overflow: OverflowPolicy,
}

impl Default for MailboxPolicy {
    fn default() -> Self {
        MailboxPolicy {
            capacity: 1024,
            overflow: OverflowPolicy::DropOldest,
        }
    }
}

impl MailboxPolicy {
    /// A bounded policy with the given capacity and the default
    /// (`DropOldest`) overflow behaviour.
    pub fn bounded(capacity: usize) -> Self {
        MailboxPolicy {
            capacity,
            ..MailboxPolicy::default()
        }
    }

    /// Builder-style override of the overflow policy.
    pub fn with_overflow(mut self, overflow: OverflowPolicy) -> Self {
        self.overflow = overflow;
        self
    }
}

#[derive(Debug)]
struct Mailbox<T> {
    queue: VecDeque<T>,
    policy: MailboxPolicy,
    overflow_dropped: u64,
}

impl<T> Mailbox<T> {
    fn new(policy: MailboxPolicy) -> Self {
        Mailbox {
            queue: VecDeque::new(),
            policy,
            overflow_dropped: 0,
        }
    }

    fn push(&mut self, event: T) {
        if self.policy.capacity == 0 {
            // A zero-capacity mailbox rejects everything.
            self.overflow_dropped += 1;
            return;
        }
        if self.queue.len() >= self.policy.capacity {
            self.overflow_dropped += 1;
            match self.policy.overflow {
                OverflowPolicy::DropOldest => {
                    self.queue.pop_front();
                }
                OverflowPolicy::DropNewest => return,
            }
        }
        self.queue.push_back(event);
    }

    /// Installs a new policy and immediately enforces the (possibly smaller)
    /// capacity on the queued backlog, counting evictions as overflow.
    fn set_policy(&mut self, policy: MailboxPolicy) {
        self.policy = policy;
        while self.queue.len() > self.policy.capacity {
            match self.policy.overflow {
                OverflowPolicy::DropOldest => self.queue.pop_front(),
                OverflowPolicy::DropNewest => self.queue.pop_back(),
            };
            self.overflow_dropped += 1;
        }
    }
}

/// An owned, cloneable subscribing handle for events of type `T` (and its
/// subtypes, per the paper's Figure 7 semantics).
///
/// Two consumption modes, freely mixable on one handle:
///
/// * **callback mode** — [`subscribe`](Subscriber::subscribe) /
///   [`subscribe_filtered`](Subscriber::subscribe_filtered) deliver through a
///   call-back object as in the paper;
/// * **pull mode** — [`subscribe_pull`](Subscriber::subscribe_pull) routes
///   events into this handle's bounded typed mailbox, consumed with
///   [`try_recv`](Subscriber::try_recv) / [`drain`](Subscriber::drain).
///
/// Clones share the pull mailbox. Every `subscribe*` call returns a
/// [`SubscriptionGuard`] that unsubscribes when dropped.
pub struct Subscriber<T: TpsEvent> {
    shared: Rc<SessionShared>,
    mailbox: Rc<RefCell<Mailbox<T>>>,
    _marker: PhantomData<fn() -> T>,
}

impl<T: TpsEvent> Clone for Subscriber<T> {
    fn clone(&self) -> Self {
        Subscriber {
            shared: Rc::clone(&self.shared),
            mailbox: Rc::clone(&self.mailbox),
            _marker: PhantomData,
        }
    }
}

impl<T: TpsEvent> std::fmt::Debug for Subscriber<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscriber")
            .field("type", &T::TYPE_NAME)
            .field("pending", &self.pending())
            .finish()
    }
}

impl<T: TpsEvent> Subscriber<T> {
    /// Callback-mode subscription: the paper's `subscribe(cb, exh)`.
    pub fn subscribe(
        &self,
        callback: impl TpsCallBack<T>,
        exception_handler: impl TpsExceptionHandler<T>,
    ) -> SubscriptionGuard {
        self.subscribe_filtered(callback, exception_handler, Criteria::any())
    }

    /// Callback-mode subscription with a content filter (the `Criteria`
    /// parameter of the paper's `newInterface`).
    pub fn subscribe_filtered(
        &self,
        callback: impl TpsCallBack<T>,
        exception_handler: impl TpsExceptionHandler<T>,
        criteria: Criteria<T>,
    ) -> SubscriptionGuard {
        let mut callback = callback;
        let mut exception_handler = exception_handler;
        self.install(Box::new(move |_actual, payload| {
            match codec::from_slice::<T>(payload) {
                Ok(event) => {
                    if criteria.accepts(&event) {
                        if let Err(e) = callback.handle(event) {
                            exception_handler.handle(&PsException::Callback(e));
                        }
                    }
                }
                Err(e) => exception_handler.handle(&PsException::Unmarshal(e.to_string())),
            }
        }))
    }

    /// Pull-mode subscription with the default [`MailboxPolicy`]: delivered
    /// events queue in this handle's mailbox until consumed with
    /// [`try_recv`](Subscriber::try_recv) or [`drain`](Subscriber::drain).
    pub fn subscribe_pull(&self) -> SubscriptionGuard {
        self.subscribe_pull_with(MailboxPolicy::default(), Criteria::any())
    }

    /// Pull-mode subscription with an explicit mailbox policy and content
    /// filter.
    ///
    /// The mailbox — and therefore the policy — is shared by every clone of
    /// this handle: the most recent `subscribe_pull_with` call wins, and a
    /// backlog exceeding the new capacity is trimmed immediately (counted in
    /// [`overflow_dropped`](Subscriber::overflow_dropped)).
    pub fn subscribe_pull_with(&self, policy: MailboxPolicy, criteria: Criteria<T>) -> SubscriptionGuard {
        self.mailbox.borrow_mut().set_policy(policy);
        let mailbox = Rc::clone(&self.mailbox);
        self.install(Box::new(move |_actual, payload| {
            if let Ok(event) = codec::from_slice::<T>(payload) {
                if criteria.accepts(&event) {
                    mailbox.borrow_mut().push(event);
                }
            }
        }))
    }

    fn install(&self, deliver: DeliveryFn) -> SubscriptionGuard {
        let id = self.shared.allocate_id();
        self.shared.push(SessionCommand::Subscribe {
            id,
            type_name: T::TYPE_NAME,
            deliver,
        });
        SubscriptionGuard {
            shared: Rc::clone(&self.shared),
            id,
            armed: true,
        }
    }

    /// Pops the oldest queued event, if any (pull mode).
    pub fn try_recv(&self) -> Option<T> {
        self.mailbox.borrow_mut().queue.pop_front()
    }

    /// Drains every queued event, oldest first (pull mode).
    pub fn drain(&self) -> Vec<T> {
        self.mailbox.borrow_mut().queue.drain(..).collect()
    }

    /// Number of events queued in the pull mailbox.
    pub fn pending(&self) -> usize {
        self.mailbox.borrow().queue.len()
    }

    /// Events lost to the mailbox overflow policy so far.
    pub fn overflow_dropped(&self) -> u64 {
        self.mailbox.borrow().overflow_dropped
    }
}

// ---------------------------------------------------------------------------
// SubscriptionGuard
// ---------------------------------------------------------------------------

/// Owns one live subscription: dropping the guard unsubscribes (at the next
/// tick). [`pause`](SubscriptionGuard::pause) /
/// [`resume`](SubscriptionGuard::resume) suspend delivery without giving up
/// the subscription; [`detach`](SubscriptionGuard::detach) leaks it
/// (subscribe-forever, the v1 facade's behaviour).
#[derive(Debug)]
pub struct SubscriptionGuard {
    shared: Rc<SessionShared>,
    id: SubscriptionId,
    armed: bool,
}

impl SubscriptionGuard {
    /// The subscription's engine-wide id.
    pub fn id(&self) -> SubscriptionId {
        self.id
    }

    /// Suspends delivery: events arriving while paused are **not** queued or
    /// delivered to this subscription (they are still received by the engine
    /// and visible in `objects_received`).
    pub fn pause(&self) {
        self.shared.push(SessionCommand::Pause { id: self.id });
    }

    /// Resumes delivery after [`pause`](SubscriptionGuard::pause). Events
    /// published during the pause window are not replayed.
    pub fn resume(&self) {
        self.shared.push(SessionCommand::Resume { id: self.id });
    }

    /// Explicitly unsubscribes now (equivalent to dropping the guard).
    pub fn unsubscribe(mut self) {
        self.disarm_and_unsubscribe();
    }

    /// Keeps the subscription alive forever, consuming the guard without
    /// unsubscribing.
    pub fn detach(mut self) {
        self.armed = false;
    }

    fn disarm_and_unsubscribe(&mut self) {
        if self.armed {
            self.armed = false;
            self.shared.push(SessionCommand::Unsubscribe { id: self.id });
        }
    }
}

impl Drop for SubscriptionGuard {
    fn drop(&mut self) {
        self.disarm_and_unsubscribe();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
    struct Offer {
        price: f32,
    }
    impl TpsEvent for Offer {
        const TYPE_NAME: &'static str = "Offer";
    }

    fn session() -> (Session, Rc<SessionShared>) {
        let shared = SessionShared::new();
        (Session::new(Rc::clone(&shared)), shared)
    }

    #[test]
    fn handles_enqueue_commands_without_an_engine() {
        let (session, shared) = session();
        let publisher = session.publisher::<Offer>();
        publisher.publish(&Offer { price: 1.0 }).unwrap();
        publisher
            .publish_batch(&[Offer { price: 2.0 }, Offer { price: 3.0 }])
            .unwrap();
        publisher.publish_batch(&[]).unwrap(); // empty batches are dropped
                                               // register + prepare + single + batch
        assert_eq!(session.pending_commands(), 4);
        let commands = shared.take_commands();
        assert!(matches!(
            &commands[3],
            SessionCommand::Publish { payloads, .. } if payloads.len() == 2
        ));
        assert_eq!(session.pending_commands(), 0);
    }

    #[test]
    fn guard_drop_enqueues_unsubscribe_and_detach_does_not() {
        let (session, shared) = session();
        let subscriber = session.subscriber::<Offer>();
        let _ = shared.take_commands();
        let first = subscriber.subscribe_pull();
        let second = subscriber.subscribe_pull();
        let (first_id, second_id) = (first.id(), second.id());
        assert_ne!(first_id, second_id);
        assert!(first_id.0 >= SESSION_ID_BASE);
        drop(first);
        second.detach();
        let commands = shared.take_commands();
        // two subscribes, then exactly one unsubscribe (for the dropped guard)
        assert_eq!(commands.len(), 3);
        assert!(matches!(
            &commands[2],
            SessionCommand::Unsubscribe { id } if *id == first_id
        ));
    }

    #[test]
    fn pull_mailbox_overflow_policies() {
        let (session, _shared) = session();
        let subscriber = session.subscriber::<Offer>();
        let guard = subscriber.subscribe_pull_with(MailboxPolicy::bounded(2), Criteria::any());
        for price in [1.0, 2.0, 3.0] {
            subscriber.mailbox.borrow_mut().push(Offer { price });
        }
        // DropOldest keeps the freshest two.
        assert_eq!(subscriber.pending(), 2);
        assert_eq!(subscriber.overflow_dropped(), 1);
        assert_eq!(subscriber.try_recv().unwrap().price, 2.0);
        assert_eq!(subscriber.drain().len(), 1);
        assert!(subscriber.try_recv().is_none());
        guard.detach();

        let drop_newest = session.subscriber::<Offer>();
        let guard = drop_newest.subscribe_pull_with(
            MailboxPolicy::bounded(2).with_overflow(OverflowPolicy::DropNewest),
            Criteria::any(),
        );
        for price in [1.0, 2.0, 3.0] {
            drop_newest.mailbox.borrow_mut().push(Offer { price });
        }
        // DropNewest keeps the oldest two.
        let kept = drop_newest.drain();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].price, 1.0);
        assert_eq!(drop_newest.overflow_dropped(), 1);
        guard.detach();
    }

    #[test]
    fn zero_capacity_mailbox_rejects_everything() {
        let (session, _shared) = session();
        let subscriber = session.subscriber::<Offer>();
        let guard = subscriber.subscribe_pull_with(MailboxPolicy::bounded(0), Criteria::any());
        for price in [1.0, 2.0] {
            subscriber.mailbox.borrow_mut().push(Offer { price });
        }
        assert_eq!(subscriber.pending(), 0, "a zero-capacity mailbox stores nothing");
        assert_eq!(subscriber.overflow_dropped(), 2);
        guard.detach();
    }

    #[test]
    fn policy_change_trims_the_existing_backlog() {
        let (session, _shared) = session();
        let subscriber = session.subscriber::<Offer>();
        let first = subscriber.subscribe_pull(); // default capacity 1024
        for price in [1.0, 2.0, 3.0, 4.0] {
            subscriber.mailbox.borrow_mut().push(Offer { price });
        }
        assert_eq!(subscriber.pending(), 4);
        // A later pull subscription with a smaller bound trims immediately.
        let second = subscriber.subscribe_pull_with(MailboxPolicy::bounded(2), Criteria::any());
        assert_eq!(subscriber.pending(), 2, "backlog must shrink to the new capacity");
        assert_eq!(subscriber.overflow_dropped(), 2);
        assert_eq!(
            subscriber.try_recv().unwrap().price,
            3.0,
            "DropOldest evicts the front"
        );
        first.detach();
        second.detach();
    }

    #[test]
    fn clones_share_the_mailbox_and_the_command_queue() {
        let (session, shared) = session();
        let subscriber = session.subscriber::<Offer>();
        let twin = subscriber.clone();
        twin.mailbox.borrow_mut().push(Offer { price: 9.0 });
        assert_eq!(subscriber.pending(), 1);
        let publisher = session.publisher::<Offer>();
        let publisher_twin = publisher.clone();
        publisher_twin.publish(&Offer { price: 1.0 }).unwrap();
        assert!(shared.pending() > 0);
    }
}
