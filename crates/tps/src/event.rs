//! Event types and the nominal type registry.
//!
//! In TPS "the subject is the event object type and the content is the state
//! of instances of that type". Application-defined event types implement
//! [`TpsEvent`]; the [`TypeRegistry`] records the declared subtype hierarchy
//! (the paper's Figure 7) so that a subscription to a type also receives
//! instances of its subtypes, and the tolerant codec projects those instances
//! onto the supertype's fields.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::{HashMap, HashSet};

/// An application-defined event type.
///
/// # Examples
///
/// ```
/// use serde::{Deserialize, Serialize};
/// use tps::TpsEvent;
///
/// #[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
/// struct SkiRental { shop: String, price: f32, brand: String, number_of_days: f32 }
///
/// impl TpsEvent for SkiRental {
///     const TYPE_NAME: &'static str = "SkiRental";
/// }
///
/// assert_eq!(SkiRental::TYPE_NAME, "SkiRental");
/// assert!(SkiRental::SUPERTYPES.is_empty());
/// ```
pub trait TpsEvent: Serialize + DeserializeOwned + Clone + 'static {
    /// The nominal type name, used as the publish/subscribe subject.
    const TYPE_NAME: &'static str;

    /// The names of the *direct* supertypes of this type (defaults to none).
    ///
    /// Subscribers to any reflexive-transitive supertype receive instances of
    /// this type (structurally projected onto the supertype's fields).
    const SUPERTYPES: &'static [&'static str] = &[];
}

/// The nominal subtype hierarchy known to one TPS engine.
///
/// Registration is idempotent; the subtype relation is reflexive and
/// transitive, and multiple supertypes per type are allowed (the paper's
/// Figure 7 has `D` below both `B` and `C`).
#[derive(Debug, Clone, Default)]
pub struct TypeRegistry {
    supertypes: HashMap<String, Vec<String>>,
}

impl TypeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        TypeRegistry::default()
    }

    /// Registers an event type and its declared supertype edges.
    pub fn register<T: TpsEvent>(&mut self) {
        self.register_raw(
            T::TYPE_NAME,
            T::SUPERTYPES
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
        );
    }

    /// Registers a type by name (used when only the name is known, e.g. for
    /// types seen on the wire but not linked into this peer).
    pub fn register_raw(&mut self, type_name: &str, declared: Vec<String>) {
        let entry = self.supertypes.entry(type_name.to_owned()).or_default();
        for sup in declared {
            if !entry.contains(&sup) {
                entry.push(sup);
            }
        }
    }

    /// Whether the type has been registered (directly or as a supertype).
    pub fn knows(&self, type_name: &str) -> bool {
        self.supertypes.contains_key(type_name)
            || self
                .supertypes
                .values()
                .any(|sups| sups.iter().any(|s| s == type_name))
    }

    /// Whether `candidate` is `ancestor` or a (transitive) subtype of it.
    pub fn is_subtype_of(&self, candidate: &str, ancestor: &str) -> bool {
        if candidate == ancestor {
            return true;
        }
        let mut visited = HashSet::new();
        let mut stack = vec![candidate.to_owned()];
        while let Some(current) = stack.pop() {
            if !visited.insert(current.clone()) {
                continue;
            }
            if let Some(parents) = self.supertypes.get(&current) {
                for parent in parents {
                    if parent == ancestor {
                        return true;
                    }
                    stack.push(parent.clone());
                }
            }
        }
        false
    }

    /// All ancestors of a type, including the type itself, in deterministic
    /// order (the set of subjects an instance of `type_name` is published
    /// under).
    pub fn ancestors_of(&self, type_name: &str) -> Vec<String> {
        let mut result = vec![type_name.to_owned()];
        let mut visited: HashSet<String> = result.iter().cloned().collect();
        let mut index = 0;
        while index < result.len() {
            let current = result[index].clone();
            if let Some(parents) = self.supertypes.get(&current) {
                for parent in parents {
                    if visited.insert(parent.clone()) {
                        result.push(parent.clone());
                    }
                }
            }
            index += 1;
        }
        let (head, tail) = result.split_at_mut(1);
        tail.sort();
        let _ = head;
        result
    }

    /// The number of registered types.
    pub fn len(&self) -> usize {
        self.supertypes.len()
    }

    /// Whether nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.supertypes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct A {
        common: u32,
    }
    impl TpsEvent for A {
        const TYPE_NAME: &'static str = "A";
    }

    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct B {
        common: u32,
        extra_b: String,
    }
    impl TpsEvent for B {
        const TYPE_NAME: &'static str = "B";
        const SUPERTYPES: &'static [&'static str] = &["A"];
    }

    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct C {
        common: u32,
        extra_c: bool,
    }
    impl TpsEvent for C {
        const TYPE_NAME: &'static str = "C";
        const SUPERTYPES: &'static [&'static str] = &["A"];
    }

    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct D {
        common: u32,
        extra_b: String,
        extra_c: bool,
        extra_d: f64,
    }
    impl TpsEvent for D {
        const TYPE_NAME: &'static str = "D";
        const SUPERTYPES: &'static [&'static str] = &["B", "C"];
    }

    fn figure7() -> TypeRegistry {
        let mut reg = TypeRegistry::new();
        reg.register::<A>();
        reg.register::<B>();
        reg.register::<C>();
        reg.register::<D>();
        reg
    }

    #[test]
    fn subtype_relation_is_reflexive_and_transitive() {
        let reg = figure7();
        assert!(reg.is_subtype_of("A", "A"));
        assert!(reg.is_subtype_of("B", "A"));
        assert!(reg.is_subtype_of("D", "A"));
        assert!(reg.is_subtype_of("D", "B"));
        assert!(reg.is_subtype_of("D", "C"));
        assert!(!reg.is_subtype_of("A", "B"));
        assert!(!reg.is_subtype_of("B", "C"));
    }

    #[test]
    fn ancestors_match_figure_7_flows() {
        let reg = figure7();
        assert_eq!(
            reg.ancestors_of("D"),
            vec!["D".to_owned(), "A".into(), "B".into(), "C".into()]
        );
        assert_eq!(reg.ancestors_of("B"), vec!["B".to_owned(), "A".into()]);
        assert_eq!(reg.ancestors_of("A"), vec!["A".to_owned()]);
        // Unknown types are their own only ancestor.
        assert_eq!(reg.ancestors_of("Z"), vec!["Z".to_owned()]);
    }

    #[test]
    fn registration_is_idempotent() {
        let mut reg = figure7();
        let before = reg.len();
        reg.register::<D>();
        reg.register::<D>();
        assert_eq!(reg.len(), before);
        assert!(reg.knows("D"));
        assert!(reg.knows("A"));
        assert!(!reg.knows("Z"));
    }

    #[test]
    fn cycles_do_not_hang_lookup() {
        let mut reg = TypeRegistry::new();
        reg.register_raw("X", vec!["Y".into()]);
        reg.register_raw("Y", vec!["X".into()]);
        assert!(reg.is_subtype_of("X", "Y"));
        assert!(reg.is_subtype_of("Y", "X"));
        assert!(!reg.is_subtype_of("X", "Z"));
        let ancestors = reg.ancestors_of("X");
        assert!(ancestors.contains(&"Y".to_owned()));
    }
}
