//! A ready-made simulation node hosting a TPS engine.
//!
//! Applications that need custom behaviour implement [`simnet::SimNode`]
//! themselves and embed a [`TpsEngine`]; for examples, tests and the
//! measurement harness, `TpsHost` is the "just give me a peer running TPS"
//! node: it forwards every lifecycle hook to the engine and exposes it as a
//! public field so that scenarios drive it through
//! [`simnet::Network::invoke`].

use crate::engine::{TpsConfig, TpsEngine};
use simnet::{Datagram, NodeContext, SimAddress, SimNode, TimerToken};

/// A simulation node that runs a single [`TpsEngine`].
#[derive(Debug)]
pub struct TpsHost {
    /// The hosted engine.
    pub engine: TpsEngine,
}

impl TpsHost {
    /// Creates a host from a TPS configuration.
    pub fn new(config: TpsConfig) -> Self {
        TpsHost {
            engine: TpsEngine::new(config),
        }
    }

    /// Creates a boxed host, convenient for `NetworkBuilder::add_node`.
    pub fn boxed(config: TpsConfig) -> Box<Self> {
        Box::new(Self::new(config))
    }

    /// A session for minting owned [`crate::session::Publisher`] /
    /// [`crate::session::Subscriber`] handles; the handles may be moved out
    /// of the simulation (e.g. returned from `Network::invoke`) and used
    /// between `run_for` calls.
    pub fn session(&self) -> crate::session::Session {
        self.engine.session()
    }
}

impl SimNode for TpsHost {
    fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
        self.engine.on_start(ctx);
    }

    fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, datagram: Datagram) {
        self.engine.on_datagram(ctx, &datagram);
    }

    fn on_timer(&mut self, ctx: &mut NodeContext<'_>, _token: TimerToken, tag: u64) {
        self.engine.on_timer(ctx, tag);
    }

    fn on_address_changed(&mut self, ctx: &mut NodeContext<'_>, old: SimAddress, new: SimAddress) {
        self.engine.on_address_changed(ctx, old, new);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TpsEvent;
    use jxta::peer::{CostModel, PeerConfig};
    use serde::{Deserialize, Serialize};
    use simnet::{NetworkBuilder, NodeConfig, SimDuration, SubnetId, TransportKind};

    #[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
    struct SkiRental {
        shop: String,
        price: f32,
        brand: String,
        number_of_days: f32,
    }
    impl TpsEvent for SkiRental {
        const TYPE_NAME: &'static str = "SkiRental";
    }

    fn config(name: &str, seeds: Vec<simnet::SimAddress>) -> TpsConfig {
        TpsConfig::new(name).with_peer(
            PeerConfig::edge(name)
                .with_seeds(seeds)
                .with_costs(CostModel::free()),
        )
    }

    #[test]
    fn publish_subscribe_end_to_end_on_a_simulated_network() {
        let mut builder = NetworkBuilder::new(7);
        let rdv_config =
            TpsConfig::new("rdv").with_peer(PeerConfig::rendezvous("rdv").with_costs(CostModel::free()));
        let _rdv = builder.add_node(TpsHost::boxed(rdv_config), NodeConfig::lan_peer(SubnetId(0)));
        let rdv_addr = simnet::SimAddress::new(TransportKind::Tcp, 0x0A00_0001, 9701);
        let publisher = builder.add_node(
            TpsHost::boxed(config("shop", vec![rdv_addr])),
            NodeConfig::lan_peer(SubnetId(0)),
        );
        let subscriber = builder.add_node(
            TpsHost::boxed(config("skier", vec![rdv_addr])),
            NodeConfig::lan_peer(SubnetId(0)),
        );
        let mut net = builder.build();
        net.run_for(SimDuration::from_secs(2));

        // v2 handles: mint them inside the simulation, hold them outside it.
        let inbox =
            net.invoke::<TpsHost, _>(subscriber, |host, _ctx| host.session().subscriber::<SkiRental>());
        let _guard = inbox.subscribe_pull();
        net.run_for(SimDuration::from_secs(15));
        let offers =
            net.invoke::<TpsHost, _>(publisher, |host, _ctx| host.session().publisher::<SkiRental>());
        offers
            .publish(&SkiRental {
                shop: "XTremShop".into(),
                price: 14.0,
                brand: "Salomon".into(),
                number_of_days: 100.0,
            })
            .unwrap();
        net.run_for(SimDuration::from_secs(10));

        let received = inbox.drain();
        assert_eq!(
            received.len(),
            1,
            "the subscriber should have received exactly one offer"
        );
        assert_eq!(received[0].shop, "XTremShop");
        let sent = net
            .node_ref::<TpsHost>(publisher)
            .unwrap()
            .engine
            .objects_sent::<SkiRental>();
        assert_eq!(sent.len(), 1);
    }
}
