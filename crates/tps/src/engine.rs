//! The TPS engine: the paper's `TPSEngine` / `JxtaTPSEngine` plus its four
//! building blocks (Figure 10).
//!
//! * **TPSEngine** — collects publications and subscriptions and dispatches
//!   them (this type).
//! * **Advertisements** — one advertisement per type: created eagerly
//!   (`AdvertisementsCreator`), and a periodic finder keeps searching for
//!   advertisements other peers created for the same type
//!   (`TPSAdvertisementsFinder` + listeners).
//! * **Interface Repository** — stores the call-back objects and exception
//!   handlers of every subscription (`TPSSubscriberManager`).
//! * **Connections** — input/output wire pipes and readers, managed through
//!   the underlying [`JxtaPeer`] (`TPSWireServiceFinder`, `TPSMyInputPipe`,
//!   `TPSMyOutputPipe`, `TPSPipeReader`).
//!
//! Programs normally drive the engine through the v2 session handles
//! ([`TpsEngine::session`] → [`crate::session::Publisher`] /
//! [`crate::session::Subscriber`]); the commands those handles enqueue are
//! drained by [`TpsEngine::pump`] at every lifecycle hook and on a periodic
//! mailbox timer. The v1 facade ([`crate::interface::TpsInterface`]) calls
//! the same core operations synchronously, preserving the paper's exact API.

use crate::callback::{TpsCallBack, TpsExceptionHandler};
use crate::codec;
use crate::criteria::Criteria;
use crate::error::PsException;
use crate::event::{TpsEvent, TypeRegistry};
use crate::session::{DeliveryFn, Session, SessionCommand, SessionShared};
use jxta::peer::{is_jxta_timer, trace_handle, PeerConfig, SharedTraceCollector};
use jxta::telemetry::trace::{DropCause, SpanKind, TraceId, TraceSpan};
use jxta::{
    AdvKind, AnyAdvertisement, JxtaEvent, JxtaPeer, Message, MessageElement, PeerGroup, PeerId,
    PipeAdvertisement, PipeId, SearchFilter, Uuid,
};
use simnet::{Datagram, NodeContext, SimAddress, SimDuration, SimTime};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::rc::Rc;

/// Timer tag of the periodic advertisement finder.
pub const TIMER_FINDER: u64 = 0x5450_0001;

/// Timer tag of the periodic session-mailbox drain.
pub const TIMER_MAILBOX: u64 = 0x5450_0002;

/// Whether a timer tag belongs to the TPS layer.
pub fn is_tps_timer(tag: u64) -> bool {
    (tag >> 16) == 0x5450
}

/// Namespace of TPS message elements.
const TPS_NS: &str = "tps";

/// Identifies one registered subscription (one call-back / exception-handler
/// pair). The paper unsubscribes by passing the call-back object again; in
/// Rust the id returned by `subscribe` (or carried by a
/// [`crate::session::SubscriptionGuard`]) plays that role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(pub u64);

/// Configuration of a TPS engine.
#[derive(Debug, Clone)]
pub struct TpsConfig {
    /// Configuration of the underlying JXTA peer.
    pub peer: PeerConfig,
    /// How often the advertisement finder re-queries the network
    /// (the `SLEEPING_TIME` of the paper's `AdvertisementsFinder`).
    pub finder_interval: SimDuration,
    /// How often the engine drains the session-command mailbox when no other
    /// event (datagram, timer) triggers a drain first.
    pub mailbox_interval: SimDuration,
    /// How many advertisements each remote peer is asked for
    /// (`NUMBER_OF_ADV_PER_PEER`).
    pub adv_threshold: usize,
    /// Fixed virtual CPU cost of marshalling one wire message.
    pub marshal_fixed: SimDuration,
    /// Additional marshalling cost per payload byte, in microseconds.
    pub marshal_per_byte_us: u64,
    /// Events smaller than this are padded up to it, so that wire messages
    /// match the paper's 1910-byte message size. `0` disables padding.
    pub target_event_size: usize,
    /// Maximum number of events kept in each of the sent/received histories
    /// backing `objects_received` / `objects_sent` (oldest entries are
    /// evicted first). `0` keeps the histories unbounded, as in the paper.
    pub history_limit: usize,
    /// Size of the sliding event-id window used for duplicate suppression
    /// (oldest ids are forgotten first; a forgotten id arriving again would
    /// be re-delivered, as with the wire service's bounded dedup). `0` keeps
    /// the window unbounded.
    pub dedup_window: usize,
}

impl TpsConfig {
    /// Default configuration for a peer with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TpsConfig {
            peer: PeerConfig::edge(name),
            finder_interval: SimDuration::from_secs(10),
            mailbox_interval: SimDuration::from_millis(50),
            adv_threshold: 10,
            marshal_fixed: SimDuration::from_millis(2),
            marshal_per_byte_us: 1,
            target_event_size: 1910,
            history_limit: 1024,
            dedup_window: 8192,
        }
    }

    /// Builder-style override of the JXTA peer configuration.
    pub fn with_peer(mut self, peer: PeerConfig) -> Self {
        self.peer = peer;
        self
    }

    /// Builder-style override of the seed rendezvous addresses.
    pub fn with_seeds(mut self, seeds: Vec<SimAddress>) -> Self {
        self.peer.seed_rendezvous = seeds;
        self
    }

    /// Builder-style selection of the dissemination strategy the underlying
    /// wire service runs (direct fan-out, rendezvous tree or gossip).
    pub fn with_dissemination(mut self, dissemination: jxta::DisseminationConfig) -> Self {
        self.peer.dissemination = dissemination;
        self
    }

    /// Builder-style override of the event-history cap (`0` = unbounded).
    pub fn with_history_limit(mut self, limit: usize) -> Self {
        self.history_limit = limit;
        self
    }

    /// Builder-style override of the mailbox drain interval.
    pub fn with_mailbox_interval(mut self, interval: SimDuration) -> Self {
        self.mailbox_interval = interval;
        self
    }
}

struct Subscription {
    id: SubscriptionId,
    type_name: &'static str,
    paused: bool,
    deliver: DeliveryFn,
}

impl std::fmt::Debug for Subscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription")
            .field("id", &self.id)
            .field("type_name", &self.type_name)
            .field("paused", &self.paused)
            .finish()
    }
}

#[derive(Debug)]
struct TypeChannel {
    pipes: Vec<PipeAdvertisement>,
    input_open: bool,
    output_open: bool,
}

/// Counters exposed for experiments and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TpsCounters {
    /// Events handed to `publish` (batched events count individually).
    pub events_published: u64,
    /// Wire messages sent per type channel (a batch is one message).
    pub messages_sent: u64,
    /// Event deliveries to local call-backs (one per matching subscription).
    pub events_delivered: u64,
    /// Events received from the network (after duplicate suppression).
    pub events_received: u64,
    /// Duplicate events dropped by the engine.
    pub duplicates_dropped: u64,
}

/// The Type-based Publish/Subscribe engine bound to one JXTA peer.
#[derive(Debug)]
pub struct TpsEngine {
    config: TpsConfig,
    peer: JxtaPeer,
    registry: TypeRegistry,
    /// Ordered by type name: `run_finder` walks this map to issue discovery
    /// queries, so its order is part of the deterministic event schedule. A
    /// hash map here once leaked the process-random hash seed into query
    /// send order (breaking cross-process same-seed runs).
    channels: BTreeMap<String, TypeChannel>,
    pipe_to_type: BTreeMap<PipeId, String>,
    subscriptions: Vec<Subscription>,
    next_subscription: u64,
    session: Rc<SessionShared>,
    received: VecDeque<(String, Vec<u8>)>,
    sent: VecDeque<(String, Vec<u8>)>,
    seen_events: HashSet<Uuid>,
    seen_order: VecDeque<Uuid>,
    publishers_seen: HashSet<PeerId>,
    counters: TpsCounters,
    tracer: Option<SharedTraceCollector>,
}

impl TpsEngine {
    /// Creates an engine (and its JXTA peer) from a configuration.
    pub fn new(config: TpsConfig) -> Self {
        let peer = JxtaPeer::new(config.peer.clone());
        TpsEngine {
            config,
            peer,
            registry: TypeRegistry::new(),
            channels: BTreeMap::new(),
            pipe_to_type: BTreeMap::new(),
            subscriptions: Vec::new(),
            next_subscription: 0,
            session: SessionShared::new(),
            received: VecDeque::new(),
            sent: VecDeque::new(),
            seen_events: HashSet::new(),
            seen_order: VecDeque::new(),
            publishers_seen: HashSet::new(),
            counters: TpsCounters::default(),
            tracer: None,
        }
    }

    /// Installs a shared trace collector on the engine *and* its JXTA peer.
    ///
    /// The peer records the transport-level spans (`WireOut`/`WireIn`/mesh
    /// hops) but defers the terminal verdicts to this engine: TPS runs its
    /// own cross-pipe event-id dedup, so only the engine knows whether an
    /// arriving copy became a subscriber delivery or died as a duplicate.
    pub fn set_trace_collector(&mut self, tracer: SharedTraceCollector) {
        self.peer.set_trace_collector(Rc::clone(&tracer), true);
        self.tracer = Some(tracer);
    }

    /// Records one engine-side span per traced event id, if tracing is on.
    fn record_spans(&self, now: SimTime, ids: &[TraceId], kind: SpanKind) {
        let Some(tracer) = &self.tracer else { return };
        let node = trace_handle(self.peer.peer_id());
        let mut tracer = tracer.borrow_mut();
        for id in ids {
            tracer.record(TraceSpan {
                id: *id,
                at_us: now.as_micros(),
                node,
                kind,
            });
        }
    }

    /// The underlying JXTA peer (read access).
    pub fn peer(&self) -> &JxtaPeer {
        &self.peer
    }

    /// The engine's configuration.
    pub fn config(&self) -> &TpsConfig {
        &self.config
    }

    /// The nominal type registry (read access).
    pub fn registry(&self) -> &TypeRegistry {
        &self.registry
    }

    /// Activity counters.
    pub fn counters(&self) -> TpsCounters {
        self.counters
    }

    /// A cloneable session from which owned [`crate::session::Publisher`] and
    /// [`crate::session::Subscriber`] handles are minted. Handles enqueue
    /// commands into this engine's mailbox; the engine drains it at every
    /// lifecycle hook, on the periodic [`TIMER_MAILBOX`] tick, and whenever
    /// [`TpsEngine::pump`] is called explicitly.
    pub fn session(&self) -> Session {
        Session::new(Rc::clone(&self.session))
    }

    /// The number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subscriptions.len()
    }

    /// Total events received from the network so far (after duplicate
    /// suppression) — a counter, unlike `objects_received` which clones a
    /// bounded history.
    pub fn received_count(&self) -> u64 {
        self.counters.events_received
    }

    /// Total events published so far (batched events count individually).
    pub fn sent_count(&self) -> u64 {
        self.counters.events_published
    }

    /// How many distinct publishers have delivered events to this engine so
    /// far (one "incoming connection" per publisher, in the paper's terms).
    pub fn distinct_publishers(&self) -> usize {
        self.publishers_seen.len()
    }

    /// Commands currently waiting in the session mailbox — the figure the
    /// flight recorder samples for its mailbox-depth SLO without paying for
    /// a full metrics export.
    pub fn mailbox_depth(&self) -> usize {
        self.session.pending()
    }

    /// Registers an event type (and its supertype edges) without subscribing
    /// or publishing. Publishing/subscribing registers types implicitly.
    pub fn register_type<T: TpsEvent>(&mut self) {
        self.registry.register::<T>();
    }

    /// Exports the engine's counters and gauges into a metrics registry
    /// under `<prefix>.*`, and the underlying JXTA peer's under
    /// `<prefix>.jxta.*` — one call gives the full per-node telemetry view.
    pub fn export_metrics(&self, registry: &mut telemetry::MetricsRegistry, prefix: &str) {
        registry.set_counter(
            format!("{prefix}.events_published"),
            self.counters.events_published,
        );
        registry.set_counter(format!("{prefix}.events_received"), self.counters.events_received);
        registry.set_counter(
            format!("{prefix}.events_delivered"),
            self.counters.events_delivered,
        );
        registry.set_counter(format!("{prefix}.messages_sent"), self.counters.messages_sent);
        registry.set_counter(
            format!("{prefix}.duplicates_dropped"),
            self.counters.duplicates_dropped,
        );
        registry.set_gauge(format!("{prefix}.subscriptions"), self.subscriptions.len() as i64);
        registry.set_gauge(format!("{prefix}.mailbox_depth"), self.session.pending() as i64);
        registry.set_gauge(format!("{prefix}.type_channels"), self.channels.len() as i64);
        registry.set_gauge(
            format!("{prefix}.distinct_publishers"),
            self.publishers_seen.len() as i64,
        );
        self.peer.export_metrics(registry, &format!("{prefix}.jxta"));
    }

    // ------------------------------------------------------------------
    // lifecycle (forwarded from the owning SimNode)
    // ------------------------------------------------------------------

    /// Forwarded from the owning node's `on_start`.
    pub fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
        self.peer.on_start(ctx);
        ctx.set_timer(self.config.finder_interval, TIMER_FINDER);
        // The mailbox tick must run even while no handle exists yet: handles
        // are routinely minted mid-simulation (via `Network::invoke`), and
        // the tick is what bounds the latency of their first commands.
        ctx.set_timer(self.config.mailbox_interval, TIMER_MAILBOX);
        self.pump(ctx);
    }

    /// Forwarded from the owning node's `on_datagram`.
    pub fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, datagram: &Datagram) {
        self.peer.on_datagram(ctx, datagram);
        self.pump(ctx);
    }

    /// Forwarded from the owning node's `on_timer`. Returns `true` if the tag
    /// belonged to the TPS or JXTA layers.
    pub fn on_timer(&mut self, ctx: &mut NodeContext<'_>, tag: u64) -> bool {
        let consumed = if is_jxta_timer(tag) {
            self.peer.on_timer(ctx, tag)
        } else if tag == TIMER_FINDER {
            self.run_finder(ctx);
            ctx.set_timer(self.config.finder_interval, TIMER_FINDER);
            true
        } else if tag == TIMER_MAILBOX {
            ctx.set_timer(self.config.mailbox_interval, TIMER_MAILBOX);
            true
        } else {
            false
        };
        self.pump(ctx);
        consumed
    }

    /// Forwarded from the owning node's `on_address_changed`.
    pub fn on_address_changed(&mut self, ctx: &mut NodeContext<'_>, old: SimAddress, new: SimAddress) {
        self.peer.on_address_changed(ctx, old, new);
        self.pump(ctx);
    }

    // ------------------------------------------------------------------
    // session-command mailbox
    // ------------------------------------------------------------------

    /// Drains the session-command mailbox (publishes, subscriptions, guard
    /// drops, pause/resume) and the underlying JXTA event queue. Called from
    /// every lifecycle hook; call it directly to execute pending handle
    /// commands at a precise virtual instant (e.g. to measure the publisher's
    /// invocation time through `ctx.charged()`).
    pub fn pump(&mut self, ctx: &mut NodeContext<'_>) {
        // Report the pre-drain backlog to the peer's load plane: it is the
        // mailbox depth the next outgoing LoadReport carries, and a backlog
        // that keeps growing between pumps is the earliest overload signal.
        self.peer
            .set_mailbox_depth(self.session.pending().min(u32::MAX as usize) as u32);
        let commands = self.session.take_commands();
        for command in commands {
            self.execute(ctx, command);
        }
        self.drain_jxta(ctx);
    }

    fn execute(&mut self, ctx: &mut NodeContext<'_>, command: SessionCommand) {
        match command {
            SessionCommand::RegisterType {
                type_name,
                supertypes,
            } => {
                self.registry.register_raw(
                    type_name,
                    supertypes.iter().map(std::string::ToString::to_string).collect(),
                );
            }
            SessionCommand::PreparePublisher { type_name } => {
                // Publishes go out on the type's channel *and* every ancestor
                // channel, so eager preparation must cover all of them (the
                // handle's RegisterType command precedes this one, so the
                // registry already knows the supertype edges).
                for ancestor in self.registry.ancestors_of(type_name) {
                    self.prepare_publisher_channel(ctx, &ancestor);
                }
            }
            SessionCommand::Publish { type_name, payloads } => {
                if let Err(error) = self.core_publish(ctx, type_name, payloads) {
                    self.session.record_error(error);
                }
            }
            SessionCommand::Subscribe {
                id,
                type_name,
                deliver,
            } => {
                self.core_subscribe(ctx, id, type_name, deliver);
            }
            SessionCommand::Unsubscribe { id } => {
                // A second drop of a cloned handle's guard cannot happen
                // (guards are not Clone), but a detach-then-engine-restart
                // might replay; ignore unknown ids.
                let _ = self.unsubscribe(id);
            }
            SessionCommand::Pause { id } => self.set_paused(id, true),
            SessionCommand::Resume { id } => self.set_paused(id, false),
        }
    }

    fn set_paused(&mut self, id: SubscriptionId, paused: bool) {
        if let Some(subscription) = self.subscriptions.iter_mut().find(|s| s.id == id) {
            subscription.paused = paused;
        }
    }

    // ------------------------------------------------------------------
    // the TPS core (used by the session handles and the v1 facade)
    // ------------------------------------------------------------------

    /// Publishes an event; subscribers of the event's type *and of any of its
    /// supertypes* receive it (Figure 7 semantics). This is the v1 immediate
    /// path; session publishers route through the same internal core.
    ///
    /// # Errors
    ///
    /// Returns [`PsException`] if the event cannot be marshalled or the
    /// underlying pipes cannot be used.
    pub fn publish<T: TpsEvent>(&mut self, ctx: &mut NodeContext<'_>, event: &T) -> Result<(), PsException> {
        self.registry.register::<T>();
        let payload = codec::to_vec(event).map_err(|e| PsException::Marshal(e.to_string()))?;
        self.core_publish(ctx, T::TYPE_NAME, vec![payload])
    }

    /// Sends `payloads` (already marshalled events of `type_name`) as one
    /// wire message per type channel: the single shared publish path of the
    /// v1 facade, the session publisher and the batch publisher.
    fn core_publish(
        &mut self,
        ctx: &mut NodeContext<'_>,
        type_name: &str,
        payloads: Vec<Vec<u8>>,
    ) -> Result<(), PsException> {
        if payloads.is_empty() {
            return Ok(());
        }
        let payload_bytes: usize = payloads.iter().map(Vec::len).sum();
        let marshal_cost = self.config.marshal_fixed
            + SimDuration::from_micros(self.config.marshal_per_byte_us * payload_bytes as u64);
        ctx.charge(marshal_cost);

        let ancestors = self.registry.ancestors_of(type_name);
        let event_id = Uuid::generate(ctx.rng());
        // One trace id per packed event: a batched publish is one wire
        // message, but every event inside it keeps its own causal trace.
        let trace_ids: Vec<TraceId> = match &self.tracer {
            Some(tracer) => {
                let origin = trace_handle(self.peer.peer_id());
                let mut tracer = tracer.borrow_mut();
                payloads.iter().map(|_| tracer.allocate(origin)).collect()
            }
            None => Vec::new(),
        };
        self.record_spans(ctx.now(), &trace_ids, SpanKind::Published);
        let message = self.build_message(type_name, &ancestors, event_id, &payloads, &trace_ids);

        for ancestor in &ancestors {
            self.prepare_publisher_channel(ctx, ancestor);
            let pipes: Vec<PipeId> = self.channels[ancestor].pipes.iter().map(|p| p.pipe_id).collect();
            for pipe_id in pipes {
                self.peer
                    .wire_send_traced(ctx, pipe_id, &message, trace_ids.clone())
                    .map_err(PsException::from)?;
            }
            self.counters.messages_sent += 1;
        }
        for payload in payloads {
            self.push_history(HistoryLog::Sent, type_name.to_owned(), payload);
            self.counters.events_published += 1;
        }
        Ok(())
    }

    /// Eagerly creates the advertisement/channel for `T` and launches output
    /// pipe resolution, so that the first `publish` already has resolved
    /// listeners. The paper's publisher performs exactly this work during its
    /// initialisation phase, before the GUI is shown.
    pub fn prepare_publisher<T: TpsEvent>(&mut self, ctx: &mut NodeContext<'_>) {
        self.registry.register::<T>();
        let ancestors = self.registry.ancestors_of(T::TYPE_NAME);
        for type_name in &ancestors {
            self.prepare_publisher_channel(ctx, type_name);
        }
    }

    fn prepare_publisher_channel(&mut self, ctx: &mut NodeContext<'_>, type_name: &str) {
        self.ensure_channel(ctx, type_name);
        let channel = self.channels.get_mut(type_name).expect("channel just ensured");
        if !channel.output_open {
            channel.output_open = true;
            let pipes = channel.pipes.clone();
            for pipe in &pipes {
                self.peer.resolve_wire_output_pipe(ctx, pipe);
            }
        }
    }

    /// Subscribes to events of type `T` (and its subtypes) with a call-back
    /// object, an exception handler and a content filter (the v1 immediate
    /// path; session subscribers route through the same core).
    pub fn subscribe<T: TpsEvent>(
        &mut self,
        ctx: &mut NodeContext<'_>,
        callback: impl TpsCallBack<T>,
        exception_handler: impl TpsExceptionHandler<T>,
        criteria: Criteria<T>,
    ) -> SubscriptionId {
        self.registry.register::<T>();
        self.next_subscription += 1;
        let id = SubscriptionId(self.next_subscription);
        let mut callback = callback;
        let mut exception_handler = exception_handler;
        let deliver = Box::new(
            move |_actual: &str, payload: &[u8]| match codec::from_slice::<T>(payload) {
                Ok(event) => {
                    if criteria.accepts(&event) {
                        if let Err(e) = callback.handle(event) {
                            exception_handler.handle(&PsException::Callback(e));
                        }
                    }
                }
                Err(e) => exception_handler.handle(&PsException::Unmarshal(e.to_string())),
            },
        );
        self.core_subscribe(ctx, id, T::TYPE_NAME, deliver);
        id
    }

    /// Installs a subscription under a caller-chosen id: opens the input
    /// channel of `type_name` and stores the delivery closure.
    fn core_subscribe(
        &mut self,
        ctx: &mut NodeContext<'_>,
        id: SubscriptionId,
        type_name: &'static str,
        deliver: DeliveryFn,
    ) {
        self.open_input_channel(ctx, type_name);
        self.subscriptions.push(Subscription {
            id,
            type_name,
            paused: false,
            deliver,
        });
    }

    /// Removes one subscription; the paper's `unsubscribe(cb, exh)`.
    ///
    /// # Errors
    ///
    /// Returns [`PsException::UnknownSubscription`] if the id is not live.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> Result<(), PsException> {
        let before = self.subscriptions.len();
        self.subscriptions.retain(|s| s.id != id);
        if self.subscriptions.len() == before {
            return Err(PsException::UnknownSubscription(id.0));
        }
        Ok(())
    }

    /// Removes every subscription (the paper's parameterless `unsubscribe()`):
    /// "after this call, no event is received anymore".
    pub fn unsubscribe_all(&mut self) {
        self.subscriptions.clear();
    }

    /// Removes every subscription of one event type.
    pub fn unsubscribe_type<T: TpsEvent>(&mut self) {
        self.subscriptions.retain(|s| s.type_name != T::TYPE_NAME);
    }

    /// Every event in the (bounded, see [`TpsConfig::history_limit`]) receive
    /// history that is of type `T` (or a subtype), decoded as `T` — the
    /// paper's `objectsReceived()`. Prefer [`TpsEngine::received_count`] when
    /// only the number matters.
    pub fn objects_received<T: TpsEvent>(&self) -> Vec<T> {
        self.project::<T>(&self.received)
    }

    /// Every event in the (bounded) send history that is of type `T` (or a
    /// subtype), decoded as `T` — the paper's `objectsSent()`.
    pub fn objects_sent<T: TpsEvent>(&self) -> Vec<T> {
        self.project::<T>(&self.sent)
    }

    fn project<T: TpsEvent>(&self, log: &VecDeque<(String, Vec<u8>)>) -> Vec<T> {
        log.iter()
            .filter(|(actual, _)| self.registry.is_subtype_of(actual, T::TYPE_NAME))
            .filter_map(|(_, payload)| codec::from_slice::<T>(payload).ok())
            .collect()
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    fn push_history(&mut self, log: HistoryLog, type_name: String, payload: Vec<u8>) {
        let limit = self.config.history_limit;
        let log = match log {
            HistoryLog::Sent => &mut self.sent,
            HistoryLog::Received => &mut self.received,
        };
        log.push_back((type_name, payload));
        if limit > 0 {
            while log.len() > limit {
                log.pop_front();
            }
        }
    }

    fn build_message(
        &self,
        actual: &str,
        ancestors: &[String],
        event_id: Uuid,
        payloads: &[Vec<u8>],
        trace_ids: &[TraceId],
    ) -> Message {
        let mut message = Message::new();
        message.add(MessageElement::text(TPS_NS, "ActualType", actual));
        message.add(MessageElement::text(TPS_NS, "Supertypes", ancestors.join(",")));
        message.add(MessageElement::text(TPS_NS, "EventId", event_id.to_hex()));
        if !trace_ids.is_empty() {
            // One id per payload, in payload order, so the subscriber edge
            // can close each event's trace individually. The padding element
            // below absorbs the extra bytes: the wire size stays at
            // `target_event_size` whether tracing is on or off.
            message.add(MessageElement::text(
                TPS_NS,
                "TraceIds",
                TraceId::encode_list(trace_ids),
            ));
        }
        if payloads.len() == 1 {
            // Paper-identical single-event layout.
            message.add(MessageElement::binary(TPS_NS, "Payload", payloads[0].clone()));
        } else {
            // Batched layout: a count plus one indexed payload per event,
            // unwrapped back into individual events at the subscriber edge.
            message.add(MessageElement::text(TPS_NS, "Count", payloads.len().to_string()));
            for (index, payload) in payloads.iter().enumerate() {
                message.add(MessageElement::binary(
                    TPS_NS,
                    format!("Payload{index}"),
                    payload.clone(),
                ));
            }
        }
        if self.config.target_event_size > 0 {
            let current = message.wire_size();
            if current < self.config.target_event_size {
                let padding = vec![0u8; self.config.target_event_size - current];
                message.add(MessageElement::binary(TPS_NS, "Padding", padding));
            }
        }
        message
    }

    /// The payloads carried by a TPS wire message: the single `Payload`
    /// element, or the indexed `Payload0..N` elements of a batch.
    fn message_payloads(message: &Message) -> Vec<Vec<u8>> {
        if let Some(single) = message.element(TPS_NS, "Payload") {
            return vec![single.body.to_vec()];
        }
        let count = message
            .element_text(TPS_NS, "Count")
            .and_then(|c| c.parse::<usize>().ok())
            .unwrap_or(0);
        (0..count)
            .filter_map(|index| message.element(TPS_NS, &format!("Payload{index}")))
            .map(|element| element.body.to_vec())
            .collect()
    }

    fn open_input_channel(&mut self, ctx: &mut NodeContext<'_>, type_name: &str) {
        self.ensure_channel(ctx, type_name);
        let channel = self.channels.get_mut(type_name).expect("channel just ensured");
        channel.input_open = true;
        let pipes = channel.pipes.clone();
        for pipe in &pipes {
            self.peer.create_wire_input_pipe(ctx, pipe);
        }
    }

    fn ensure_channel(&mut self, ctx: &mut NodeContext<'_>, type_name: &str) {
        if self.channels.contains_key(type_name) {
            return;
        }
        // AdvertisementsCreator: build the ps-<Type> group (deterministic ids
        // mean independently-started peers converge on the same pipe), publish
        // it, and keep looking for advertisements others may have created.
        let group = PeerGroup::for_event_type(type_name, self.peer.peer_id());
        let pipe = group
            .wire_pipe()
            .expect("for_event_type always embeds a wire pipe")
            .clone();
        self.peer.author_group(ctx, group.advertisement());
        self.peer
            .remote_publish(ctx, AnyAdvertisement::Group(group.advertisement().clone()));
        self.peer.publish_local(ctx, AnyAdvertisement::Pipe(pipe.clone()));
        self.pipe_to_type.insert(pipe.pipe_id, type_name.to_owned());
        self.channels.insert(
            type_name.to_owned(),
            TypeChannel {
                pipes: vec![pipe],
                input_open: false,
                output_open: false,
            },
        );
        // TPSAdvertisementsFinder: immediately search for advertisements of
        // this type created by other peers.
        self.peer.discover_remote(
            ctx,
            AdvKind::Group,
            SearchFilter::by_name(format!("{}{}*", jxta::PS_PREFIX, type_name)),
            self.config.adv_threshold,
        );
    }

    fn run_finder(&mut self, ctx: &mut NodeContext<'_>) {
        let type_names: Vec<String> = self.channels.keys().cloned().collect();
        for type_name in type_names {
            self.peer.discover_remote(
                ctx,
                AdvKind::Group,
                SearchFilter::by_name(format!("{}{}*", jxta::PS_PREFIX, type_name)),
                self.config.adv_threshold,
            );
            // Re-launch output-pipe resolution for open publisher channels.
            // Resolutions are additive (new responders bind on top of the
            // already-bound listeners) and the initial attempt races listener
            // start-up: a subscriber whose rendezvous lease was not yet
            // granted cannot be reached by the resolution walk, so under
            // direct fan-out it would otherwise never be bound.
            let open_pipes = self
                .channels
                .get(&type_name)
                .filter(|channel| channel.output_open)
                .map(|channel| channel.pipes.clone())
                .unwrap_or_default();
            for pipe in &open_pipes {
                self.peer.resolve_wire_output_pipe(ctx, pipe);
            }
        }
    }

    fn drain_jxta(&mut self, ctx: &mut NodeContext<'_>) {
        let events = self.peer.take_events();
        for event in events {
            match event {
                JxtaEvent::AdvertisementDiscovered { adv, .. } => self.handle_discovered(ctx, adv),
                JxtaEvent::WireMessageReceived {
                    pipe_id,
                    src_peer,
                    message,
                } => {
                    self.handle_wire_message(pipe_id, src_peer, &message, ctx.now());
                }
                _ => {}
            }
        }
    }

    fn handle_discovered(&mut self, ctx: &mut NodeContext<'_>, adv: AnyAdvertisement) {
        let Some(group_adv) = adv.as_group() else { return };
        let Some(type_name) = group_adv.name.strip_prefix(jxta::PS_PREFIX).map(str::to_owned) else {
            return;
        };
        if !self.channels.contains_key(&type_name) {
            return;
        }
        let group = PeerGroup::from_advertisement(group_adv.clone());
        let Ok(pipe) = group.wire_pipe().cloned() else {
            return;
        };
        let channel = self.channels.get_mut(&type_name).expect("checked above");
        if channel.pipes.iter().any(|p| p.pipe_id == pipe.pipe_id) {
            return;
        }
        // "Management of multiple advertisements at the same time": another
        // peer advertised a different pipe for the same type; open it too.
        channel.pipes.push(pipe.clone());
        let (input_open, output_open) = (channel.input_open, channel.output_open);
        self.pipe_to_type.insert(pipe.pipe_id, type_name.clone());
        if input_open {
            self.peer.create_wire_input_pipe(ctx, &pipe);
        }
        if output_open {
            self.peer.resolve_wire_output_pipe(ctx, &pipe);
        }
    }

    fn handle_wire_message(&mut self, pipe_id: PipeId, src_peer: PeerId, message: &Message, now: SimTime) {
        if !self.pipe_to_type.contains_key(&pipe_id) {
            return;
        }
        self.publishers_seen.insert(src_peer);
        let Some(actual) = message.element_text(TPS_NS, "ActualType") else {
            return;
        };
        let payloads = Self::message_payloads(message);
        if payloads.is_empty() {
            return;
        }
        let trace_ids: Vec<TraceId> = message
            .element_text(TPS_NS, "TraceIds")
            .map(|t| TraceId::decode_list(&t))
            .unwrap_or_default();
        // Learn the hierarchy the publisher declared, so that objects_received
        // and subtype matching work even for types not linked locally.
        if let Some(supertypes) = message.element_text(TPS_NS, "Supertypes") {
            let ancestors: Vec<String> = supertypes
                .split(',')
                .filter(|s| !s.is_empty() && *s != actual)
                .map(str::to_owned)
                .collect();
            self.registry.register_raw(&actual, ancestors);
        }
        // Duplicate suppression by event id (the message may arrive on several
        // of the type's pipes, or through several propagation paths; a batch
        // is suppressed as a unit).
        if let Some(id_hex) = message.element_text(TPS_NS, "EventId") {
            if let Ok(id) = Uuid::from_hex(&id_hex) {
                if !self.seen_events.insert(id) {
                    self.counters.duplicates_dropped += payloads.len() as u64;
                    // The whole batch dies in the TPS dedup window: one
                    // terminal drop span per packed event.
                    self.record_spans(
                        now,
                        &trace_ids,
                        SpanKind::Dropped {
                            cause: DropCause::Duplicate,
                        },
                    );
                    return;
                }
                // Sliding dedup window (same shape as the wire service's):
                // bounded memory under sustained traffic.
                self.seen_order.push_back(id);
                if self.config.dedup_window > 0 {
                    while self.seen_order.len() > self.config.dedup_window {
                        if let Some(old) = self.seen_order.pop_front() {
                            self.seen_events.remove(&old);
                        }
                    }
                }
            }
        }
        // Unwrap the (possibly batched) message into individual events at
        // the subscriber edge. Each event closes its own trace: one
        // `Delivered` span per packed trace id.
        self.record_spans(now, &trace_ids, SpanKind::Delivered);
        for payload in payloads {
            self.counters.events_received += 1;
            self.push_history(HistoryLog::Received, actual.clone(), payload.clone());
            for subscription in &mut self.subscriptions {
                if !subscription.paused && self.registry.is_subtype_of(&actual, subscription.type_name) {
                    (subscription.deliver)(&actual, &payload);
                    self.counters.events_delivered += 1;
                }
            }
        }
    }
}

/// Which bounded history [`TpsEngine::push_history`] appends to.
enum HistoryLog {
    Sent,
    Received,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callback::{CollectingCallback, IgnoreExceptions};
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
    struct SkiRental {
        shop: String,
        price: f32,
    }
    impl TpsEvent for SkiRental {
        const TYPE_NAME: &'static str = "SkiRental";
    }

    #[test]
    fn configuration_defaults_match_the_paper() {
        let config = TpsConfig::new("alice");
        assert_eq!(config.target_event_size, 1910);
        assert_eq!(config.adv_threshold, 10);
        assert!(config.finder_interval > SimDuration::ZERO);
        assert!(config.mailbox_interval > SimDuration::ZERO);
        assert_eq!(config.history_limit, 1024);
    }

    #[test]
    fn engine_construction_and_type_registration() {
        let mut engine = TpsEngine::new(TpsConfig::new("alice"));
        engine.register_type::<SkiRental>();
        assert!(engine.registry().knows("SkiRental"));
        assert_eq!(engine.subscription_count(), 0);
        assert_eq!(engine.counters(), TpsCounters::default());
        assert_eq!(engine.received_count(), 0);
        assert_eq!(engine.sent_count(), 0);
        assert_eq!(engine.peer().peer_id(), jxta::PeerId::derive("alice"));
    }

    #[test]
    fn dissemination_strategy_threads_through_to_the_wire_service() {
        let config = TpsConfig::new("alice").with_dissemination(jxta::DisseminationConfig::rendezvous_tree());
        let engine = TpsEngine::new(config);
        assert_eq!(
            engine.peer().wire().strategy_kind(),
            jxta::StrategyKind::RendezvousTree
        );
        assert_eq!(
            TpsEngine::new(TpsConfig::new("bob"))
                .peer()
                .wire()
                .strategy_kind(),
            jxta::StrategyKind::DirectFanout,
            "the paper baseline stays the default"
        );
        let sharded =
            TpsConfig::new("carol").with_dissemination(jxta::DisseminationConfig::rendezvous_mesh(4));
        assert_eq!(sharded.peer.dissemination.mesh_shards, 4);
        assert_eq!(
            TpsEngine::new(sharded).peer().wire().strategy_kind(),
            jxta::StrategyKind::RendezvousMesh
        );
    }

    #[test]
    fn metrics_export_surfaces_counters_and_mailbox_depth() {
        let mut engine = TpsEngine::new(TpsConfig::new("alice"));
        engine.counters.events_published = 4;
        engine.counters.events_received = 2;
        let session = engine.session();
        let publisher = session.publisher::<SkiRental>();
        publisher
            .publish(&SkiRental {
                shop: "s".into(),
                price: 1.0,
            })
            .unwrap();
        let mut registry = telemetry::MetricsRegistry::new();
        engine.export_metrics(&mut registry, "tps");
        assert_eq!(registry.counter("tps.events_published"), 4);
        assert_eq!(registry.counter("tps.events_received"), 2);
        assert_eq!(registry.gauge("tps.subscriptions"), Some(0));
        assert!(
            registry.gauge("tps.mailbox_depth").unwrap() > 0,
            "the un-pumped publish sits in the mailbox"
        );
        assert_eq!(
            registry.counter("tps.jxta.wire.sent"),
            0,
            "the peer's metrics ride along under the jxta prefix"
        );
    }

    #[test]
    fn unsubscribe_unknown_id_errors() {
        let mut engine = TpsEngine::new(TpsConfig::new("alice"));
        assert!(matches!(
            engine.unsubscribe(SubscriptionId(99)),
            Err(PsException::UnknownSubscription(99))
        ));
    }

    #[test]
    fn timer_tag_spaces_do_not_overlap() {
        assert!(is_tps_timer(TIMER_FINDER));
        assert!(is_tps_timer(TIMER_MAILBOX));
        assert!(!is_tps_timer(jxta::TIMER_HOUSEKEEPING));
        assert!(!jxta::is_jxta_timer(TIMER_FINDER));
    }

    #[test]
    fn padding_brings_messages_to_target_size() {
        let engine = TpsEngine::new(TpsConfig::new("alice"));
        let payload = codec::to_vec(&SkiRental {
            shop: "x".into(),
            price: 1.0,
        })
        .unwrap();
        let message = engine.build_message(
            "SkiRental",
            &["SkiRental".to_owned()],
            Uuid::derive("e"),
            std::slice::from_ref(&payload),
            &[],
        );
        assert!(message.wire_size() >= 1910);
        assert!(message.wire_size() < 1910 + 64);
    }

    #[test]
    fn batch_messages_round_trip_their_payloads() {
        let engine = TpsEngine::new(TpsConfig::new("alice"));
        let payloads: Vec<Vec<u8>> = (0..5)
            .map(|i| {
                codec::to_vec(&SkiRental {
                    shop: format!("shop-{i}"),
                    price: i as f32,
                })
                .unwrap()
            })
            .collect();
        let message = engine.build_message(
            "SkiRental",
            &["SkiRental".to_owned()],
            Uuid::derive("batch"),
            &payloads,
            &[],
        );
        assert_eq!(TpsEngine::message_payloads(&message), payloads);
        // Single-event messages keep the paper's layout.
        let single = engine.build_message(
            "SkiRental",
            &["SkiRental".to_owned()],
            Uuid::derive("one"),
            &payloads[..1],
            &[],
        );
        assert!(single.element(TPS_NS, "Payload").is_some());
        assert_eq!(TpsEngine::message_payloads(&single), payloads[..1].to_vec());
    }

    #[test]
    fn history_limit_bounds_the_event_logs() {
        let mut engine = TpsEngine::new(TpsConfig::new("alice").with_history_limit(3));
        for i in 0..10 {
            let payload = codec::to_vec(&SkiRental {
                shop: format!("s{i}"),
                price: i as f32,
            })
            .unwrap();
            engine.push_history(HistoryLog::Received, "SkiRental".to_owned(), payload);
        }
        engine.registry.register::<SkiRental>();
        let view = engine.objects_received::<SkiRental>();
        assert_eq!(view.len(), 3, "history must be capped at the limit");
        assert_eq!(view[0].shop, "s7", "oldest entries are evicted first");
        // limit 0 = unbounded (the paper's semantics)
        let mut unbounded = TpsEngine::new(TpsConfig::new("bob").with_history_limit(0));
        for i in 0..10 {
            unbounded.push_history(HistoryLog::Sent, "SkiRental".to_owned(), vec![i]);
        }
        assert_eq!(unbounded.sent.len(), 10);
    }

    // The callback type-checking below is a compile-time property: the engine
    // only accepts callbacks whose event type matches the subscription type.
    #[test]
    fn local_delivery_path_decodes_and_filters() {
        let mut engine = TpsEngine::new(TpsConfig::new("alice"));
        // Bypass the network: exercise handle_wire_message directly.
        let (cb, sink) = CollectingCallback::<SkiRental>::new();
        engine.registry.register::<SkiRental>();
        engine.next_subscription += 1;
        let id = SubscriptionId(engine.next_subscription);
        let criteria = Criteria::filter("cheap", |e: &SkiRental| e.price < 20.0);
        let mut callback = cb;
        let mut handler = IgnoreExceptions;
        engine.subscriptions.push(Subscription {
            id,
            type_name: SkiRental::TYPE_NAME,
            paused: false,
            deliver: Box::new(move |_a, p| match codec::from_slice::<SkiRental>(p) {
                Ok(ev) => {
                    if criteria.accepts(&ev) {
                        if let Err(e) = callback.handle(ev) {
                            TpsExceptionHandler::<SkiRental>::handle(&mut handler, &PsException::Callback(e));
                        }
                    }
                }
                Err(e) => TpsExceptionHandler::<SkiRental>::handle(
                    &mut handler,
                    &PsException::Unmarshal(e.to_string()),
                ),
            }),
        });
        let pipe = PeerGroup::for_event_type("SkiRental", jxta::PeerId::derive("x"))
            .wire_pipe()
            .unwrap()
            .clone();
        engine.pipe_to_type.insert(pipe.pipe_id, "SkiRental".to_owned());

        let cheap = codec::to_vec(&SkiRental {
            shop: "a".into(),
            price: 10.0,
        })
        .unwrap();
        let pricey = codec::to_vec(&SkiRental {
            shop: "b".into(),
            price: 99.0,
        })
        .unwrap();
        let msg1 = engine.build_message(
            "SkiRental",
            &["SkiRental".to_owned()],
            Uuid::derive("e1"),
            std::slice::from_ref(&cheap),
            &[],
        );
        let msg2 = engine.build_message(
            "SkiRental",
            &["SkiRental".to_owned()],
            Uuid::derive("e2"),
            std::slice::from_ref(&pricey),
            &[],
        );
        let publisher = jxta::PeerId::derive("remote-shop");
        engine.handle_wire_message(pipe.pipe_id, publisher, &msg1, SimTime::ZERO);
        engine.handle_wire_message(pipe.pipe_id, publisher, &msg2, SimTime::ZERO);
        engine.handle_wire_message(pipe.pipe_id, publisher, &msg1, SimTime::ZERO); // duplicate

        assert_eq!(
            sink.borrow().len(),
            1,
            "criteria should filter the expensive offer"
        );
        assert_eq!(sink.borrow()[0].shop, "a");
        assert_eq!(engine.counters().events_received, 2);
        assert_eq!(engine.counters().duplicates_dropped, 1);
        assert_eq!(engine.objects_received::<SkiRental>().len(), 2);
        assert_eq!(engine.received_count(), 2);
        assert_eq!(engine.distinct_publishers(), 1);
    }

    #[test]
    fn batched_wire_message_delivers_every_event_and_dedups_as_a_unit() {
        let mut engine = TpsEngine::new(TpsConfig::new("alice"));
        engine.registry.register::<SkiRental>();
        let (cb, sink) = CollectingCallback::<SkiRental>::new();
        let mut callback = cb;
        engine.subscriptions.push(Subscription {
            id: SubscriptionId(1),
            type_name: SkiRental::TYPE_NAME,
            paused: false,
            deliver: Box::new(move |_a, p| {
                if let Ok(ev) = codec::from_slice::<SkiRental>(p) {
                    let _ = callback.handle(ev);
                }
            }),
        });
        let pipe = PeerGroup::for_event_type("SkiRental", jxta::PeerId::derive("x"))
            .wire_pipe()
            .unwrap()
            .clone();
        engine.pipe_to_type.insert(pipe.pipe_id, "SkiRental".to_owned());
        let payloads: Vec<Vec<u8>> = (0..4)
            .map(|i| {
                codec::to_vec(&SkiRental {
                    shop: format!("s{i}"),
                    price: i as f32,
                })
                .unwrap()
            })
            .collect();
        let batch = engine.build_message(
            "SkiRental",
            &["SkiRental".to_owned()],
            Uuid::derive("batch"),
            &payloads,
            &[],
        );
        let publisher = jxta::PeerId::derive("remote-shop");
        engine.handle_wire_message(pipe.pipe_id, publisher, &batch, SimTime::ZERO);
        engine.handle_wire_message(pipe.pipe_id, publisher, &batch, SimTime::ZERO); // duplicate batch

        assert_eq!(sink.borrow().len(), 4, "each batched event is delivered once");
        assert_eq!(engine.counters().events_received, 4);
        assert_eq!(engine.counters().duplicates_dropped, 4);
        let order: Vec<String> = sink.borrow().iter().map(|e| e.shop.clone()).collect();
        assert_eq!(order, vec!["s0", "s1", "s2", "s3"], "batch order is preserved");
    }

    #[test]
    fn batched_publish_unpacks_one_trace_id_per_event() {
        use jxta::telemetry::trace::TraceCollector;
        use std::cell::RefCell;

        let mut engine = TpsEngine::new(TpsConfig::new("skier"));
        let tracer: SharedTraceCollector = Rc::new(RefCell::new(TraceCollector::with_capacity(256)));
        engine.set_trace_collector(Rc::clone(&tracer));
        engine.registry.register::<SkiRental>();
        let pipe = PeerGroup::for_event_type("SkiRental", jxta::PeerId::derive("x"))
            .wire_pipe()
            .unwrap()
            .clone();
        engine.pipe_to_type.insert(pipe.pipe_id, "SkiRental".to_owned());
        let payloads: Vec<Vec<u8>> = (0..3)
            .map(|i| {
                codec::to_vec(&SkiRental {
                    shop: format!("s{i}"),
                    price: i as f32,
                })
                .unwrap()
            })
            .collect();
        // One trace id per packed event, as core_publish would allocate.
        let origin = 0xAB;
        let ids: Vec<TraceId> = payloads
            .iter()
            .map(|_| tracer.borrow_mut().allocate(origin))
            .collect();
        let batch = engine.build_message(
            "SkiRental",
            &["SkiRental".to_owned()],
            Uuid::derive("batch"),
            &payloads,
            &ids,
        );
        let publisher = jxta::PeerId::derive("remote-shop");
        engine.handle_wire_message(pipe.pipe_id, publisher, &batch, SimTime::from_millis(7));

        let collector = tracer.borrow();
        for id in &ids {
            let delivered: Vec<_> = collector
                .trace_of(*id)
                .into_iter()
                .filter(|s| s.kind == SpanKind::Delivered)
                .collect();
            assert_eq!(delivered.len(), 1, "one Delivered span per batched event");
            assert_eq!(delivered[0].at_us, SimTime::from_millis(7).as_micros());
        }
        drop(collector);

        // A duplicate copy of the whole batch dies in the TPS dedup window:
        // exactly one Dropped{Duplicate} span per packed event.
        engine.handle_wire_message(pipe.pipe_id, publisher, &batch, SimTime::from_millis(9));
        let collector = tracer.borrow();
        for id in &ids {
            let drops = collector
                .trace_of(*id)
                .into_iter()
                .filter(|s| {
                    s.kind
                        == SpanKind::Dropped {
                            cause: DropCause::Duplicate,
                        }
                })
                .count();
            assert_eq!(drops, 1, "exactly one duplicate-drop span per event");
        }
    }

    #[test]
    fn dedup_window_is_bounded_and_slides() {
        let mut engine = TpsEngine::new(TpsConfig::new("alice"));
        engine.config.dedup_window = 2;
        engine.registry.register::<SkiRental>();
        let pipe = PeerGroup::for_event_type("SkiRental", jxta::PeerId::derive("x"))
            .wire_pipe()
            .unwrap()
            .clone();
        engine.pipe_to_type.insert(pipe.pipe_id, "SkiRental".to_owned());
        let payload = codec::to_vec(&SkiRental {
            shop: "a".into(),
            price: 1.0,
        })
        .unwrap();
        let publisher = jxta::PeerId::derive("remote-shop");
        let msg = |engine: &TpsEngine, tag: &str| {
            engine.build_message(
                "SkiRental",
                &["SkiRental".to_owned()],
                Uuid::derive(tag),
                std::slice::from_ref(&payload),
                &[],
            )
        };
        let e1 = msg(&engine, "e1");
        engine.handle_wire_message(pipe.pipe_id, publisher, &e1, SimTime::ZERO);
        engine.handle_wire_message(pipe.pipe_id, publisher, &e1, SimTime::ZERO); // in-window dup
        assert_eq!(engine.counters().duplicates_dropped, 1);
        for tag in ["e2", "e3"] {
            engine.handle_wire_message(pipe.pipe_id, publisher, &msg(&engine, tag), SimTime::ZERO);
        }
        assert!(engine.seen_events.len() <= 2, "window stays bounded");
        // e1 slid out of the window: replaying it is no longer suppressed.
        engine.handle_wire_message(pipe.pipe_id, publisher, &e1, SimTime::ZERO);
        assert_eq!(engine.counters().duplicates_dropped, 1);
        assert_eq!(engine.counters().events_received, 4);
    }

    #[test]
    fn paused_subscriptions_skip_delivery_but_keep_history() {
        let mut engine = TpsEngine::new(TpsConfig::new("alice"));
        engine.registry.register::<SkiRental>();
        let (cb, sink) = CollectingCallback::<SkiRental>::new();
        let mut callback = cb;
        engine.subscriptions.push(Subscription {
            id: SubscriptionId(1),
            type_name: SkiRental::TYPE_NAME,
            paused: false,
            deliver: Box::new(move |_a, p| {
                if let Ok(ev) = codec::from_slice::<SkiRental>(p) {
                    let _ = callback.handle(ev);
                }
            }),
        });
        let pipe = PeerGroup::for_event_type("SkiRental", jxta::PeerId::derive("x"))
            .wire_pipe()
            .unwrap()
            .clone();
        engine.pipe_to_type.insert(pipe.pipe_id, "SkiRental".to_owned());
        let payload = codec::to_vec(&SkiRental {
            shop: "a".into(),
            price: 1.0,
        })
        .unwrap();
        let publisher = jxta::PeerId::derive("remote-shop");
        let send = |engine: &mut TpsEngine, tag: &str| {
            let msg = engine.build_message(
                "SkiRental",
                &["SkiRental".to_owned()],
                Uuid::derive(tag),
                std::slice::from_ref(&payload),
                &[],
            );
            engine.handle_wire_message(pipe.pipe_id, publisher, &msg, SimTime::ZERO);
        };
        send(&mut engine, "e1");
        engine.set_paused(SubscriptionId(1), true);
        send(&mut engine, "e2");
        send(&mut engine, "e3");
        engine.set_paused(SubscriptionId(1), false);
        send(&mut engine, "e4");
        assert_eq!(sink.borrow().len(), 2, "paused window events are not delivered");
        assert_eq!(engine.received_count(), 4, "the engine still receives everything");
        assert_eq!(engine.objects_received::<SkiRental>().len(), 4);
    }
}
