//! # tps — Type-based Publish/Subscribe over JXTA
//!
//! This crate is the reproduction of the core contribution of *"OS Support
//! for P2P Programming: a Case for TPS"* (Baehni, Eugster, Guerraoui —
//! ICDCS 2002): a **Type-based Publish/Subscribe** layer offering RPC-grade
//! simplicity, type safety and encapsulation, while preserving the time,
//! space and flow decoupling of P2P applications. It sits on the from-scratch
//! [`jxta`] substrate, which in turn runs on the [`simnet`] discrete-event
//! network simulator.
//!
//! * The **subject** of a publication is the event's Rust type
//!   ([`TpsEvent::TYPE_NAME`]); the **content** is the state of the instance.
//! * Subscribers to a type also receive instances of its declared subtypes
//!   (the paper's Figure 7), structurally projected onto the supertype by a
//!   tolerant self-describing codec ([`codec`]).
//! * The programmer-facing API is the v2 **session** layer: owned, cloneable
//!   typed handles ([`Publisher`], [`Subscriber`]) minted from
//!   [`TpsEngine::session`], with callback *and* pull-mode consumption,
//!   drop-to-unsubscribe [`SubscriptionGuard`]s and batched publication
//!   ([`Publisher::publish_batch`]).
//!
//! ## The four phases of a TPS application (paper Figure 14, v2 handles)
//!
//! 1. **Type definition** — define a serde-serialisable type and implement
//!    [`TpsEvent`].
//! 2. **Initialisation** — create a [`TpsEngine`] (one per peer) and take a
//!    [`Session`] from it; mint as many [`Publisher<T>`] and
//!    [`Subscriber<T>`] handles as the application needs. Handles do not
//!    borrow the engine: they enqueue commands into the engine's mailbox,
//!    drained at the next simulation tick, so they can be held alongside one
//!    another and across simulation steps.
//! 3. **Subscription** — `subscriber.subscribe(callback, exception_handler)`
//!    for the paper's push style, or `subscriber.subscribe_pull()` to
//!    consume events at the application's own pace with
//!    [`Subscriber::try_recv`] / [`Subscriber::drain`]. Both return a
//!    [`SubscriptionGuard`]: dropping it unsubscribes, and
//!    `pause()`/`resume()` suspend delivery without losing the subscription.
//! 4. **Publication** — `publisher.publish(&instance)`, or
//!    `publisher.publish_batch(&instances)` to marshal many events into one
//!    wire message.
//!
//! The paper's original `TPSEngine`/`TPSInterface` borrow-based pair is kept
//! verbatim as a thin **paper-fidelity adapter** over the same core:
//! [`TpsInterface`] (via [`TpsInterfaceExt::interface`]) exposes methods
//! (1)–(7) of the published API and routes them through the identical
//! publish/subscribe internals the session handles use.
//!
//! See `examples/quickstart.rs` at the workspace root for the full runnable
//! version of the paper's ski-rental walk-through on the v2 handles.
#![warn(rust_2018_idioms)]

pub mod callback;
pub mod codec;
pub mod criteria;
pub mod engine;
pub mod error;
pub mod event;
pub mod host;
pub mod interface;
pub mod session;

pub use jxta::{DisseminationConfig, StrategyKind};

pub use callback::{
    CallbackFn, CollectingCallback, CountingExceptionHandler, ExceptionHandlerFn, IgnoreExceptions,
    TpsCallBack, TpsExceptionHandler,
};
pub use criteria::Criteria;
pub use engine::{
    is_tps_timer, SubscriptionId, TpsConfig, TpsCounters, TpsEngine, TIMER_FINDER, TIMER_MAILBOX,
};
pub use error::{CallBackException, PsException};
pub use event::{TpsEvent, TypeRegistry};
pub use host::TpsHost;
pub use interface::{CallbackPair, TpsInterface, TpsInterfaceExt};
pub use session::{MailboxPolicy, OverflowPolicy, Publisher, Session, Subscriber, SubscriptionGuard};
