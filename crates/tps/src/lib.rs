//! # tps — Type-based Publish/Subscribe over JXTA
//!
//! This crate is the reproduction of the core contribution of *"OS Support
//! for P2P Programming: a Case for TPS"* (Baehni, Eugster, Guerraoui —
//! ICDCS 2002): a **Type-based Publish/Subscribe** layer offering RPC-grade
//! simplicity, type safety and encapsulation, while preserving the time,
//! space and flow decoupling of P2P applications. It sits on the from-scratch
//! [`jxta`] substrate, which in turn runs on the [`simnet`] discrete-event
//! network simulator.
//!
//! * The **subject** of a publication is the event's Rust type
//!   ([`TpsEvent::TYPE_NAME`]); the **content** is the state of the instance.
//! * Subscribers to a type also receive instances of its declared subtypes
//!   (the paper's Figure 7), structurally projected onto the supertype by a
//!   tolerant self-describing codec ([`codec`]).
//! * The programmer-facing API is the paper's `TPSEngine` / `TPSInterface`
//!   pair: [`TpsEngine`] plus the typed facade [`TpsInterface`], with
//!   call-back objects, exception handlers and content-filtering
//!   [`Criteria`].
//!
//! ## The four phases of a TPS application (paper Figure 14)
//!
//! 1. **Type definition** — define a serde-serialisable type and implement
//!    [`TpsEvent`].
//! 2. **Initialisation** — create a [`TpsEngine`] (one per peer) and take a
//!    typed [`TpsInterface`] from it.
//! 3. **Subscription** — `subscribe(callback, exception_handler)`.
//! 4. **Publication** — `publish(instance)`.
//!
//! See `examples/quickstart.rs` at the workspace root for the full runnable
//! version of the paper's ski-rental walk-through.
#![warn(rust_2018_idioms)]

pub mod callback;
pub mod codec;
pub mod criteria;
pub mod engine;
pub mod error;
pub mod event;
pub mod host;
pub mod interface;

pub use jxta::{DisseminationConfig, StrategyKind};

pub use callback::{
    CallbackFn, CollectingCallback, CountingExceptionHandler, ExceptionHandlerFn, IgnoreExceptions,
    TpsCallBack, TpsExceptionHandler,
};
pub use criteria::Criteria;
pub use engine::{is_tps_timer, SubscriptionId, TpsConfig, TpsCounters, TpsEngine, TIMER_FINDER};
pub use error::{CallBackException, PsException};
pub use event::{TpsEvent, TypeRegistry};
pub use host::TpsHost;
pub use interface::{TpsInterface, TpsInterfaceExt};
