//! Content-based filtering criteria.
//!
//! "Subscription operations of the type can be used for content-based
//! filtering (encapsulation). So one can easily implement content-based
//! publish/subscribe (hence subject-based) using TPS." A [`Criteria`] is a
//! predicate over the event type, evaluated at the subscriber before the
//! call-back runs; it corresponds to the `Criteria` parameter of the paper's
//! `TPSEngine.newInterface`.

/// A boxed content predicate over events of type `T`.
type Predicate<T> = Box<dyn Fn(&T) -> bool + 'static>;

/// A content filter over events of type `T`.
pub struct Criteria<T> {
    predicate: Option<Predicate<T>>,
    description: String,
}

impl<T> Criteria<T> {
    /// Accepts every event (the `null` criteria of the paper's example).
    pub fn any() -> Self {
        Criteria {
            predicate: None,
            description: "any".to_owned(),
        }
    }

    /// Accepts only events satisfying `predicate`.
    pub fn filter(description: impl Into<String>, predicate: impl Fn(&T) -> bool + 'static) -> Self {
        Criteria {
            predicate: Some(Box::new(predicate)),
            description: description.into(),
        }
    }

    /// Whether an event passes the filter.
    pub fn accepts(&self, event: &T) -> bool {
        match &self.predicate {
            Some(predicate) => predicate(event),
            None => true,
        }
    }

    /// Whether this criteria accepts everything.
    pub fn is_any(&self) -> bool {
        self.predicate.is_none()
    }

    /// A human-readable description of the filter.
    pub fn description(&self) -> &str {
        &self.description
    }
}

impl<T> Default for Criteria<T> {
    fn default() -> Self {
        Criteria::any()
    }
}

impl<T> std::fmt::Debug for Criteria<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Criteria")
            .field("description", &self.description)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_accepts_everything() {
        let c = Criteria::<i32>::any();
        assert!(c.accepts(&1));
        assert!(c.accepts(&-100));
        assert!(c.is_any());
        assert_eq!(c.description(), "any");
        assert!(Criteria::<i32>::default().is_any());
    }

    #[test]
    fn filter_applies_predicate() {
        let cheap = Criteria::filter("price under 20", |price: &f32| *price < 20.0);
        assert!(cheap.accepts(&14.0));
        assert!(!cheap.accepts(&25.0));
        assert!(!cheap.is_any());
        assert_eq!(cheap.description(), "price under 20");
        assert!(format!("{cheap:?}").contains("price under 20"));
    }
}
