//! Error types of the TPS layer: the paper's `PSException` and
//! `CallBackException`.

use jxta::JxtaError;
use std::fmt;

/// The publish/subscribe exception of the paper's API (`PSException`).
///
/// Raised by `publish`, `subscribe` and `unsubscribe` when the underlying
/// P2P infrastructure or the event marshalling fails.
#[derive(Debug, Clone, PartialEq)]
pub enum PsException {
    /// The event could not be serialised.
    Marshal(String),
    /// A received event could not be deserialised as the subscribed type.
    Unmarshal(String),
    /// The underlying JXTA layer reported an error.
    Jxta(String),
    /// The engine has no channel for the requested type (not initialised).
    UnknownType(String),
    /// The subscription id is unknown (already removed or never issued).
    UnknownSubscription(u64),
    /// A callback rejected the event.
    Callback(CallBackException),
}

impl fmt::Display for PsException {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PsException::Marshal(e) => write!(f, "failed to marshal event: {e}"),
            PsException::Unmarshal(e) => write!(f, "failed to unmarshal event: {e}"),
            PsException::Jxta(e) => write!(f, "jxta layer error: {e}"),
            PsException::UnknownType(t) => write!(f, "no publish/subscribe channel for type {t}"),
            PsException::UnknownSubscription(id) => write!(f, "unknown subscription {id}"),
            PsException::Callback(e) => write!(f, "callback failed: {e}"),
        }
    }
}

impl std::error::Error for PsException {}

impl From<JxtaError> for PsException {
    fn from(e: JxtaError) -> Self {
        PsException::Jxta(e.to_string())
    }
}

impl From<CallBackException> for PsException {
    fn from(e: CallBackException) -> Self {
        PsException::Callback(e)
    }
}

/// The exception a call-back object may raise while handling an event
/// (the paper's `CallBackException`); routed to the registered
/// `TpsExceptionHandler` rather than propagated to the publisher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallBackException {
    /// Human-readable reason.
    pub reason: String,
}

impl CallBackException {
    /// Creates a callback exception with the given reason.
    pub fn new(reason: impl Into<String>) -> Self {
        CallBackException {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CallBackException {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.reason)
    }
}

impl std::error::Error for CallBackException {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_messages() {
        let e: PsException = JxtaError::UnknownPipe("p".into()).into();
        assert!(e.to_string().contains("jxta"));
        let e: PsException = CallBackException::new("gui crashed").into();
        assert!(e.to_string().contains("gui crashed"));
        assert!(PsException::UnknownType("SkiRental".into())
            .to_string()
            .contains("SkiRental"));
        assert!(PsException::UnknownSubscription(7).to_string().contains('7'));
    }
}
