//! Integration coverage for the flight-recorder plane: cadence-grid
//! sampling, the operator view's series/alert sections, and the hot-shard
//! regression the rebalance controller's detection must surface as a
//! [`AlertKind::HotShard`] health alert.

use jxta::peer::CostModel;
use jxta::telemetry::series::RecorderConfig;
use jxta::telemetry::slo::AlertKind;
use simnet::SimDuration;
use ski_rental::{DisseminationConfig, Flavor, RebalanceConfig, Scenario};

fn mesh_scenario(seed: u64) -> Scenario {
    Scenario::build_sharded(
        Flavor::SrTps,
        DisseminationConfig::rendezvous_mesh(4),
        4,
        2,
        24,
        seed,
        CostModel::free(),
    )
}

#[test]
fn the_recorder_samples_on_the_virtual_cadence_grid() {
    let mut scenario = mesh_scenario(7);
    scenario.enable_recorder(RecorderConfig::with_cadence_us(1_000_000));
    scenario.warm_up();
    for publisher in 0..2 {
        scenario.publish_one(publisher);
    }
    scenario.advance(SimDuration::from_secs(10));

    let recorder = scenario.recorder().expect("recorder enabled");
    assert!(
        recorder.samples_taken() >= 40,
        "a 40+ virtual-second run on a 1 s cadence takes 40+ samples, got {}",
        recorder.samples_taken()
    );
    assert_eq!(recorder.dropped_series(), 0);
    // Every layer contributes: kernel aggregates, per-rendezvous peers,
    // harness-derived figures.
    for expected in [
        "simnet.datagrams_delivered",
        "jxta.rdv0.wire.forwarded",
        "harness.delivery_ratio",
        "harness.shard_load_zmax",
    ] {
        assert!(
            recorder.series(expected).is_some(),
            "series `{expected}` missing; recorded: {:?}",
            recorder.series_names().collect::<Vec<_>>()
        );
    }
    // The sampling grid is virtual-time aligned: every point of every series
    // sits on a whole cadence multiple (record_custom/record_sample_now are
    // the only off-grid paths, and this run uses neither).
    let names: Vec<String> = recorder.series_names().map(str::to_owned).collect();
    for name in &names {
        let series = recorder.series(name).unwrap();
        for point in series.points() {
            assert_eq!(
                point.at_us % 1_000_000,
                0,
                "series `{name}` sampled off the cadence grid at {}us",
                point.at_us
            );
        }
    }
    // Deliveries completed, so the derived ratio converges to 1.0.
    let ratio = scenario
        .recorder()
        .unwrap()
        .series("harness.delivery_ratio")
        .unwrap()
        .last()
        .unwrap()
        .value;
    assert!(
        (ratio - 1.0).abs() < 1e-9,
        "all copies delivered, ratio must settle at 1.0, got {ratio}"
    );
}

#[test]
fn the_operator_view_renders_series_and_alert_sections() {
    let mut scenario = mesh_scenario(11);
    scenario.enable_recorder(RecorderConfig::default_cadence());
    scenario.add_standard_slo_rules();
    scenario.enable_tracing(1 << 14);
    scenario.warm_up();
    scenario.publish_one(0);
    scenario.advance(SimDuration::from_secs(5));

    let view = scenario.operator_view(2);
    assert!(view.contains("== metrics =="), "view:\n{view}");
    assert!(view.contains("== series =="), "view:\n{view}");
    assert!(view.contains("== active alerts =="), "view:\n{view}");
    assert!(
        view.contains("harness.delivery_ratio"),
        "the key-series table must include the delivery ratio:\n{view}"
    );
    // A healthy balanced run: every copy arrives, no stock rule trips.
    assert!(
        view.contains("== active alerts ==\n(none)"),
        "a healthy run shows no active alerts:\n{view}"
    );

    // Without a recorder the sections disappear entirely (and the scenario
    // pays no recording cost — the run_net fast path).
    let mut plain = mesh_scenario(11);
    plain.warm_up();
    let plain_view = plain.operator_view(2);
    assert!(!plain_view.contains("== series =="));
    assert!(!plain_view.contains("== active alerts =="));
}

/// The hot-shard regression: a skewed population must surface as an active
/// `hot_shard` health alert in the watchdog and the operator view, not just
/// as a buried rebalance-controller flag. 11 edge leases over 4 shards pin
/// the max shard at 3+ leases (pigeonhole) while the mean is 2.75, so a
/// 105 % hot ratio deterministically flags the heaviest shard whatever the
/// hash skew of this seed.
#[test]
fn a_skewed_population_raises_the_hot_shard_alert() {
    let hair_trigger = RebalanceConfig {
        hot_ratio_percent: 105,
        ..RebalanceConfig::default()
    };
    let mut scenario = Scenario::build_sharded(
        Flavor::SrTps,
        DisseminationConfig::rendezvous_mesh(4).with_rebalance(hair_trigger),
        4,
        1,
        10,
        23,
        CostModel::free(),
    );
    scenario.enable_recorder(RecorderConfig::default_cadence());
    scenario.add_standard_slo_rules();
    scenario.warm_up();

    let active: Vec<_> = scenario
        .watchdog()
        .expect("recorder enabled")
        .active_alerts()
        .collect();
    assert!(
        active.iter().any(|a| a.kind == AlertKind::HotShard),
        "the skewed population must trip the hot-shard rule; active: {active:?}"
    );
    let view = scenario.operator_view(0);
    assert!(
        view.contains("hot_shard"),
        "the active hot-shard alert must show in the operator view:\n{view}"
    );
    assert!(
        view.contains("harness.hot_shards"),
        "the hot-shard series must show in the key-series table:\n{view}"
    );
}
