//! The mega-scale acceptance scenario: a sharded rendezvous mesh serving
//! 100 000 flyweight subscribers, with exactly-once delivery asserted for
//! every one of them and a wall-time budget enforced in release builds.
//!
//! Debug builds shrink the population (the point of the release gate is the
//! hot path, not the unoptimised build); CI's `scale-smoke` job runs this
//! test in release at the full population.

use jxta::telemetry::series::RecorderConfig;
use simnet::SimDuration;
use ski_rental::Scenario;
use std::collections::HashSet;

/// Full population in release; a small smoke population under debug builds.
const SUBSCRIBERS: usize = if cfg!(debug_assertions) { 2_000 } else { 100_000 };
const SHARDS: usize = 4;
const PUBLISHES: usize = 3;

/// Release wall-time ceiling for the whole scenario (build + run + assert).
/// The tentpole's promise is "seconds, not minutes"; the budget leaves
/// headroom for slow CI machines.
const WALL_BUDGET_SECS: u64 = 120;

#[test]
fn mesh_delivers_exactly_once_to_one_hundred_thousand_flyweights() {
    // Wall-clock measures the *test harness*, never simulation behaviour —
    // the virtual clock below stays fully deterministic.
    let wall = std::time::Instant::now(); // detlint::allow(D001, reason = "release wall-time budget of the scale gate; no simulation state depends on it")

    let mut scenario = Scenario::build_flyweight_mesh(SHARDS, 1, SUBSCRIBERS, 2002);
    // Leases + the publisher's pipe warm-up. Kept under the flyweights'
    // 45 s housekeeping tick so the run schedules zero renewal events.
    scenario.advance(SimDuration::from_secs(8));

    for _ in 0..PUBLISHES {
        scenario.publish_one(0);
        scenario.advance(SimDuration::from_secs(3));
    }
    scenario.advance(SimDuration::from_secs(5));

    // Exactly-once, for every single subscriber: the mailbox holds exactly
    // one entry per publish, all with distinct message ids, and the dedup
    // window never had to reject a duplicate copy.
    let mut shard_population = vec![0usize; SHARDS];
    for i in 0..SUBSCRIBERS {
        let fly = scenario
            .flyweight(i)
            .expect("flyweight-mesh subscribers are flyweights");
        let lease = fly.lease().unwrap_or_else(|| {
            panic!(
                "flyweight {i} never leased (connects sent: {})",
                fly.connects_sent()
            )
        });
        let shard = scenario
            .rendezvous_ids()
            .iter()
            .position(|&id| scenario.shard_of(scenario.subscriber_id(i)) == Some(id))
            .unwrap_or_else(|| panic!("flyweight {i} leased an unknown rendezvous {:?}", lease.rdv));
        shard_population[shard] += 1;
        assert_eq!(
            fly.received_count(),
            PUBLISHES,
            "flyweight {i}: expected every publish exactly once, mailbox: {:?}",
            fly.mailbox()
        );
        let distinct: HashSet<_> = fly.mailbox().iter().map(|&(_, id)| id).collect();
        assert_eq!(distinct.len(), PUBLISHES, "flyweight {i} holds a duplicate id");
        assert_eq!(fly.duplicates(), 0, "flyweight {i} received duplicate copies");
    }
    assert!(
        shard_population.iter().all(|&n| n > 0),
        "the population must spread over every shard, got {shard_population:?}"
    );

    // The delivery work actually happened in the kernel: at least
    // subscribers x publishes deliveries were simulated.
    let stats = scenario.network().total_stats();
    assert!(
        stats.datagrams_delivered >= (SUBSCRIBERS * PUBLISHES) as u64,
        "kernel delivered {} datagrams for {} expected fan-out deliveries",
        stats.datagrams_delivered,
        SUBSCRIBERS * PUBLISHES
    );

    if !cfg!(debug_assertions) {
        let elapsed = wall.elapsed();
        assert!(
            elapsed.as_secs() < WALL_BUDGET_SECS,
            "the 100k scenario must complete in seconds of wall time, took {elapsed:?}"
        );
    }
}

/// The flight recorder's promise at flyweight scale: its sampled surface is
/// bounded by the *infrastructure* (kernel aggregates, the handful of
/// rendezvous peers, a fixed set of derived figures) — never by the edge
/// population — so a 100k-subscriber run records the same few-hundred
/// series a 2k run does, and the whole recorder stays under the 1 MiB
/// footprint documented in docs/observability.md.
#[test]
fn recorder_memory_stays_bounded_at_flyweight_scale() {
    let mut scenario = Scenario::build_flyweight_mesh(SHARDS, 1, SUBSCRIBERS, 2002);
    scenario.enable_recorder(RecorderConfig::default_cadence());
    scenario.add_standard_slo_rules();
    scenario.advance(SimDuration::from_secs(8));
    for _ in 0..PUBLISHES {
        scenario.publish_one(0);
        scenario.advance(SimDuration::from_secs(3));
    }
    scenario.advance(SimDuration::from_secs(5));

    let recorder = scenario.recorder().expect("recorder enabled");
    assert!(recorder.samples_taken() >= 20);
    assert_eq!(
        recorder.dropped_series(),
        0,
        "the bounded surface must fit the series cap with room to spare"
    );
    assert!(
        recorder.num_series() < 300,
        "the sampled surface must not scale with the population, got {} series",
        recorder.num_series()
    );
    assert!(
        recorder.approx_bytes() < 1 << 20,
        "recorder footprint must stay under the documented 1 MiB bound, got {} bytes",
        recorder.approx_bytes()
    );
    // The run was healthy end to end: every stock rule stayed green even
    // with the recorder watching (no alert-plane false positives at scale).
    let active = scenario
        .watchdog()
        .expect("recorder enabled")
        .active_alerts()
        .count();
    assert_eq!(active, 0, "a healthy flyweight run must not trip any stock rule");
}

#[test]
fn flyweight_mesh_replays_bit_identically() {
    // Same-seed replay at a four-digit population: mailbox contents (times
    // and ids), kernel counters and the event count must all be identical.
    let run = || {
        let mut scenario = Scenario::build_flyweight_mesh(2, 1, 1_000, 77);
        scenario.advance(SimDuration::from_secs(8));
        scenario.publish_one(0);
        scenario.advance(SimDuration::from_secs(5));
        let mailboxes: Vec<_> = (0..1_000)
            .map(|i| scenario.flyweight(i).unwrap().mailbox().to_vec())
            .collect();
        (
            mailboxes,
            scenario.network().total_stats(),
            scenario.network().events_processed(),
        )
    };
    let (mailboxes_a, stats_a, events_a) = run();
    let (mailboxes_b, stats_b, events_b) = run();
    assert_eq!(mailboxes_a, mailboxes_b);
    assert_eq!(stats_a, stats_b);
    assert_eq!(events_a, events_b);
    assert!(
        mailboxes_a.iter().all(|m| m.len() == 1),
        "every flyweight hears the publish exactly once"
    );
}
