//! Same-seed bit-identical replay of a sharded churn scenario at 1k+ nodes.
//!
//! Two runs of the identical scenario — same seed, same churn schedule —
//! must agree *byte for byte* on everything observable: the full causal span
//! trace and the rendered metrics snapshot. This is the workspace's
//! determinism contract, tested end-to-end at scale.
//!
//! The invariants this test depends on are exactly the ones `detlint`
//! (crates/detlint) enforces statically:
//!
//! - **D001** — no wall-clock reads in kernel paths: every timestamp in the
//!   compared traces comes from the simulated clock, so a single
//!   `Instant::now()` would make the byte-compare flaky.
//! - **D002** — no iteration over `HashMap`/`HashSet` in determinism-critical
//!   crates: std hash maps seed their hasher per process, so iteration order
//!   differs between the two runs even though each run is self-consistent.
//!   At 1032 nodes a single order leak into event scheduling diverges the
//!   traces within a handful of virtual milliseconds.
//! - **D003** — no threads, OS randomness, or environment reads: the
//!   simulation is single-threaded and all randomness flows from the seed.
//!
//! When this test fails and the diff looks like reordered-but-equivalent
//! events, suspect a fresh D002-shaped leak first and run
//! `cargo run -p detlint -- --workspace`.

use jxta::peer::CostModel;
use jxta::telemetry::series::RecorderConfig;
use jxta::telemetry::slo::{AlertKind, SloRule};
use simnet::SimDuration;
use ski_rental::{DisseminationConfig, Flavor, Scenario};

const RENDEZVOUS: usize = 4;
const PUBLISHERS: usize = 8;
/// Release builds run the full 4 + 8 + 1020 = 1032-node scenario (CI's
/// churn-release job invokes this test with `--release`); debug builds — the
/// quick `cargo test` tier — keep the same sharded shape at a size that
/// finishes in seconds. The determinism property under test is identical.
const SUBSCRIBERS: usize = if cfg!(debug_assertions) { 64 } else { 1020 };
const TRACE_CAPACITY: usize = 1 << 19;

/// Everything a run exposes to a byte-compare: the span trace, the rendered
/// metrics snapshot, the flight-recorder series export, and the watchdog's
/// alert log.
struct RunCapture {
    spans: Vec<jxta::telemetry::trace::TraceSpan>,
    metrics: String,
    series_jsonl: String,
    alert_log: String,
}

/// One full run: build the sharded mesh, trace everything, record metric
/// series on a 500 ms cadence, publish a first wave, kill a deterministic
/// set of subscribers mid-run (churn), publish a second wave into the
/// degraded mesh, then capture the observable state.
fn churn_run(seed: u64) -> RunCapture {
    let mut scenario = Scenario::build_sharded(
        Flavor::SrTps,
        DisseminationConfig::rendezvous_mesh(RENDEZVOUS),
        RENDEZVOUS,
        PUBLISHERS,
        SUBSCRIBERS,
        seed,
        CostModel::free(),
    );
    scenario.enable_tracing(TRACE_CAPACITY);
    scenario.enable_recorder(RecorderConfig::with_cadence_us(500_000));
    scenario.add_standard_slo_rules();
    // The churn wave only removes ~1% of subscribers, which is healthy by
    // the stock 0.95 delivery floor; a test-tightened floor makes the churn
    // trip the watchdog so the alert-log byte-compare below is not vacuous.
    scenario.add_slo_rule(SloRule::floor(
        AlertKind::DeliveryRatioLow,
        "harness.delivery_ratio",
        0.999,
    ));
    scenario.warm_up();
    for publisher in 0..PUBLISHERS {
        scenario.publish_one(publisher);
    }
    scenario.advance(SimDuration::from_secs(5));
    // Churn: every 97th subscriber dies between the two publish waves, so
    // the second wave exercises the drop/forensics paths too.
    for index in (0..SUBSCRIBERS).step_by(97) {
        let victim = scenario.subscriber_id(index);
        scenario.network_mut().shutdown_node(victim);
    }
    for publisher in 0..PUBLISHERS {
        scenario.publish_one(publisher);
    }
    scenario.advance(SimDuration::from_secs(10));

    let spans = scenario
        .tracer()
        .expect("tracing enabled")
        .borrow()
        .spans()
        .copied()
        .collect();
    let metrics = scenario.metrics_registry().snapshot().render_text();
    let series_jsonl = scenario.export_series_jsonl();
    let alert_log = scenario.export_alert_log();
    RunCapture {
        spans,
        metrics,
        series_jsonl,
        alert_log,
    }
}

#[test]
fn sharded_churn_is_bit_identical_across_same_seed_runs() {
    let a = churn_run(4242);
    let b = churn_run(4242);
    let (spans_a, metrics_a) = (&a.spans, &a.metrics);
    let (spans_b, metrics_b) = (&b.spans, &b.metrics);

    // The comparison must not be vacuous: the run is big, traced, and the
    // churn actually removed deliveries.
    let expected_min_spans = if cfg!(debug_assertions) { 1_000 } else { 10_000 };
    assert!(
        spans_a.len() > expected_min_spans,
        "a {}-node traced run records a large span set, got {}",
        RENDEZVOUS + PUBLISHERS + SUBSCRIBERS,
        spans_a.len()
    );
    assert!(
        spans_a.len() < TRACE_CAPACITY,
        "trace capacity must hold the whole run so the compare covers every span"
    );
    assert!(
        metrics_a.contains("simnet."),
        "metrics snapshot exports kernel counters:\n{metrics_a}"
    );

    // Span-by-span equality first (pinpoints the first divergence on
    // failure), then the byte-for-byte check on the rendered metrics.
    assert_eq!(
        spans_a.len(),
        spans_b.len(),
        "same seed, same span count — a mismatch here means event order leaked from a hashed container"
    );
    for (i, (span_a, span_b)) in spans_a.iter().zip(spans_b.iter()).enumerate() {
        assert_eq!(
            span_a, span_b,
            "first trace divergence at span {i} — see crates/ski-rental/tests/determinism.rs"
        );
    }
    assert_eq!(
        metrics_a.as_bytes(),
        metrics_b.as_bytes(),
        "metrics snapshots must render byte-identically:\n--- run A ---\n{metrics_a}\n--- run B ---\n{metrics_b}"
    );

    // The flight recorder rides the same contract: the sampled series export
    // and the watchdog's alert log must replay byte for byte. Guard against
    // vacuity first — a 15-virtual-second run on a 500 ms cadence records
    // dozens of samples, and the churn wave drives the delivery ratio below
    // the stock SLO floor, so the alert log is never the empty placeholder.
    assert!(
        a.series_jsonl.lines().count() > 100,
        "the recorder export must cover the run, got {} lines",
        a.series_jsonl.lines().count()
    );
    assert!(
        a.series_jsonl.contains("\"series\":\"harness.delivery_ratio\""),
        "derived harness series missing from the export:\n{}",
        a.series_jsonl
    );
    assert_ne!(
        a.alert_log, "(no alerts)\n",
        "churn must trip at least one stock SLO rule, or this compare is vacuous"
    );
    assert_eq!(
        a.series_jsonl.as_bytes(),
        b.series_jsonl.as_bytes(),
        "recorder JSONL must replay byte-identically across same-seed runs"
    );
    assert_eq!(
        a.alert_log.as_bytes(),
        b.alert_log.as_bytes(),
        "watchdog alert log must replay byte-identically:\n--- run A ---\n{}\n--- run B ---\n{}",
        a.alert_log,
        b.alert_log
    );
}

#[test]
fn different_seeds_actually_diverge() {
    // Guards the test above against vacuity: if traces were empty or
    // seed-independent, bit-identity would hold trivially. Small scale is
    // enough — divergence shows up in the very first offer payloads.
    fn small_run(seed: u64) -> Vec<jxta::telemetry::trace::TraceSpan> {
        let mut scenario = Scenario::build_sharded(
            Flavor::SrTps,
            DisseminationConfig::rendezvous_mesh(2),
            2,
            1,
            8,
            seed,
            CostModel::free(),
        );
        scenario.enable_tracing(1 << 12);
        scenario.warm_up();
        scenario.publish_one(0);
        scenario.advance(SimDuration::from_secs(5));
        let collector = scenario.tracer().expect("tracing enabled").borrow();
        collector.spans().copied().collect()
    }
    let a = small_run(1);
    let b = small_run(2);
    assert!(!a.is_empty());
    assert_ne!(a, b, "different seeds must produce different traces");
}
