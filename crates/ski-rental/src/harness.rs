//! The measurement harness: builds the paper's testbed topologies and
//! regenerates the data series behind Figures 18, 19 and 20, plus the
//! programming-effort comparison of Section 4.4.
//!
//! All measurements are expressed in *virtual* time: per-message CPU costs
//! are charged through the simulator's cost model (calibrated to the paper's
//! JXTA 1.0 testbed) and network delays come from the link model. Runs are
//! deterministic for a given seed.

use crate::jxta_app::Role;
use crate::node::{Flavor, SkiNode};
use crate::workload::OfferGenerator;
use jxta::peer::CostModel;
use jxta::telemetry::series::{sparkline, RecorderConfig, SeriesRecorder};
use jxta::telemetry::slo::{AlertKind, SloRule, SloWatchdog};
use jxta::telemetry::trace::{DeliveryVerdict, TraceCollector, TraceId, DEFAULT_TRACE_CAPACITY};
use jxta::{DisseminationConfig, PeerId, SharedTraceCollector, StrategyKind};
use simnet::{
    DropReason, Network, NetworkBuilder, NodeConfig, NodeId, SimAddress, SimDuration, SimTime, SubnetId,
    TraceEvent, TransportKind,
};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

/// A built scenario: one or more rendezvous peers, `publishers` publishing
/// peers and `subscribers` subscribing peers, all on one LAN segment (the
/// paper's FastEthernet testbed of Sun Ultra 10s). Multi-rendezvous
/// deployments join the rendezvous peers in a full mesh of
/// rendezvous-to-rendezvous links (the sharded `RendezvousMesh` topology).
pub struct Scenario {
    net: Network,
    flavor: Flavor,
    dissemination: DisseminationConfig,
    rendezvous: Vec<NodeId>,
    publishers: Vec<NodeId>,
    subscribers: Vec<NodeId>,
    offers: OfferGenerator,
    invocation_times: telemetry::WindowedHistogram,
    tracer: Option<SharedTraceCollector>,
    /// Kernel node id ↔ 64-bit trace handle, for joining delivery spans
    /// against the kernel's own drop log.
    trace_nodes: Vec<(NodeId, u64)>,
    /// The flight recorder + SLO watchdog, if enabled. `None` costs nothing:
    /// every clock advance funnels through [`Scenario::run_net`], which
    /// degenerates to a plain `run_for` when this is unset.
    recorder: Option<RecorderState>,
    /// Events published through this harness so far (batched events count
    /// individually) — the denominator of the recorded delivery ratio.
    published_events: u64,
}

/// The recorder plumbing of a [`Scenario`]: the series store, the watchdog
/// evaluating rules against it, and the next point on the sampling grid.
struct RecorderState {
    recorder: SeriesRecorder,
    watchdog: SloWatchdog,
    next_sample_at: SimTime,
}

/// The series the operator view renders as sparklines — the health figures
/// an operator scans first, not the full catalogue.
const KEY_SERIES: [&str; 8] = [
    "harness.delivery_ratio",
    "harness.hot_shards",
    "harness.mailbox_depth_max",
    "harness.shard_load_zmax",
    "harness.stale_leases",
    "simnet.datagrams_delivered",
    "simnet.queue_len",
    "trace.latency_p99_ms",
];

/// The stock SLO rule set over the harness's recorded series, one rule per
/// [`AlertKind`]. Thresholds are the defaults documented in
/// `docs/observability.md`; scenarios with different service levels install
/// their own rules instead.
pub fn standard_slo_rules() -> Vec<SloRule> {
    vec![
        SloRule::floor(AlertKind::DeliveryRatioLow, "harness.delivery_ratio", 0.95),
        SloRule::ceiling(AlertKind::LatencyP99High, "trace.latency_p99_ms", 1000.0),
        SloRule::ceiling(AlertKind::MailboxDepthHigh, "harness.mailbox_depth_max", 1024.0),
        SloRule::ceiling(AlertKind::ShardImbalance, "harness.shard_load_zmax", 4.0),
        SloRule::ceiling(AlertKind::StaleLeases, "harness.stale_leases", 0.0),
        SloRule::ceiling(AlertKind::HotShard, "harness.hot_shards", 0.0),
    ]
}

impl Scenario {
    /// Builds (but does not yet warm up) a scenario.
    pub fn build(flavor: Flavor, publishers: usize, subscribers: usize, seed: u64) -> Scenario {
        Scenario::build_with_costs(flavor, publishers, subscribers, seed, CostModel::jxta_1_0())
    }

    /// Builds a scenario with an explicit cost model (functional tests use
    /// [`CostModel::free`]).
    pub fn build_with_costs(
        flavor: Flavor,
        publishers: usize,
        subscribers: usize,
        seed: u64,
        costs: CostModel,
    ) -> Scenario {
        Scenario::build_with_dissemination(
            flavor,
            DisseminationConfig::default(),
            publishers,
            subscribers,
            seed,
            costs,
        )
    }

    /// Builds a scenario whose peers all run the given dissemination
    /// strategy, on a single-rendezvous topology.
    pub fn build_with_dissemination(
        flavor: Flavor,
        dissemination: DisseminationConfig,
        publishers: usize,
        subscribers: usize,
        seed: u64,
        costs: CostModel,
    ) -> Scenario {
        Scenario::build_sharded(flavor, dissemination, 1, publishers, subscribers, seed, costs)
    }

    /// Builds a scenario with `rendezvous` rendezvous peers joined in a full
    /// mesh. Nodes `0..rendezvous` are the rendezvous peers (each seeded with
    /// its mesh peers' addresses); every edge peer is seeded with all
    /// rendezvous addresses — under [`jxta::StrategyKind::RendezvousMesh`]
    /// each edge leases with exactly the shard its peer id hashes to, under
    /// every other strategy the original connect-to-all behaviour applies.
    pub fn build_sharded(
        flavor: Flavor,
        dissemination: DisseminationConfig,
        rendezvous: usize,
        publishers: usize,
        subscribers: usize,
        seed: u64,
        costs: CostModel,
    ) -> Scenario {
        assert!(rendezvous >= 1, "a scenario needs at least one rendezvous");
        let mut builder = NetworkBuilder::new(seed);
        // Hosts are assigned 10.0.0.1 upward in add order, so the rendezvous
        // addresses are known before the nodes exist.
        let rdv_addrs: Vec<SimAddress> = (0..rendezvous)
            .map(|i| SimAddress::new(TransportKind::Tcp, 0x0A00_0001 + i as u32, 9701))
            .collect();
        let mut rendezvous_ids = Vec::new();
        for (i, _) in rdv_addrs.iter().enumerate() {
            let mesh_peers: Vec<SimAddress> = rdv_addrs
                .iter()
                .copied()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, a)| a)
                .collect();
            let rdv_config = jxta::peer::PeerConfig::rendezvous(format!("rdv-{i}"))
                .with_seeds(mesh_peers)
                .with_costs(costs.clone())
                .with_dissemination(dissemination.clone());
            rendezvous_ids.push(builder.add_node(
                Box::new(RdvNode {
                    peer: jxta::JxtaPeer::new(rdv_config),
                }),
                NodeConfig::lan_peer(SubnetId(0)),
            ));
        }
        let mut publisher_ids = Vec::new();
        for i in 0..publishers {
            let node = SkiNode::boxed_with_dissemination(
                flavor,
                Role::Publisher,
                &format!("shop-{i}"),
                rdv_addrs.clone(),
                costs.clone(),
                dissemination.clone(),
            );
            publisher_ids.push(builder.add_node(node, NodeConfig::lan_peer(SubnetId(0))));
        }
        let mut subscriber_ids = Vec::new();
        for i in 0..subscribers {
            let node = SkiNode::boxed_with_dissemination(
                flavor,
                Role::Subscriber,
                &format!("skier-{i}"),
                rdv_addrs.clone(),
                costs.clone(),
                dissemination.clone(),
            );
            subscriber_ids.push(builder.add_node(node, NodeConfig::lan_peer(SubnetId(0))));
        }
        Scenario {
            net: builder.build(),
            flavor,
            dissemination,
            rendezvous: rendezvous_ids,
            publishers: publisher_ids,
            subscribers: subscriber_ids,
            offers: OfferGenerator::new(seed ^ 0x5EED),
            invocation_times: telemetry::WindowedHistogram::default(),
            tracer: None,
            trace_nodes: Vec::new(),
            recorder: None,
            published_events: 0,
        }
    }

    /// Builds the mega-scale scenario: `rendezvous` full rendezvous peers in
    /// a sharded mesh, `publishers` SR-TPS publishers, and `subscribers`
    /// **flyweight** subscribers ([`SkiNode::boxed_flyweight`]) — a lease +
    /// mailbox each instead of a full JXTA stack, which is what makes 100k+
    /// subscriber populations buildable and runnable in seconds. Costs are
    /// free (flyweights model zero-CPU consumers); delivery is still the
    /// real wire protocol end to end.
    pub fn build_flyweight_mesh(
        rendezvous: usize,
        publishers: usize,
        subscribers: usize,
        seed: u64,
    ) -> Scenario {
        assert!(rendezvous >= 1, "a scenario needs at least one rendezvous");
        let dissemination = DisseminationConfig::rendezvous_mesh(rendezvous);
        let costs = CostModel::free();
        let mut builder = NetworkBuilder::new(seed);
        let rdv_addrs: Vec<SimAddress> = (0..rendezvous)
            .map(|i| SimAddress::new(TransportKind::Tcp, 0x0A00_0001 + i as u32, 9701))
            .collect();
        let mut rendezvous_ids = Vec::new();
        for i in 0..rendezvous {
            let mesh_peers: Vec<SimAddress> = rdv_addrs
                .iter()
                .copied()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, a)| a)
                .collect();
            let rdv_config = jxta::peer::PeerConfig::rendezvous(format!("rdv-{i}"))
                .with_seeds(mesh_peers)
                .with_costs(costs.clone())
                .with_dissemination(dissemination.clone());
            rendezvous_ids.push(builder.add_node(
                Box::new(RdvNode {
                    peer: jxta::JxtaPeer::new(rdv_config),
                }),
                NodeConfig::lan_peer(SubnetId(0)),
            ));
        }
        let mut publisher_ids = Vec::new();
        for i in 0..publishers {
            let node = SkiNode::boxed_with_dissemination(
                Flavor::SrTps,
                Role::Publisher,
                &format!("shop-{i}"),
                rdv_addrs.clone(),
                costs.clone(),
                dissemination.clone(),
            );
            publisher_ids.push(builder.add_node(node, NodeConfig::lan_peer(SubnetId(0))));
        }
        // TCP only: flyweights never join multicast groups, so the kernel's
        // per-subnet member lists stay small whatever the population.
        let flyweight_config = NodeConfig::lan_peer(SubnetId(0)).with_transports(vec![TransportKind::Tcp]);
        let subscriber_ids = (0..subscribers)
            .map(|i| {
                builder.add_node(
                    SkiNode::boxed_flyweight(&format!("skier-{i}"), rdv_addrs.clone(), rendezvous),
                    flyweight_config.clone(),
                )
            })
            .collect();
        Scenario {
            net: builder.build(),
            flavor: Flavor::SrTps,
            dissemination,
            rendezvous: rendezvous_ids,
            publishers: publisher_ids,
            subscribers: subscriber_ids,
            offers: OfferGenerator::new(seed ^ 0x5EED),
            invocation_times: telemetry::WindowedHistogram::default(),
            tracer: None,
            trace_nodes: Vec::new(),
            recorder: None,
            published_events: 0,
        }
    }

    /// Turns on the causal tracing plane: a shared span collector is
    /// installed on every peer (rendezvous and edges) and kernel tracing is
    /// enabled with the same capacity, so trace spans can be joined against
    /// the kernel's drop log for transport-level forensics. Call before
    /// [`Scenario::warm_up`] to also capture the warm-up traffic; a scenario
    /// without this call pays no tracing cost at all.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.net.enable_trace(capacity);
        let tracer: SharedTraceCollector = Rc::new(RefCell::new(TraceCollector::with_capacity(capacity)));
        let mut trace_nodes = Vec::new();
        for &id in &self.rendezvous {
            let node = self.net.node_mut::<RdvNode>(id).expect("rendezvous exists");
            node.peer.set_trace_collector(Rc::clone(&tracer), false);
            trace_nodes.push((id, node.peer.trace_node()));
        }
        for &id in self.publishers.iter().chain(&self.subscribers) {
            let node = self.net.node_mut::<SkiNode>(id).expect("edge exists");
            // Flyweights live outside the tracing plane (no per-copy spans
            // at mega-scale); everything else joins it.
            if node.peer_opt().is_none() {
                continue;
            }
            node.set_trace_collector(Rc::clone(&tracer));
            trace_nodes.push((id, node.peer_ref().trace_node()));
        }
        self.tracer = Some(tracer);
        self.trace_nodes = trace_nodes;
    }

    /// The shared trace collector, if [`Scenario::enable_tracing`] ran.
    pub fn tracer(&self) -> Option<&SharedTraceCollector> {
        self.tracer.as_ref()
    }

    /// The 64-bit trace handle of a simulation node, if tracing is on.
    pub fn trace_handle_of(&self, node: NodeId) -> Option<u64> {
        self.trace_nodes
            .iter()
            .find(|(id, _)| *id == node)
            .map(|(_, h)| *h)
    }

    /// Every event trace id the collector currently knows about.
    pub fn traced_ids(&self) -> Vec<TraceId> {
        self.tracer
            .as_ref()
            .map(|t| t.borrow().known_ids())
            .unwrap_or_default()
    }

    /// Drop forensics for one `(subscriber, event)` pair: where that
    /// subscriber's copy of the event ended up, reconstructed from the span
    /// trace (see [`TraceCollector::why_missing`]).
    ///
    /// # Panics
    ///
    /// Panics if tracing was not enabled.
    pub fn why_missing(&self, subscriber: usize, id: TraceId) -> DeliveryVerdict {
        let handle = self
            .trace_handle_of(self.subscribers[subscriber])
            .expect("tracing not enabled");
        self.tracer
            .as_ref()
            .expect("tracing not enabled")
            .borrow()
            .why_missing(handle, id)
    }

    /// Joins a [`DeliveryVerdict::LostOnWire`] verdict against the kernel's
    /// drop log: the transport-level [`DropReason`] of the first kernel drop
    /// originating at the verdict's last instrumented hop at-or-after the
    /// send span's timestamp. `None` for other verdicts (their causes are
    /// already named by the span itself) or when the kernel record was
    /// evicted from its ring.
    pub fn kernel_drop_reason(&self, verdict: &DeliveryVerdict) -> Option<DropReason> {
        let DeliveryVerdict::LostOnWire { last_send } = verdict else {
            return None;
        };
        let from = self
            .trace_nodes
            .iter()
            .find(|(_, h)| *h == last_send.node)
            .map(|(id, _)| *id)?;
        self.net
            .trace()
            .records()
            .find(|r| {
                r.at.as_micros() >= last_send.at_us
                    && matches!(
                        &r.event,
                        TraceEvent::DatagramDropped { from: f, .. } if *f == from
                    )
            })
            .and_then(|r| match &r.event {
                TraceEvent::DatagramDropped { reason, .. } => Some(*reason),
                _ => None,
            })
    }

    /// End-to-end virtual delivery latency summary (publish → subscriber
    /// delivery) over every traced event, from the collector's histogram.
    ///
    /// # Panics
    ///
    /// Panics if tracing was not enabled.
    pub fn delivery_latency_summary(&self) -> telemetry::HistogramSummary {
        self.tracer
            .as_ref()
            .expect("tracing not enabled")
            .borrow()
            .latency_histogram()
            .summary()
    }

    /// Turns on the flight recorder: from now on every clock advance pauses
    /// on a `config.cadence_us` virtual-time grid and samples the bounded
    /// observable surface (kernel aggregates, per-rendezvous peers, harness
    /// delivery/lease/mailbox/load figures, trace-plane latency quantiles)
    /// into the recorder's per-metric rings, then evaluates the installed
    /// SLO rules. No rules are installed by default — call
    /// [`Scenario::add_standard_slo_rules`] for the stock set or
    /// [`Scenario::add_slo_rule`] for custom ones. A scenario without this
    /// call pays no recording cost at all.
    pub fn enable_recorder(&mut self, config: RecorderConfig) {
        let next_sample_at = self
            .net
            .now()
            .saturating_add(SimDuration::from_micros(config.cadence_us));
        self.recorder = Some(RecorderState {
            recorder: SeriesRecorder::new(config),
            watchdog: SloWatchdog::new(),
            next_sample_at,
        });
    }

    /// Installs one SLO rule on the watchdog.
    ///
    /// # Panics
    ///
    /// Panics if the recorder was not enabled.
    pub fn add_slo_rule(&mut self, rule: SloRule) {
        self.recorder_state_mut().watchdog.add_rule(rule);
    }

    /// Installs the stock rule set over the harness's own recorded series —
    /// one rule per [`AlertKind`], thresholds documented in
    /// `docs/observability.md`.
    pub fn add_standard_slo_rules(&mut self) {
        for rule in standard_slo_rules() {
            self.add_slo_rule(rule);
        }
    }

    /// The flight recorder, if enabled.
    pub fn recorder(&self) -> Option<&SeriesRecorder> {
        self.recorder.as_ref().map(|s| &s.recorder)
    }

    /// The SLO watchdog, if the recorder is enabled.
    pub fn watchdog(&self) -> Option<&SloWatchdog> {
        self.recorder.as_ref().map(|s| &s.watchdog)
    }

    /// Records one harness-computed value into the named series at the
    /// current virtual time and immediately re-evaluates the watchdog —
    /// the hook `dst` uses to feed probe-scoped figures into SLO rules.
    ///
    /// # Panics
    ///
    /// Panics if the recorder was not enabled.
    pub fn record_custom(&mut self, name: impl Into<String>, value: f64) {
        let at = self.net.now().as_micros();
        let state = self.recorder_state_mut();
        state.recorder.record_value(at, name, value);
        state.watchdog.evaluate(at, &state.recorder);
    }

    /// Forces one full recorder sample at the current virtual instant,
    /// off-grid (the sampling grid itself is not advanced). Useful for a
    /// final sample after the last clock advance.
    ///
    /// # Panics
    ///
    /// Panics if the recorder was not enabled.
    pub fn record_sample_now(&mut self) {
        assert!(self.recorder.is_some(), "recorder not enabled");
        self.record_tick(false);
    }

    /// The recorder's full JSONL series export.
    ///
    /// # Panics
    ///
    /// Panics if the recorder was not enabled.
    pub fn export_series_jsonl(&self) -> String {
        self.recorder().expect("recorder not enabled").export_jsonl()
    }

    /// The watchdog's alert log as deterministic text.
    ///
    /// # Panics
    ///
    /// Panics if the recorder was not enabled.
    pub fn export_alert_log(&self) -> String {
        self.watchdog().expect("recorder not enabled").render_log()
    }

    fn recorder_state_mut(&mut self) -> &mut RecorderState {
        self.recorder.as_mut().expect("recorder not enabled")
    }

    /// Every clock advance funnels through here: with no recorder it is a
    /// plain `run_for`; with one, the run pauses on each cadence boundary
    /// to take a sample and evaluate the watchdog, so the series grid is
    /// identical whatever mix of `warm_up`/`advance`/`publish_*` calls
    /// produced the timeline.
    fn run_net(&mut self, duration: SimDuration) {
        if self.recorder.is_none() {
            self.net.run_for(duration);
            return;
        }
        let horizon = self.net.now().saturating_add(duration);
        while self.net.now() < horizon {
            let next_sample = self
                .recorder
                .as_ref()
                .expect("recorder checked above")
                .next_sample_at;
            self.net.run_until(next_sample.min(horizon));
            if self.net.now() >= next_sample {
                self.record_tick(true);
            }
        }
    }

    /// Takes one recorder sample at the current virtual instant and runs the
    /// watchdog. The sampled surface is deliberately bounded — kernel
    /// aggregates, the (few) rendezvous peers, and one O(edges) scan with no
    /// per-edge allocation — so a tick stays cheap at 100k-flyweight scale.
    fn record_tick(&mut self, advance_grid: bool) {
        let at = self.net.now().as_micros();
        let mut registry = telemetry::MetricsRegistry::new();
        self.net.export_metrics_aggregate(&mut registry);
        for (index, &id) in self.rendezvous.iter().enumerate() {
            if let Some(node) = self.net.node_ref::<RdvNode>(id) {
                node.peer
                    .export_metrics(&mut registry, &format!("jxta.rdv{index}"));
            }
        }

        // Rendezvous-side figures: lease counts (for the hot-shard rule) and
        // the owned-share-normalised load z-score (for the imbalance rule).
        let shards = self.rendezvous.len();
        let mut dead_rdvs: BTreeSet<PeerId> = BTreeSet::new();
        let mut lease_counts: Vec<u32> = Vec::with_capacity(shards);
        let mut load_rows: Vec<(f64, f64)> = Vec::with_capacity(shards);
        let mut total_clients = 0u64;
        for &id in &self.rendezvous {
            let alive = self.net.is_alive(id);
            let node = self.net.node_ref::<RdvNode>(id).expect("rendezvous exists");
            if !alive {
                dead_rdvs.insert(node.peer.peer_id());
                lease_counts.push(0);
                continue;
            }
            let clients = node.peer.rendezvous().counters().2 as u32;
            lease_counts.push(clients);
            total_clients += u64::from(clients);
            load_rows.push((
                f64::from(clients),
                node.peer.owned_shards().len() as f64 / shards as f64,
            ));
        }
        let mut zmax = 0.0f64;
        for (clients, share) in load_rows {
            if share <= 0.0 || share >= 1.0 {
                // A rendezvous owning nothing serves no leases; one owning
                // everything trivially holds them all. Neither is imbalance.
                continue;
            }
            let expected = total_clients as f64 * share;
            let sigma = (total_clients as f64 * share * (1.0 - share)).sqrt().max(1.0);
            zmax = zmax.max((clients - expected) / sigma);
        }
        let hot = jxta::dissem::hot_shards(&lease_counts, self.dissemination.rebalance.hot_ratio_percent);

        // One pass over the edge population: delivered copies, mailbox
        // depths, and live edges still leased to a dead rendezvous.
        let mut received_total = 0u64;
        let mut stale_leases = 0i64;
        let mut mailbox_max = 0i64;
        for &id in self.publishers.iter().chain(&self.subscribers) {
            let Some(node) = self.net.node_ref::<SkiNode>(id) else {
                continue;
            };
            if !self.net.is_alive(id) {
                continue;
            }
            if let Some(engine) = node.engine_ref() {
                mailbox_max = mailbox_max.max(engine.mailbox_depth() as i64);
            }
            if let Some(rdv) = node.leased_rendezvous() {
                if dead_rdvs.contains(&rdv) {
                    stale_leases += 1;
                }
            }
        }
        for &id in &self.subscribers {
            if let Some(node) = self.net.node_ref::<SkiNode>(id) {
                received_total += node.received_count() as u64;
            }
        }
        let expected_copies = self.published_events * self.subscribers.len() as u64;
        let delivery_ratio = if expected_copies == 0 {
            1.0
        } else {
            received_total as f64 / expected_copies as f64
        };

        let state = self.recorder.as_mut().expect("recorder not enabled");
        state.recorder.sample(at, &registry.snapshot());
        state
            .recorder
            .record_value(at, "harness.delivery_ratio", delivery_ratio);
        state
            .recorder
            .record_value(at, "harness.hot_shards", hot.len() as f64);
        state
            .recorder
            .record_value(at, "harness.mailbox_depth_max", mailbox_max as f64);
        state.recorder.record_value(at, "harness.shard_load_zmax", zmax);
        state
            .recorder
            .record_value(at, "harness.stale_leases", stale_leases as f64);
        if let Some(tracer) = &self.tracer {
            let summary = tracer.borrow().latency_histogram().summary();
            state
                .recorder
                .record_value(at, "trace.latency_p50_ms", summary.p50);
            state
                .recorder
                .record_value(at, "trace.latency_p99_ms", summary.p99);
        }
        state.watchdog.evaluate(at, &state.recorder);
        if advance_grid {
            // Stay phase-aligned to the original grid, but never schedule a
            // boundary at-or-before `now`: a churn driver advancing the
            // network directly can leave the grid behind, and replaying the
            // missed boundaries would stack identical-time samples.
            let cadence = SimDuration::from_micros(state.recorder.cadence_us());
            let now = SimTime::from_micros(at);
            let mut next = state.next_sample_at.saturating_add(cadence);
            while next <= now {
                next = next.saturating_add(cadence);
            }
            state.next_sample_at = next;
        }
    }

    /// The operator's text console: the full metrics snapshot (rendered via
    /// [`telemetry::MetricsSnapshot::render_text`]), the flight recorder's
    /// key series as sparklines plus the active-alert table (when the
    /// recorder is on), the end-to-end delivery latency summary, and the
    /// causal timeline of up to `max_timelines` traced events (newest first
    /// — the events an operator is usually debugging).
    pub fn operator_view(&self, max_timelines: usize) -> String {
        let mut out = String::new();
        out.push_str("== metrics ==\n");
        out.push_str(&self.metrics_registry().snapshot().render_text());
        if let Some(state) = &self.recorder {
            out.push_str("\n== series ==\n");
            for name in KEY_SERIES {
                let Some(series) = state.recorder.series(name) else {
                    continue;
                };
                let last = series.last().map_or(0.0, |p| p.value);
                out.push_str(&format!(
                    "{name:<26} {} last={}\n",
                    sparkline(&series.values()),
                    jxta::telemetry::export::format_f64(last),
                ));
            }
            out.push_str("\n== active alerts ==\n");
            let mut any = false;
            for alert in state.watchdog.active_alerts() {
                any = true;
                out.push_str(&format!("{alert}\n"));
            }
            if !any {
                out.push_str("(none)\n");
            }
        }
        if let Some(tracer) = &self.tracer {
            let collector = tracer.borrow();
            let summary = collector.latency_histogram().summary();
            out.push_str("\n== delivery latency (virtual ms) ==\n");
            out.push_str(&format!(
                "count={} p50={:.3} p99={:.3} max={:.3}\n",
                summary.count, summary.p50, summary.p99, summary.max
            ));
            out.push_str("\n== event timelines ==\n");
            let mut ids = collector.known_ids();
            ids.reverse();
            for id in ids.into_iter().take(max_timelines) {
                out.push_str(&collector.timeline(id));
                out.push('\n');
            }
        }
        out
    }

    /// The flavour this scenario runs.
    pub fn flavor(&self) -> Flavor {
        self.flavor
    }

    /// The dissemination strategy this scenario's peers run.
    pub fn dissemination(&self) -> &DisseminationConfig {
        &self.dissemination
    }

    /// Read access to the simulated network (stats, traces).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the simulated network, for churn scripts
    /// (`simnet::ChurnDriver::run_until` needs `&mut Network`).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Runs the initialisation phase: rendezvous connection, advertisement
    /// publication/discovery and pipe binding.
    pub fn warm_up(&mut self) {
        self.run_net(SimDuration::from_secs(30));
    }

    /// Advances virtual time.
    pub fn advance(&mut self, duration: SimDuration) {
        self.run_net(duration);
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Publishes one generated offer from publisher `index` and returns the
    /// invocation time (the virtual CPU time the `publish` call consumed at
    /// the publisher — the quantity of the paper's Figure 18). The clock is
    /// advanced by the same amount, modelling the publisher being busy.
    pub fn publish_one(&mut self, index: usize) -> SimDuration {
        let charged = self.publish_without_advancing(index);
        self.invocation_times.record(charged.as_millis_f64());
        self.run_net(charged);
        charged
    }

    /// Publishes one offer from publisher `index` without advancing the
    /// clock; used to model several publishers working concurrently (the
    /// caller advances by the longest of the per-publisher busy times).
    pub fn publish_without_advancing(&mut self, index: usize) -> SimDuration {
        let offer = self.offers.next_offer();
        let node = self.publishers[index];
        self.published_events += 1;
        self.net.invoke::<SkiNode, _>(node, |peer, ctx| {
            peer.publish_offer(ctx, &offer).expect("publish failed");
            ctx.charged()
        })
    }

    /// Publishes `count` generated offers from publisher `index` as **one**
    /// batch (`Publisher::publish_batch` under SR-TPS) and returns the
    /// invocation time the single batched call consumed at the publisher.
    /// The clock advances by the same amount.
    pub fn publish_batch(&mut self, index: usize, count: usize) -> SimDuration {
        let offers: Vec<_> = (0..count).map(|_| self.offers.next_offer()).collect();
        let node = self.publishers[index];
        self.published_events += count as u64;
        let charged = self.net.invoke::<SkiNode, _>(node, |peer, ctx| {
            peer.publish_offer_batch(ctx, &offers)
                .expect("batch publish failed");
            ctx.charged()
        });
        self.run_net(charged);
        charged
    }

    /// The simulation node ids of the rendezvous peers, in shard order.
    pub fn rendezvous_ids(&self) -> &[NodeId] {
        &self.rendezvous
    }

    /// How many rendezvous peers the scenario was built with.
    pub fn num_rendezvous(&self) -> usize {
        self.rendezvous.len()
    }

    /// How many publishers the scenario was built with.
    pub fn num_publishers(&self) -> usize {
        self.publishers.len()
    }

    /// How many subscribers the scenario was built with.
    pub fn num_subscribers(&self) -> usize {
        self.subscribers.len()
    }

    /// The simulation node id of publisher `index`.
    pub fn publisher_id(&self, index: usize) -> NodeId {
        self.publishers[index]
    }

    /// The simulation node id of subscriber `index`.
    pub fn subscriber_id(&self, index: usize) -> NodeId {
        self.subscribers[index]
    }

    /// Per-rendezvous `(client leases, mesh links)` counts, in shard order —
    /// the structural per-event forwarding fan-out of each rendezvous (a
    /// rendezvous forwards one copy per client lease, plus one per mesh link
    /// when it roots the event's shard).
    pub fn rendezvous_loads(&self) -> Vec<(usize, usize)> {
        self.rendezvous
            .iter()
            .map(|&id| {
                let node = self.net.node_ref::<RdvNode>(id).expect("rendezvous exists");
                let service = node.peer.rendezvous();
                (service.counters().2, service.mesh_degree())
            })
            .collect()
    }

    /// The operator's shard view: one [`ShardLoadRow`] per rendezvous, in
    /// shard order, built from the telemetry plane — liveness, owned hash
    /// ranges (own + adopted), lease and mesh-link counts, relay work, and
    /// the hot-shard flag of the rebalancing controller's load-ratio rule.
    pub fn shard_load_report(&self) -> Vec<ShardLoadRow> {
        let lease_counts: Vec<u32> = self
            .rendezvous
            .iter()
            .map(|&id| {
                if !self.net.is_alive(id) {
                    return 0;
                }
                self.net
                    .node_ref::<RdvNode>(id)
                    .map_or(0, |n| n.peer.rendezvous().counters().2 as u32)
            })
            .collect();
        let hot = jxta::dissem::hot_shards(&lease_counts, self.dissemination.rebalance.hot_ratio_percent);
        self.rendezvous
            .iter()
            .enumerate()
            .map(|(shard, &id)| {
                let alive = self.net.is_alive(id);
                let peer = self
                    .net
                    .node_ref::<RdvNode>(id)
                    .map(|n| &n.peer)
                    .expect("rendezvous exists");
                let service = peer.rendezvous();
                ShardLoadRow {
                    shard,
                    node: id,
                    alive,
                    owned_shards: if alive { peer.owned_shards() } else { Vec::new() },
                    adopted_shards: if alive { peer.adopted_shards() } else { Vec::new() },
                    clients: service.counters().2,
                    mesh_links: service.mesh_degree(),
                    relayed: peer.wire().forwarded(),
                    hot: hot.contains(&shard),
                }
            })
            .collect()
    }

    /// A full-stack metrics snapshot source: the simulation kernel's
    /// counters (`simnet.*`), every rendezvous peer (`jxta.rdv<i>.*`,
    /// including the per-shard load-table rows), every SR-TPS edge engine
    /// (`tps.pub<i>.*` / `tps.sub<i>.*`), and the harness's own publish
    /// invocation-time histogram (`harness.publish_invocation_ms`).
    pub fn metrics_registry(&self) -> telemetry::MetricsRegistry {
        let mut registry = telemetry::MetricsRegistry::new();
        self.net.export_metrics(&mut registry);
        for (index, &id) in self.rendezvous.iter().enumerate() {
            if let Some(node) = self.net.node_ref::<RdvNode>(id) {
                node.peer
                    .export_metrics(&mut registry, &format!("jxta.rdv{index}"));
            }
        }
        let edges = self
            .publishers
            .iter()
            .enumerate()
            .map(|(i, &id)| (format!("pub{i}"), id))
            .chain(
                self.subscribers
                    .iter()
                    .enumerate()
                    .map(|(i, &id)| (format!("sub{i}"), id)),
            );
        for (label, id) in edges {
            let Some(node) = self.net.node_ref::<SkiNode>(id) else {
                continue;
            };
            match (node.engine_ref(), node.peer_opt()) {
                (Some(engine), _) => engine.export_metrics(&mut registry, &format!("tps.{label}")),
                (None, Some(peer)) => peer.export_metrics(&mut registry, &format!("jxta.{label}")),
                // Flyweights have no metrics surface of their own; the
                // kernel's simnet.* counters already cover their traffic.
                (None, None) => {}
            }
        }
        registry.insert_histogram("harness.publish_invocation_ms", self.invocation_times.clone());
        registry
    }

    /// The shard (rendezvous node id) an edge peer currently leases with,
    /// if it is connected.
    pub fn shard_of(&self, edge: NodeId) -> Option<NodeId> {
        let connected_rdv = self.net.node_ref::<SkiNode>(edge)?.leased_rendezvous()?;
        self.rendezvous.iter().copied().find(|&id| {
            self.net
                .node_ref::<RdvNode>(id)
                .is_some_and(|n| n.peer.peer_id() == connected_rdv)
        })
    }

    /// Publishes one offer from publisher `index` and returns how many
    /// datagrams the publisher put on the wire for it — the publisher-side
    /// copy count of the dissemination strategy (O(subscribers) under the
    /// paper baseline, O(1) under the tree and the sharded mesh).
    pub fn publish_counting_copies(&mut self, index: usize) -> usize {
        let node = self.publishers[index];
        let before = self.net.stats_of(node).datagrams_sent;
        let charged = self.publish_without_advancing(index);
        let copies = (self.net.stats_of(node).datagrams_sent - before) as usize;
        self.run_net(charged.saturating_add(SimDuration::from_millis(1)));
        copies
    }

    /// Offers received so far by subscriber `index`, with arrival times.
    pub fn received_times(&self, index: usize) -> Vec<SimTime> {
        self.net
            .node_ref::<SkiNode>(self.subscribers[index])
            .expect("subscriber exists")
            .received_times()
    }

    /// The flyweight behind subscriber `index`, for scenarios built with
    /// [`Scenario::build_flyweight_mesh`] (`None` for full-stack subscribers).
    pub fn flyweight(&self, index: usize) -> Option<&jxta::FlyweightEdge> {
        self.net
            .node_ref::<SkiNode>(self.subscribers[index])?
            .flyweight_ref()
    }

    /// Number of offers received so far by subscriber `index`.
    pub fn received_count(&self, index: usize) -> usize {
        self.net
            .node_ref::<SkiNode>(self.subscribers[index])
            .expect("subscriber exists")
            .received_count()
    }
}

/// One row of [`Scenario::shard_load_report`]: everything an operator needs
/// to see about one rendezvous shard at a glance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLoadRow {
    /// The shard index (ring position).
    pub shard: usize,
    /// The simulation node running this shard's rendezvous.
    pub node: NodeId,
    /// Whether the rendezvous process is up.
    pub alive: bool,
    /// Every hash range this rendezvous currently serves (its own plus any
    /// adopted dead shards'); empty while the node is down.
    pub owned_shards: Vec<usize>,
    /// The adopted (formerly dead) ranges only.
    pub adopted_shards: Vec<usize>,
    /// Client leases currently held.
    pub clients: usize,
    /// Live rendezvous-to-rendezvous mesh links.
    pub mesh_links: usize,
    /// Wire copies forwarded on behalf of other peers since boot.
    pub relayed: u64,
    /// Whether the rebalancing controller's load-ratio rule flags this
    /// shard as hot (lease count above the configured multiple of the mean).
    pub hot: bool,
}

impl std::fmt::Display for ShardLoadRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} [{}] owns {:?} clients={} mesh={} relayed={}{}",
            self.shard,
            if self.alive { "alive" } else { "DEAD" },
            self.owned_shards,
            self.clients,
            self.mesh_links,
            self.relayed,
            if self.hot { " HOT" } else { "" }
        )
    }
}

/// A bare rendezvous node (no application on top).
#[derive(Debug)]
struct RdvNode {
    peer: jxta::JxtaPeer,
}

impl simnet::SimNode for RdvNode {
    fn on_start(&mut self, ctx: &mut simnet::NodeContext<'_>) {
        self.peer.on_start(ctx);
    }
    fn on_datagram(&mut self, ctx: &mut simnet::NodeContext<'_>, dg: simnet::Datagram) {
        self.peer.on_datagram(ctx, &dg);
        let _ = self.peer.take_events();
    }
    fn on_timer(&mut self, ctx: &mut simnet::NodeContext<'_>, _token: simnet::TimerToken, tag: u64) {
        if jxta::is_jxta_timer(tag) {
            self.peer.on_timer(ctx, tag);
        }
        let _ = self.peer.take_events();
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

// ---------------------------------------------------------------------------
// Figure 18 — invocation time
// ---------------------------------------------------------------------------

/// One series of the paper's Figure 18: the per-event invocation time (ms) of
/// `events` back-to-back publications with `subscribers` connected
/// subscribers.
pub fn invocation_time(flavor: Flavor, subscribers: usize, events: usize, seed: u64) -> Vec<f64> {
    invocation_time_with_dissemination(flavor, DisseminationConfig::default(), subscribers, events, seed)
}

/// The Figure 18 series under an explicit dissemination strategy — the
/// workload behind the `ablation_dissem` bench. Under the paper baseline the
/// publisher's invocation time grows linearly with `subscribers`; under the
/// rendezvous tree it stays flat (one copy to the rendezvous, whatever the
/// subscriber count).
pub fn invocation_time_with_dissemination(
    flavor: Flavor,
    dissemination: DisseminationConfig,
    subscribers: usize,
    events: usize,
    seed: u64,
) -> Vec<f64> {
    let mut scenario = Scenario::build_with_dissemination(
        flavor,
        dissemination,
        1,
        subscribers,
        seed,
        CostModel::jxta_1_0(),
    );
    scenario.warm_up();
    (0..events)
        .map(|_| scenario.publish_one(0).as_millis_f64())
        .collect()
}

/// Runs the same publish workload under every dissemination strategy and
/// returns `(strategy, mean publisher invocation time in ms)` per strategy —
/// the scenario behind the dissemination ablation.
pub fn dissemination_comparison(
    flavor: Flavor,
    subscribers: usize,
    events: usize,
    seed: u64,
) -> Vec<(StrategyKind, f64)> {
    StrategyKind::ALL
        .into_iter()
        .map(|kind| {
            let series = invocation_time_with_dissemination(
                flavor,
                DisseminationConfig::of_kind(kind),
                subscribers,
                events,
                seed,
            );
            (kind, stats(&series).mean)
        })
        .collect()
}

/// Runs a traced publish workload under every dissemination strategy and
/// returns `(strategy, end-to-end virtual delivery latency summary)` per
/// strategy — the `trace_latency` series of the dissemination ablation. The
/// latency of one event is publish-span to delivery-span on the virtual
/// clock; each delivery (one per subscriber per event) contributes one
/// sample.
pub fn trace_latency_comparison(
    flavor: Flavor,
    subscribers: usize,
    events: usize,
    seed: u64,
) -> Vec<(StrategyKind, telemetry::HistogramSummary)> {
    StrategyKind::ALL
        .into_iter()
        .map(|kind| {
            let mut scenario = Scenario::build_with_dissemination(
                flavor,
                DisseminationConfig::of_kind(kind),
                1,
                subscribers,
                seed,
                CostModel::jxta_1_0(),
            );
            scenario.enable_tracing(DEFAULT_TRACE_CAPACITY);
            scenario.warm_up();
            for _ in 0..events {
                scenario.publish_one(0);
            }
            // Let the last event's copies drain through the overlay before
            // closing the books.
            scenario.advance(SimDuration::from_secs(10));
            (kind, scenario.delivery_latency_summary())
        })
        .collect()
}

/// One row of the sharded rendezvous-mesh ablation: cost structure of the
/// `RendezvousMesh` strategy at a given shard count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshReport {
    /// Number of rendezvous shards (N).
    pub shards: usize,
    /// Number of subscribers in the run.
    pub subscribers: usize,
    /// Copies the publisher sent per event (the publisher-side cost; O(1)
    /// under the mesh, whatever `subscribers` or `shards`).
    pub publisher_copies: usize,
    /// The largest per-rendezvous forwarding fan-out: local client leases
    /// plus mesh links of the most loaded rendezvous.
    pub max_rendezvous_fanout: usize,
    /// The largest number of client leases on any one rendezvous (how uneven
    /// the hash sharding came out).
    pub max_rendezvous_clients: usize,
    /// Mesh links per rendezvous (N - 1 on the full mesh).
    pub mesh_links: usize,
    /// Fraction of published events that reached every subscriber.
    pub delivered_ratio: f64,
}

/// Runs the mesh workload at `shards` rendezvous peers and measures its cost
/// structure: publisher copies per event, the per-rendezvous fan-out, and
/// delivery coverage. The workload behind the `ablation_dissem` mesh series —
/// publisher copies stay flat in `subscribers` while the per-rendezvous
/// fan-out shrinks as `shards` grows.
pub fn mesh_fanout_report(subscribers: usize, shards: usize, events: usize, seed: u64) -> MeshReport {
    let mut scenario = Scenario::build_sharded(
        Flavor::SrTps,
        DisseminationConfig::rendezvous_mesh(shards),
        shards,
        1,
        subscribers,
        seed,
        CostModel::free(),
    );
    scenario.warm_up();
    let mut publisher_copies = 0;
    for _ in 0..events {
        publisher_copies = publisher_copies.max(scenario.publish_counting_copies(0));
    }
    scenario.advance(SimDuration::from_secs(10));
    let loads = scenario.rendezvous_loads();
    let max_rendezvous_fanout = loads.iter().map(|&(c, m)| c + m).max().unwrap_or(0);
    let max_rendezvous_clients = loads.iter().map(|&(c, _)| c).max().unwrap_or(0);
    let mesh_links = loads.iter().map(|&(_, m)| m).max().unwrap_or(0);
    let delivered: usize = (0..subscribers).map(|i| scenario.received_count(i)).sum();
    let expected = subscribers * events;
    MeshReport {
        shards,
        subscribers,
        publisher_copies,
        max_rendezvous_fanout,
        max_rendezvous_clients,
        mesh_links,
        delivered_ratio: if expected == 0 {
            1.0
        } else {
            delivered as f64 / expected as f64
        },
    }
}

/// The batching ablation: publisher-side invocation time (ms) for `events`
/// offers published one by one versus as a single `publish_batch` call,
/// under the given dissemination strategy. Returns `(singles_ms, batch_ms)`
/// — the *total* virtual CPU time the publisher spent invoking `publish`.
///
/// Batching flattens the per-event cost because the per-message charges
/// (connection service per listener, message padding) are paid once per
/// batch instead of once per event.
pub fn batch_comparison(
    flavor: Flavor,
    dissemination: DisseminationConfig,
    subscribers: usize,
    events: usize,
    seed: u64,
) -> (f64, f64) {
    let singles = {
        let mut scenario = Scenario::build_with_dissemination(
            flavor,
            dissemination.clone(),
            1,
            subscribers,
            seed,
            CostModel::jxta_1_0(),
        );
        scenario.warm_up();
        (0..events).map(|_| scenario.publish_one(0).as_millis_f64()).sum()
    };
    let batch = {
        let mut scenario = Scenario::build_with_dissemination(
            flavor,
            dissemination,
            1,
            subscribers,
            seed,
            CostModel::jxta_1_0(),
        );
        scenario.warm_up();
        scenario.publish_batch(0, events).as_millis_f64()
    };
    (singles, batch)
}

// ---------------------------------------------------------------------------
// Figure 19 — publisher throughput
// ---------------------------------------------------------------------------

/// One series of the paper's Figure 19: events sent per second, per epoch,
/// while publishing `events` events split into `epochs` epochs.
pub fn publisher_throughput(
    flavor: Flavor,
    subscribers: usize,
    events: usize,
    epochs: usize,
    seed: u64,
) -> Vec<f64> {
    let mut scenario = Scenario::build(flavor, 1, subscribers, seed);
    scenario.warm_up();
    let per_epoch = events / epochs;
    let mut series = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let start = scenario.now();
        for _ in 0..per_epoch {
            scenario.publish_one(0);
        }
        let elapsed = scenario.now().saturating_since(start).as_secs_f64();
        series.push(if elapsed > 0.0 {
            per_epoch as f64 / elapsed
        } else {
            0.0
        });
    }
    series
}

// ---------------------------------------------------------------------------
// Figure 20 — subscriber throughput
// ---------------------------------------------------------------------------

/// One series of the paper's Figure 20: the number of events received per
/// second at a single subscriber, sampled every second for `seconds`, while
/// `publishers` publishers flood it.
pub fn subscriber_throughput(flavor: Flavor, publishers: usize, seconds: usize, seed: u64) -> Vec<f64> {
    let mut scenario = Scenario::build(flavor, publishers, 1, seed);
    scenario.warm_up();
    let start = scenario.now();
    let end = start + SimDuration::from_secs(seconds as u64);
    // Publishers flood concurrently: in each round every publisher issues one
    // event at the current instant (they are separate machines), and the
    // clock advances by the slowest publisher's busy time.
    while scenario.now() < end {
        let mut round_max = SimDuration::ZERO;
        for publisher in 0..publishers {
            let charged = scenario.publish_without_advancing(publisher);
            if charged > round_max {
                round_max = charged;
            }
        }
        scenario.advance(round_max.saturating_add(SimDuration::from_millis(1)));
    }
    // Bucket arrivals into one-second windows relative to the flood start.
    let mut buckets = vec![0.0_f64; seconds];
    for at in scenario.received_times(0) {
        if at < start {
            continue;
        }
        let offset = at.saturating_since(start).as_secs_f64();
        let bucket = offset as usize;
        if bucket < seconds {
            buckets[bucket] += 1.0;
        }
    }
    buckets
}

// ---------------------------------------------------------------------------
// Section 4.4 — programming-effort comparison
// ---------------------------------------------------------------------------

/// Line-count comparison of the code a programmer must write (and, for the
/// direct-JXTA route, re-implement) for the ski-rental application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocReport {
    /// Lines the TPS user writes (type definition + SR-TPS application).
    pub tps_user_loc: usize,
    /// Lines the direct-JXTA user writes for equal functionality (SR-JXTA:
    /// advertisements creator/finder, wire service finder, dedup, histories).
    pub jxta_user_loc: usize,
    /// Lines of the TPS library itself — functionality the direct-JXTA user
    /// would have to re-create to obtain the full API (the paper's "about
    /// 5000 lines" figure).
    pub tps_library_loc: usize,
}

impl LocReport {
    /// Lines saved by using TPS while writing the minimal application
    /// (the paper's "at least 900 lines" claim).
    pub fn minimal_savings(&self) -> isize {
        self.jxta_user_loc as isize - self.tps_user_loc as isize
    }

    /// Lines saved when the full API functionality is needed (the paper's
    /// "about 5000 lines" claim).
    pub fn full_api_savings(&self) -> isize {
        self.minimal_savings() + self.tps_library_loc as isize
    }
}

fn count_loc(sources: &[&str]) -> usize {
    sources
        .iter()
        .flat_map(|s| s.lines())
        .filter(|line| {
            let trimmed = line.trim();
            !trimmed.is_empty() && !trimmed.starts_with("//")
        })
        .count()
}

/// Computes the programming-effort comparison from the actual sources in this
/// repository.
pub fn loc_report() -> LocReport {
    let tps_user = [include_str!("types.rs"), include_str!("tps_app.rs")];
    let jxta_user = [include_str!("types.rs"), include_str!("jxta_app.rs")];
    let tps_library = [
        include_str!("../../tps/src/engine.rs"),
        include_str!("../../tps/src/interface.rs"),
        include_str!("../../tps/src/codec.rs"),
        include_str!("../../tps/src/callback.rs"),
        include_str!("../../tps/src/criteria.rs"),
        include_str!("../../tps/src/event.rs"),
        include_str!("../../tps/src/error.rs"),
        include_str!("../../tps/src/host.rs"),
    ];
    LocReport {
        tps_user_loc: count_loc(&tps_user),
        jxta_user_loc: count_loc(&jxta_user),
        tps_library_loc: count_loc(&tps_library),
    }
}

/// Simple descriptive statistics used by the reproduction reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

/// Computes mean / standard deviation / min / max of a series.
pub fn stats(series: &[f64]) -> SeriesStats {
    if series.is_empty() {
        return SeriesStats {
            mean: 0.0,
            std_dev: 0.0,
            min: 0.0,
            max: 0.0,
        };
    }
    let mean = series.iter().sum::<f64>() / series.len() as f64;
    let variance = series.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / series.len() as f64;
    let min = series.iter().copied().fold(f64::INFINITY, f64::min);
    let max = series.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    SeriesStats {
        mean,
        std_dev: variance.sqrt(),
        min,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_delivery_for_every_flavor() {
        for flavor in Flavor::ALL {
            let mut scenario = Scenario::build_with_costs(flavor, 1, 1, 11, CostModel::free());
            scenario.warm_up();
            for _ in 0..5 {
                scenario.publish_one(0);
            }
            scenario.advance(SimDuration::from_secs(10));
            assert_eq!(
                scenario.received_count(0),
                5,
                "{flavor}: subscriber should receive every published offer exactly once"
            );
        }
    }

    #[test]
    fn functional_delivery_under_every_dissemination_strategy() {
        for kind in StrategyKind::ALL {
            let mut scenario = Scenario::build_with_dissemination(
                Flavor::SrTps,
                DisseminationConfig::of_kind(kind),
                1,
                3,
                11,
                CostModel::free(),
            );
            scenario.warm_up();
            for _ in 0..5 {
                scenario.publish_one(0);
            }
            scenario.advance(SimDuration::from_secs(10));
            for subscriber in 0..3 {
                assert_eq!(
                    scenario.received_count(subscriber),
                    5,
                    "{kind}: every subscriber receives every offer exactly once"
                );
            }
        }
    }

    #[test]
    fn gossip_defaults_deliver_most_events_on_a_wide_neighbourhood() {
        // Fanout 4 / TTL 4 is a genuinely probabilistic regime: coverage must
        // stay high at 16 subscribers (duplicate copies re-sample a fresh
        // fanout on every hop), though a small miss fraction is inherent.
        let mut scenario = Scenario::build_with_dissemination(
            Flavor::SrTps,
            DisseminationConfig::of_kind(StrategyKind::Gossip),
            1,
            16,
            11,
            CostModel::free(),
        );
        scenario.warm_up();
        for _ in 0..5 {
            scenario.publish_one(0);
            scenario.advance(SimDuration::from_secs(1));
        }
        scenario.advance(SimDuration::from_secs(20));
        let delivered: usize = (0..16).map(|i| scenario.received_count(i)).sum();
        let expected = 16 * 5;
        assert!(
            delivered * 10 >= expected * 8,
            "gossip defaults should reach at least 80% of subscribers (delivered {delivered}/{expected})"
        );
    }

    #[test]
    fn rendezvous_tree_publisher_cost_is_flat_where_direct_fanout_grows() {
        // The Figure 18 trend (invocation time vs subscribers) per strategy:
        // the baseline pays one connection service per listener, the tree
        // pays one per publish, whatever the subscriber count.
        let direct = |subs| {
            stats(&invocation_time_with_dissemination(
                Flavor::SrTps,
                DisseminationConfig::direct_fanout(),
                subs,
                8,
                2002,
            ))
            .mean
        };
        let tree = |subs| {
            stats(&invocation_time_with_dissemination(
                Flavor::SrTps,
                DisseminationConfig::rendezvous_tree(),
                subs,
                8,
                2002,
            ))
            .mean
        };
        let (direct_1, direct_8) = (direct(1), direct(8));
        let (tree_1, tree_8) = (tree(1), tree(8));
        assert!(
            direct_8 > direct_1 * 4.0,
            "direct fan-out must grow roughly linearly ({direct_1:.1} -> {direct_8:.1} ms)"
        );
        assert!(
            tree_8 < tree_1 * 2.0,
            "rendezvous tree must stay roughly flat ({tree_1:.1} -> {tree_8:.1} ms)"
        );
        assert!(
            tree_8 < direct_8 / 2.0,
            "at 8 subscribers the tree publisher must be far cheaper ({tree_8:.1} vs {direct_8:.1} ms)"
        );
    }

    #[test]
    fn batched_publish_is_far_cheaper_than_singles_under_direct_fanout() {
        // The ablation_batch acceptance criterion: publishing 64 offers as
        // one batch must cost the publisher measurably less invocation time
        // than 64 single publishes (the per-message connection services are
        // paid once per batch instead of once per event).
        let (singles, batch) =
            batch_comparison(Flavor::SrTps, DisseminationConfig::direct_fanout(), 2, 64, 2002);
        assert!(
            batch * 4.0 < singles,
            "a 64-event batch should be at least 4x cheaper than 64 singles \
             ({batch:.1} vs {singles:.1} ms)"
        );
    }

    #[test]
    fn batched_publish_delivers_every_event() {
        let mut scenario = Scenario::build_with_costs(Flavor::SrTps, 1, 2, 13, CostModel::free());
        scenario.warm_up();
        scenario.publish_batch(0, 8);
        scenario.advance(SimDuration::from_secs(10));
        for subscriber in 0..2 {
            assert_eq!(
                scenario.received_count(subscriber),
                8,
                "every batched offer reaches every subscriber exactly once"
            );
        }
    }

    #[test]
    fn dissemination_comparison_covers_all_strategies() {
        let report = dissemination_comparison(Flavor::SrTps, 2, 3, 7);
        assert_eq!(report.len(), StrategyKind::ALL.len());
        assert!(report.iter().all(|(_, mean)| *mean > 0.0));
        assert_eq!(report[0].0, StrategyKind::DirectFanout);
    }

    #[test]
    fn sharded_mesh_delivers_across_shards() {
        let mut scenario = Scenario::build_sharded(
            Flavor::SrTps,
            DisseminationConfig::rendezvous_mesh(3),
            3,
            1,
            6,
            11,
            CostModel::free(),
        );
        scenario.warm_up();
        // The subscribers must spread over more than one shard, or the mesh
        // links are never exercised.
        let shards: std::collections::HashSet<_> = (0..6)
            .filter_map(|i| scenario.shard_of(scenario.subscriber_id(i)))
            .collect();
        assert!(
            shards.len() > 1,
            "6 subscribers over 3 shards should span several shards"
        );
        for _ in 0..5 {
            scenario.publish_one(0);
        }
        scenario.advance(SimDuration::from_secs(10));
        for subscriber in 0..6 {
            assert_eq!(
                scenario.received_count(subscriber),
                5,
                "mesh: every subscriber receives every offer exactly once"
            );
        }
        // Full mesh of 3: every rendezvous holds 2 mesh links.
        assert!(scenario.rendezvous_loads().iter().all(|&(_, m)| m == 2));
    }

    #[test]
    fn mesh_report_shows_flat_publisher_and_sharded_fanout() {
        let one = mesh_fanout_report(12, 1, 3, 2002);
        let four = mesh_fanout_report(12, 4, 3, 2002);
        assert_eq!(one.publisher_copies, 1, "publisher sends exactly one copy");
        assert_eq!(
            four.publisher_copies, 1,
            "publisher copies independent of shard count"
        );
        assert_eq!(one.mesh_links, 0);
        assert_eq!(four.mesh_links, 3);
        assert!(
            four.max_rendezvous_clients < one.max_rendezvous_clients,
            "sharding must spread the client leases ({} -> {})",
            one.max_rendezvous_clients,
            four.max_rendezvous_clients
        );
        assert!((one.delivered_ratio - 1.0).abs() < f64::EPSILON);
        assert!((four.delivered_ratio - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn shard_load_report_and_metrics_reflect_a_healthy_mesh() {
        let mut scenario = Scenario::build_sharded(
            Flavor::SrTps,
            DisseminationConfig::rendezvous_mesh(3),
            3,
            1,
            6,
            11,
            CostModel::free(),
        );
        scenario.warm_up();
        for _ in 0..3 {
            scenario.publish_one(0);
        }
        scenario.advance(SimDuration::from_secs(40)); // past one housekeeping tick
        let report = scenario.shard_load_report();
        assert_eq!(report.len(), 3);
        for (index, row) in report.iter().enumerate() {
            assert_eq!(row.shard, index);
            assert!(row.alive);
            assert_eq!(
                row.owned_shards,
                vec![index],
                "healthy mesh: everyone owns their own range"
            );
            assert!(row.adopted_shards.is_empty());
            assert_eq!(row.mesh_links, 2);
            assert!(row.to_string().contains("alive"));
        }
        let total_clients: usize = report.iter().map(|r| r.clients).sum();
        assert_eq!(total_clients, 7, "1 publisher + 6 subscribers lease somewhere");

        let registry = scenario.metrics_registry();
        let snapshot = registry.snapshot();
        assert!(snapshot.counter("simnet.datagrams_delivered") > 0);
        assert!(
            (0..3).any(|i| snapshot.counter(&format!("jxta.rdv{i}.wire.forwarded")) > 0),
            "some rendezvous relayed the published offers"
        );
        assert_eq!(snapshot.counter("tps.pub0.events_published"), 3);
        assert!(
            registry.histogram("harness.publish_invocation_ms").unwrap().len() == 3,
            "every publish_one lands in the invocation histogram"
        );
    }

    /// The ISSUE 5 acceptance scenario, end to end at the harness level:
    /// kill 1 of 4 rendezvous, keep it dead past the lease lifetime, and
    /// the controller must migrate its shard's leases to survivors so
    /// delivery resumes for every subscriber without revival — with the
    /// adopted range visible in `shard_load_report` and per-shard relay
    /// counts in the registry snapshot.
    #[test]
    fn controller_recovers_delivery_after_permanent_shard_death() {
        let subscribers = 8;
        let mut scenario = Scenario::build_sharded(
            Flavor::SrTps,
            DisseminationConfig::rendezvous_mesh(4),
            4,
            1,
            subscribers,
            2002,
            CostModel::free(),
        );
        scenario.warm_up();
        // Pick a victim shard that is not the publisher's and has clients.
        let publisher_shard = scenario.shard_of(scenario.publisher_id(0)).unwrap();
        let victim_index = scenario
            .rendezvous_ids()
            .iter()
            .position(|&id| {
                id != publisher_shard
                    && (0..subscribers).any(|i| scenario.shard_of(scenario.subscriber_id(i)) == Some(id))
            })
            .expect("some non-publisher shard has subscribers");
        let victim = scenario.rendezvous_ids()[victim_index];
        let adopter_index = (victim_index + 1) % 4;

        scenario.publish_one(0);
        scenario.advance(SimDuration::from_secs(5));
        let mut churn = simnet::ChurnDriver::new();
        let kill_at = scenario.now() + SimDuration::from_secs(1);
        churn.kill_at(kill_at, victim);
        churn.run_until(scenario.network_mut(), kill_at + SimDuration::from_secs(180));
        assert!(!scenario.network().is_alive(victim), "no revival");

        let before_late: Vec<usize> = (0..subscribers).map(|i| scenario.received_count(i)).collect();
        scenario.publish_one(0);
        scenario.advance(SimDuration::from_secs(10));
        let delivered_late = (0..subscribers)
            .filter(|&i| scenario.received_count(i) == before_late[i] + 1)
            .count();
        assert!(
            delivered_late * 100 >= subscribers * 99,
            "delivery must resume for >=99% of subscribers without revival \
             ({delivered_late}/{subscribers})"
        );

        let report = scenario.shard_load_report();
        assert!(!report[victim_index].alive);
        assert!(report[victim_index].owned_shards.is_empty());
        assert_eq!(
            report[adopter_index].adopted_shards,
            vec![victim_index],
            "shard_load_report shows the adopted range"
        );
        assert!(report[adopter_index].owned_shards.contains(&adopter_index));

        let snapshot = scenario.metrics_registry().snapshot();
        assert!(
            (0..4)
                .filter(|&i| i != victim_index)
                .any(|i| { snapshot.counter(&format!("jxta.rdv{i}.shard{i}.relayed")) > 0 }),
            "registry snapshots expose per-shard relay counts"
        );
        assert_eq!(
            snapshot.gauge(&format!("jxta.rdv{adopter_index}.shard{victim_index}.dead")),
            Some(1),
            "the adopter's load table flags the victim's shard dead"
        );
    }

    #[test]
    fn invocation_time_orders_flavors_like_the_paper() {
        let wire = stats(&invocation_time(Flavor::JxtaWire, 1, 10, 21)).mean;
        let sr_jxta = stats(&invocation_time(Flavor::SrJxta, 1, 10, 21)).mean;
        let sr_tps = stats(&invocation_time(Flavor::SrTps, 1, 10, 21)).mean;
        assert!(
            wire < sr_jxta,
            "raw JXTA-WIRE should be quicker than SR-JXTA ({wire} vs {sr_jxta})"
        );
        assert!(
            wire < sr_tps,
            "raw JXTA-WIRE should be quicker than SR-TPS ({wire} vs {sr_tps})"
        );
        // SR-TPS and SR-JXTA are within a few percent of each other.
        let relative_gap = (sr_tps - sr_jxta).abs() / sr_jxta;
        assert!(
            relative_gap < 0.15,
            "SR-TPS and SR-JXTA should be close (gap {relative_gap})"
        );
    }

    #[test]
    fn more_subscribers_slow_the_publisher_down() {
        let one = stats(&invocation_time(Flavor::SrTps, 1, 10, 33)).mean;
        let four = stats(&invocation_time(Flavor::SrTps, 4, 10, 33)).mean;
        assert!(
            four > one * 1.5,
            "four subscribers should cost noticeably more than one ({one} -> {four})"
        );
    }

    #[test]
    fn loc_report_shows_tps_saving_code() {
        let report = loc_report();
        assert!(report.tps_user_loc < report.jxta_user_loc);
        assert!(report.minimal_savings() > 0);
        assert!(report.full_api_savings() > report.minimal_savings());
        assert!(report.tps_library_loc > 1000);
    }

    #[test]
    fn stats_helper_computes_moments() {
        let s = stats(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-9);
        assert!((s.min - 1.0).abs() < 1e-9);
        assert!((s.max - 4.0).abs() < 1e-9);
        assert!(s.std_dev > 1.0 && s.std_dev < 1.2);
        assert_eq!(stats(&[]).mean, 0.0);
    }

    /// Runs a small traced workload and returns the scenario plus the ids.
    fn traced_run(flavor: Flavor, seed: u64) -> Scenario {
        let mut scenario = Scenario::build_with_costs(flavor, 1, 2, seed, CostModel::free());
        scenario.enable_tracing(4096);
        scenario.warm_up();
        for _ in 0..3 {
            scenario.publish_one(0);
        }
        scenario.advance(SimDuration::from_secs(10));
        scenario
    }

    #[test]
    fn traces_explain_every_delivered_event() {
        for flavor in [Flavor::JxtaWire, Flavor::SrTps] {
            let scenario = traced_run(flavor, 42);
            let ids = scenario.traced_ids();
            assert_eq!(ids.len(), 3, "{flavor}: one trace id per published event");
            for id in ids {
                for subscriber in 0..2 {
                    let verdict = scenario.why_missing(subscriber, id);
                    assert!(
                        verdict.is_delivered(),
                        "{flavor}: expected delivery, got: {verdict}"
                    );
                }
            }
            let summary = scenario.delivery_latency_summary();
            assert_eq!(
                summary.count, 6,
                "{flavor}: one latency sample per (event, subscriber) delivery"
            );
            assert!(summary.p50 >= 0.0 && summary.p99 >= summary.p50);
        }
    }

    #[test]
    fn traces_are_bit_identical_across_same_seed_runs() {
        for flavor in [Flavor::JxtaWire, Flavor::SrTps] {
            let a = traced_run(flavor, 77);
            let b = traced_run(flavor, 77);
            let spans_a: Vec<_> = a.tracer().unwrap().borrow().spans().copied().collect();
            let spans_b: Vec<_> = b.tracer().unwrap().borrow().spans().copied().collect();
            assert!(!spans_a.is_empty(), "{flavor}: traced runs record spans");
            assert_eq!(
                spans_a, spans_b,
                "{flavor}: same seed must reproduce the identical span trace"
            );
        }
    }

    #[test]
    fn untraced_runs_record_nothing_and_send_no_trace_bytes() {
        let mut scenario = Scenario::build_with_costs(Flavor::SrTps, 1, 1, 42, CostModel::free());
        scenario.warm_up();
        scenario.publish_one(0);
        scenario.advance(SimDuration::from_secs(5));
        assert!(scenario.tracer().is_none());
        assert!(scenario.traced_ids().is_empty());
        assert_eq!(scenario.received_count(0), 1);
        assert!(scenario.network().trace().is_empty(), "kernel trace stays off");
    }

    #[test]
    fn why_missing_blames_the_kernel_when_a_subscriber_dies_in_flight() {
        let mut scenario = Scenario::build_with_costs(Flavor::SrTps, 1, 2, 9, CostModel::free());
        scenario.enable_tracing(8192);
        scenario.warm_up();
        // Kill subscriber 1, then publish: its copy must die in the kernel
        // (NodeDown at send or delivery time) and forensics must say so.
        let victim = scenario.subscriber_id(1);
        scenario.network_mut().shutdown_node(victim);
        scenario.publish_one(0);
        scenario.advance(SimDuration::from_secs(10));
        let ids = scenario.traced_ids();
        assert_eq!(ids.len(), 1);
        let id = ids[0];
        assert!(scenario.why_missing(0, id).is_delivered());
        let verdict = scenario.why_missing(1, id);
        assert!(!verdict.is_delivered(), "the dead subscriber cannot receive");
        match &verdict {
            DeliveryVerdict::LostOnWire { .. } => {
                let reason = scenario.kernel_drop_reason(&verdict);
                assert_eq!(
                    reason,
                    Some(DropReason::NodeDown),
                    "the kernel join must name the transport-level cause"
                );
            }
            DeliveryVerdict::DroppedAt { .. } | DeliveryVerdict::NeverRouted { .. } => {
                // Acceptable alternative: the copy died at an instrumented
                // hop before reaching the wire (e.g. the lease was already
                // torn down). The verdict still names the exact hop.
            }
            other => panic!("undelivered copy must be explained, got: {other}"),
        }
    }

    #[test]
    fn operator_view_renders_metrics_latency_and_timelines() {
        let scenario = traced_run(Flavor::SrTps, 11);
        let view = scenario.operator_view(2);
        assert!(view.contains("== metrics =="));
        assert!(
            view.contains("simnet.datagrams_delivered"),
            "kernel counters are included"
        );
        assert!(view.contains("== delivery latency (virtual ms) =="));
        assert!(view.contains("== event timelines =="));
        assert!(view.contains("published"), "timelines show the publish hop");
        assert!(view.contains("delivered"), "timelines show the delivery hop");
        // The snapshot text comes through MetricsSnapshot::render_text, which
        // is the stable sorted rendering.
        let rendered = scenario.metrics_registry().snapshot().render_text();
        assert!(view.contains(rendered.lines().next().unwrap()));
    }

    #[test]
    fn trace_latency_comparison_reports_every_strategy() {
        let rows = trace_latency_comparison(Flavor::SrTps, 2, 2, 2002);
        assert_eq!(rows.len(), StrategyKind::ALL.len());
        for (kind, summary) in rows {
            assert!(
                summary.count >= 2,
                "{kind}: at least one delivery latency sample per event (got {})",
                summary.count
            );
            assert!(summary.p99 >= summary.p50);
        }
    }
}
