//! # ski-rental — the paper's evaluation application, three ways
//!
//! The ICDCS 2002 TPS paper compares the programming and performance of the
//! same ski-rental application written (a) over the TPS abstraction
//! ([`tps_app`], *SR-TPS*), (b) directly over JXTA with equal functionality
//! ([`jxta_app`], *SR-JXTA*), and (c) over the bare JXTA-WIRE service (also
//! [`jxta_app`], with the full-featured flag off). The [`harness`] module
//! builds the paper's testbed topologies and regenerates the series behind
//! Figures 18–20 and the Section 4.4 programming-effort comparison.
#![warn(rust_2018_idioms)]

pub mod harness;
pub mod jxta_app;
pub mod node;
pub mod tps_app;
pub mod types;
pub mod workload;

pub use harness::{
    batch_comparison, dissemination_comparison, invocation_time, invocation_time_with_dissemination,
    loc_report, mesh_fanout_report, publisher_throughput, stats, subscriber_throughput, LocReport,
    MeshReport, Scenario, SeriesStats, ShardLoadRow,
};
pub use jxta::{DisseminationConfig, RebalanceConfig, StrategyKind};
pub use jxta_app::{JxtaSkiApp, Role};
pub use node::{Flavor, SkiNode};
pub use tps_app::TpsSkiApp;
pub use types::{RentalOffer, SkiRental, SnowboardRental};
pub use workload::OfferGenerator;
