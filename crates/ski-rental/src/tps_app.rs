//! The ski-rental application written **over TPS** — the paper's SR-TPS,
//! on the v2 session handles.
//!
//! Note how little is left to write compared to [`crate::jxta_app`]: define
//! the type, mint a publisher and a subscriber handle, subscribe in pull
//! mode, publish. That difference *is* the paper's programming-effort
//! argument (Section 4), quantified by [`crate::harness::loc_report`].

use crate::types::SkiRental;
use simnet::{Datagram, NodeContext, SimTime};
use tps::{MailboxPolicy, Publisher, Subscriber, SubscriptionGuard, TpsConfig, TpsEngine};

use crate::jxta_app::Role;

/// Publisher-side bookkeeping of the TPS layer (event-id generation, sent
/// history, registry lookup and generic dispatch). It does the same work as
/// SR-JXTA's hand-rolled bookkeeping plus the genericity, which the paper
/// measures at roughly 1 % extra.
const TPS_GENERICITY_OVERHEAD: simnet::SimDuration = simnet::SimDuration::from_millis(21);
/// Receive-side cost added by the SR functionality (histories, dedup).
const SR_DELIVER_OVERHEAD: simnet::SimDuration = simnet::SimDuration::from_millis(24);
/// Additional receive-side cost per extra incoming publisher connection.
const CONNECTION_SCALE: f64 = 0.8;

/// The TPS-based ski-rental peer.
#[derive(Debug)]
pub struct TpsSkiApp {
    engine: TpsEngine,
    role: Role,
    offers_out: Option<Publisher<SkiRental>>,
    inbox: Subscriber<SkiRental>,
    subscription: Option<SubscriptionGuard>,
    received: Vec<(SimTime, SkiRental)>,
    overloaded_drops: u64,
    busy_until: SimTime,
}

impl TpsSkiApp {
    /// Creates the application peer. Handles are minted immediately; the
    /// commands they enqueue (publisher channel preparation, subscription)
    /// run when the engine starts. Subscriber-role peers mint their
    /// publisher handle lazily on first publish, so they do not eagerly open
    /// an output channel they may never use.
    pub fn new(config: TpsConfig, role: Role) -> Self {
        let engine = TpsEngine::new(config);
        let session = engine.session();
        let offers_out = (role == Role::Publisher).then(|| session.publisher::<SkiRental>());
        let inbox = session.subscriber::<SkiRental>();
        TpsSkiApp {
            engine,
            role,
            offers_out,
            inbox,
            subscription: None,
            received: Vec::new(),
            overloaded_drops: 0,
            busy_until: SimTime::ZERO,
        }
    }

    /// The underlying TPS engine.
    pub fn engine(&self) -> &TpsEngine {
        &self.engine
    }

    /// Installs a shared trace collector on the underlying engine (and its
    /// peer), enabling end-to-end delivery spans for every published offer.
    pub fn set_trace_collector(&mut self, tracer: jxta::SharedTraceCollector) {
        self.engine.set_trace_collector(tracer);
    }

    /// The offers received so far, with their virtual arrival times.
    pub fn received(&self) -> &[(SimTime, SkiRental)] {
        &self.received
    }

    /// The offers published so far (`objectsSent()`).
    pub fn sent(&self) -> Vec<SkiRental> {
        self.engine.objects_sent::<SkiRental>()
    }

    /// Publishes an offer through the owned publisher handle, draining the
    /// command at once so `ctx.charged()` captures the invocation cost.
    ///
    /// # Errors
    ///
    /// Returns a readable error when the TPS layer reports a `PSException`.
    pub fn publish_offer(&mut self, ctx: &mut NodeContext<'_>, offer: &SkiRental) -> Result<(), String> {
        ctx.charge(TPS_GENERICITY_OVERHEAD);
        self.publisher().publish(offer).map_err(|e| e.to_string())?;
        self.engine.pump(ctx);
        self.take_publish_error()
    }

    /// Publishes a whole batch of offers as **one** wire message (the v2
    /// `publish_batch` path): the publisher pays the per-message connection
    /// costs once per batch instead of once per offer.
    ///
    /// # Errors
    ///
    /// Returns a readable error when the TPS layer reports a `PSException`.
    pub fn publish_offer_batch(
        &mut self,
        ctx: &mut NodeContext<'_>,
        offers: &[SkiRental],
    ) -> Result<(), String> {
        ctx.charge(TPS_GENERICITY_OVERHEAD);
        self.publisher()
            .publish_batch(offers)
            .map_err(|e| e.to_string())?;
        self.engine.pump(ctx);
        self.take_publish_error()
    }

    fn publisher(&mut self) -> &Publisher<SkiRental> {
        let session = self.engine.session();
        self.offers_out
            .get_or_insert_with(|| session.publisher::<SkiRental>())
    }

    fn take_publish_error(&mut self) -> Result<(), String> {
        let errors = self.engine.session().take_errors();
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; "))
        }
    }

    /// Events lost because the subscriber was still busy servicing earlier
    /// ones (receive-side overload, as JXTA 1.0 exhibited under flooding).
    pub fn overloaded_drops(&self) -> u64 {
        self.overloaded_drops
    }

    /// Pulls newly delivered offers from the subscriber handle's mailbox,
    /// timestamps them with the current virtual time and applies the same
    /// receive-side capacity model as the direct-JXTA application (base
    /// service cost plus a penalty per additional publisher connection;
    /// excess events are lost).
    fn collect_new(&mut self, ctx: &NodeContext<'_>) {
        let offers = self.inbox.drain();
        if offers.is_empty() {
            return;
        }
        let base = self.engine.config().peer.costs.wire_listener_fixed.mul_f64(0.85);
        let connections = self.engine.distinct_publishers().max(1);
        let service_cost =
            base.mul_f64(1.0 + CONNECTION_SCALE * (connections - 1) as f64) + SR_DELIVER_OVERHEAD;
        if base > simnet::SimDuration::ZERO {
            // Events arriving while the peer is still servicing earlier ones
            // are lost, as under JXTA 1.0 flooding (the Figure 20 regime).
            if ctx.now() < self.busy_until {
                self.overloaded_drops += offers.len() as u64;
                return;
            }
            // Events unwrapped from one wire message (a batch) are already in
            // local memory: they are serviced back-to-back, not dropped.
            self.busy_until = ctx.now() + service_cost.mul_f64(offers.len() as f64);
        }
        for offer in offers {
            self.received.push((ctx.now(), offer));
        }
    }
}

impl simnet::SimNode for TpsSkiApp {
    fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
        if self.role == Role::Subscriber {
            // The paper's subscription phase, in pull mode: one line of user
            // code, detached into `self.subscription` so it lives as long as
            // the peer. The mailbox is sized far above the workload: loss is
            // modelled by the receive-side capacity model below, not by the
            // mailbox overflow policy.
            self.subscription = Some(
                self.inbox
                    .subscribe_pull_with(MailboxPolicy::bounded(1 << 16), tps::Criteria::any()),
            );
        }
        // Publishers need no explicit step: minting the handle already
        // enqueued the channel preparation, executed by this first pump.
        self.engine.on_start(ctx);
        self.collect_new(ctx);
    }

    fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, datagram: Datagram) {
        self.engine.on_datagram(ctx, &datagram);
        self.collect_new(ctx);
    }

    fn on_timer(&mut self, ctx: &mut NodeContext<'_>, _token: simnet::TimerToken, tag: u64) {
        self.engine.on_timer(ctx, tag);
        self.collect_new(ctx);
    }

    fn on_address_changed(
        &mut self,
        ctx: &mut NodeContext<'_>,
        old: simnet::SimAddress,
        new: simnet::SimAddress,
    ) {
        self.engine.on_address_changed(ctx, old, new);
        self.collect_new(ctx);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxta::peer::{CostModel, PeerConfig};

    #[test]
    fn construction() {
        let config =
            TpsConfig::new("skier").with_peer(PeerConfig::edge("skier").with_costs(CostModel::free()));
        let app = TpsSkiApp::new(config, Role::Subscriber);
        assert!(app.received().is_empty());
        assert!(app.sent().is_empty());
        assert_eq!(app.engine().subscription_count(), 0);
        assert!(
            app.engine().session().pending_commands() > 0,
            "handle creation enqueues channel preparation for the first pump"
        );
    }
}
