//! The ski-rental application written **over TPS** — the paper's SR-TPS.
//!
//! Note how little is left to write compared to [`crate::jxta_app`]: define
//! the type, initialise the engine, subscribe with a call-back, publish.
//! That difference *is* the paper's programming-effort argument (Section 4),
//! quantified by [`crate::harness::loc_report`].

use crate::types::SkiRental;
use simnet::{Datagram, NodeContext, SimTime};
use std::cell::RefCell;
use std::rc::Rc;
use tps::{CollectingCallback, IgnoreExceptions, TpsConfig, TpsEngine, TpsInterfaceExt};

use crate::jxta_app::Role;

/// Publisher-side bookkeeping of the TPS layer (event-id generation, sent
/// history, registry lookup and generic dispatch). It does the same work as
/// SR-JXTA's hand-rolled bookkeeping plus the genericity, which the paper
/// measures at roughly 1 % extra.
const TPS_GENERICITY_OVERHEAD: simnet::SimDuration = simnet::SimDuration::from_millis(21);
/// Receive-side cost added by the SR functionality (histories, dedup).
const SR_DELIVER_OVERHEAD: simnet::SimDuration = simnet::SimDuration::from_millis(24);
/// Additional receive-side cost per extra incoming publisher connection.
const CONNECTION_SCALE: f64 = 0.8;

/// The TPS-based ski-rental peer.
#[derive(Debug)]
pub struct TpsSkiApp {
    engine: TpsEngine,
    role: Role,
    sink: Rc<RefCell<Vec<SkiRental>>>,
    received: Vec<(SimTime, SkiRental)>,
    overloaded_drops: u64,
    busy_until: SimTime,
}

impl TpsSkiApp {
    /// Creates the application peer.
    pub fn new(config: TpsConfig, role: Role) -> Self {
        TpsSkiApp {
            engine: TpsEngine::new(config),
            role,
            sink: Rc::new(RefCell::new(Vec::new())),
            received: Vec::new(),
            overloaded_drops: 0,
            busy_until: SimTime::ZERO,
        }
    }

    /// The underlying TPS engine.
    pub fn engine(&self) -> &TpsEngine {
        &self.engine
    }

    /// The offers received so far, with their virtual arrival times.
    pub fn received(&self) -> &[(SimTime, SkiRental)] {
        &self.received
    }

    /// The offers published so far (`objectsSent()`).
    pub fn sent(&self) -> Vec<SkiRental> {
        self.engine.objects_sent::<SkiRental>()
    }

    /// Publishes an offer through the TPS interface.
    ///
    /// # Errors
    ///
    /// Returns a readable error when the TPS layer reports a `PSException`.
    pub fn publish_offer(&mut self, ctx: &mut NodeContext<'_>, offer: &SkiRental) -> Result<(), String> {
        ctx.charge(TPS_GENERICITY_OVERHEAD);
        self.engine
            .interface::<SkiRental>()
            .publish(ctx, offer.clone())
            .map_err(|e| e.to_string())
    }

    /// Events lost because the subscriber was still busy servicing earlier
    /// ones (receive-side overload, as JXTA 1.0 exhibited under flooding).
    pub fn overloaded_drops(&self) -> u64 {
        self.overloaded_drops
    }

    /// Collects newly delivered offers from the call-back sink, timestamps
    /// them with the current virtual time and applies the same receive-side
    /// capacity model as the direct-JXTA application (base service cost plus
    /// a penalty per additional publisher connection; excess events are lost).
    fn collect_new(&mut self, ctx: &NodeContext<'_>) {
        let base = self.engine.config().peer.costs.wire_listener_fixed.mul_f64(0.85);
        let connections = self.engine.distinct_publishers().max(1);
        let service_cost =
            base.mul_f64(1.0 + CONNECTION_SCALE * (connections - 1) as f64) + SR_DELIVER_OVERHEAD;
        let offers: Vec<SkiRental> = self.sink.borrow_mut().drain(..).collect();
        for offer in offers {
            if base > simnet::SimDuration::ZERO {
                if ctx.now() < self.busy_until {
                    self.overloaded_drops += 1;
                    continue;
                }
                self.busy_until = ctx.now() + service_cost;
            }
            self.received.push((ctx.now(), offer));
        }
    }
}

impl simnet::SimNode for TpsSkiApp {
    fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
        self.engine.on_start(ctx);
        if self.role == Role::Subscriber {
            // The paper's subscription phase: a call-back plus an exception
            // handler, three lines of user code.
            let callback = CollectingCallback::into_sink(Rc::clone(&self.sink));
            self.engine
                .interface::<SkiRental>()
                .subscribe(ctx, callback, IgnoreExceptions);
        } else {
            // Publishers eagerly initialise their interface so that the
            // advertisement and pipe resolution start before the first offer.
            self.engine.prepare_publisher::<SkiRental>(ctx);
        }
        self.collect_new(ctx);
    }

    fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, datagram: Datagram) {
        self.engine.on_datagram(ctx, &datagram);
        self.collect_new(ctx);
    }

    fn on_timer(&mut self, ctx: &mut NodeContext<'_>, _token: simnet::TimerToken, tag: u64) {
        self.engine.on_timer(ctx, tag);
        self.collect_new(ctx);
    }

    fn on_address_changed(
        &mut self,
        ctx: &mut NodeContext<'_>,
        old: simnet::SimAddress,
        new: simnet::SimAddress,
    ) {
        self.engine.on_address_changed(ctx, old, new);
        self.collect_new(ctx);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxta::peer::{CostModel, PeerConfig};

    #[test]
    fn construction() {
        let config =
            TpsConfig::new("skier").with_peer(PeerConfig::edge("skier").with_costs(CostModel::free()));
        let app = TpsSkiApp::new(config, Role::Subscriber);
        assert!(app.received().is_empty());
        assert!(app.sent().is_empty());
        assert_eq!(app.engine().subscription_count(), 0);
    }
}
