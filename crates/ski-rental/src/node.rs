//! A single simulation-node type covering the three implementation flavours
//! compared in the paper's evaluation, so that the measurement harness can
//! drive any of them uniformly.

use crate::jxta_app::{JxtaSkiApp, Role};
use crate::tps_app::TpsSkiApp;
use crate::types::SkiRental;
use jxta::peer::{CostModel, PeerConfig};
use simnet::{Datagram, NodeContext, SimAddress, SimTime, TimerToken};
use tps::TpsConfig;

/// The three implementations compared in Section 5 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flavor {
    /// The bare JXTA-WIRE service (lower-bound reference point).
    JxtaWire,
    /// The ski-rental application written directly over JXTA with the same
    /// functionality as TPS (SR-JXTA).
    SrJxta,
    /// The ski-rental application written over the TPS layer (SR-TPS).
    SrTps,
}

impl Flavor {
    /// All flavours, in the order the paper's figures list them.
    pub const ALL: [Flavor; 3] = [Flavor::JxtaWire, Flavor::SrJxta, Flavor::SrTps];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Flavor::JxtaWire => "JXTA-WIRE",
            Flavor::SrJxta => "SR-JXTA",
            Flavor::SrTps => "SR-TPS",
        }
    }
}

impl std::fmt::Display for Flavor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One ski-rental peer of a given flavour and role.
// Nodes live boxed inside the network kernel, so the size spread between the
// flavours costs nothing per dispatch.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum SkiNode {
    /// Raw JXTA-WIRE peer.
    Wire(JxtaSkiApp),
    /// SR-JXTA peer.
    SrJxta(JxtaSkiApp),
    /// SR-TPS peer.
    SrTps(TpsSkiApp),
}

impl SkiNode {
    /// Creates a peer of the given flavour and role.
    ///
    /// `costs` controls the virtual CPU model of the underlying JXTA peer
    /// (use [`CostModel::jxta_1_0`] for the paper's figures,
    /// [`CostModel::free`] for functional tests).
    pub fn new(flavor: Flavor, role: Role, name: &str, seeds: Vec<SimAddress>, costs: CostModel) -> Self {
        Self::with_dissemination(
            flavor,
            role,
            name,
            seeds,
            costs,
            jxta::DisseminationConfig::default(),
        )
    }

    /// Creates a peer running the given dissemination strategy (the paper
    /// baseline is [`jxta::DisseminationConfig::direct_fanout`]).
    pub fn with_dissemination(
        flavor: Flavor,
        role: Role,
        name: &str,
        seeds: Vec<SimAddress>,
        costs: CostModel,
        dissemination: jxta::DisseminationConfig,
    ) -> Self {
        let peer_config = PeerConfig::edge(name)
            .with_seeds(seeds)
            .with_costs(costs)
            .with_dissemination(dissemination);
        match flavor {
            Flavor::JxtaWire => SkiNode::Wire(JxtaSkiApp::new(peer_config, role, false)),
            Flavor::SrJxta => SkiNode::SrJxta(JxtaSkiApp::new(peer_config, role, true)),
            Flavor::SrTps => {
                let config = TpsConfig::new(name).with_peer(peer_config);
                SkiNode::SrTps(TpsSkiApp::new(config, role))
            }
        }
    }

    /// Boxed constructor, convenient for `NetworkBuilder::add_node`.
    pub fn boxed(
        flavor: Flavor,
        role: Role,
        name: &str,
        seeds: Vec<SimAddress>,
        costs: CostModel,
    ) -> Box<Self> {
        Box::new(Self::new(flavor, role, name, seeds, costs))
    }

    /// Boxed strategy-aware constructor.
    pub fn boxed_with_dissemination(
        flavor: Flavor,
        role: Role,
        name: &str,
        seeds: Vec<SimAddress>,
        costs: CostModel,
        dissemination: jxta::DisseminationConfig,
    ) -> Box<Self> {
        Box::new(Self::with_dissemination(
            flavor,
            role,
            name,
            seeds,
            costs,
            dissemination,
        ))
    }

    /// Publishes one offer.
    ///
    /// # Errors
    ///
    /// Returns a readable error if the underlying layer rejects the publish.
    pub fn publish_offer(&mut self, ctx: &mut NodeContext<'_>, offer: &SkiRental) -> Result<(), String> {
        match self {
            SkiNode::Wire(app) | SkiNode::SrJxta(app) => app.publish_offer(ctx, offer),
            SkiNode::SrTps(app) => app.publish_offer(ctx, offer),
        }
    }

    /// Publishes several offers at once. The SR-TPS flavour marshals them
    /// into **one** wire message (`Publisher::publish_batch`); the JXTA
    /// flavours have no batching support and fall back to one message per
    /// offer, which is exactly the per-event cost the batch path removes.
    ///
    /// # Errors
    ///
    /// Returns a readable error if the underlying layer rejects the publish.
    pub fn publish_offer_batch(
        &mut self,
        ctx: &mut NodeContext<'_>,
        offers: &[SkiRental],
    ) -> Result<(), String> {
        match self {
            SkiNode::Wire(app) | SkiNode::SrJxta(app) => {
                for offer in offers {
                    app.publish_offer(ctx, offer)?;
                }
                Ok(())
            }
            SkiNode::SrTps(app) => app.publish_offer_batch(ctx, offers),
        }
    }

    /// The underlying JXTA peer, whatever the flavour.
    pub fn peer_ref(&self) -> &jxta::JxtaPeer {
        match self {
            SkiNode::Wire(app) | SkiNode::SrJxta(app) => app.peer(),
            SkiNode::SrTps(app) => app.engine().peer(),
        }
    }

    /// Installs a shared trace collector, whatever the flavour: the TPS
    /// flavour traces through the engine (which owns the terminal delivery
    /// verdicts), the JXTA flavours directly through the peer.
    pub fn set_trace_collector(&mut self, tracer: jxta::SharedTraceCollector) {
        match self {
            SkiNode::Wire(app) | SkiNode::SrJxta(app) => app.set_trace_collector(tracer),
            SkiNode::SrTps(app) => app.set_trace_collector(tracer),
        }
    }

    /// The TPS engine, for the SR-TPS flavour only (the JXTA flavours have
    /// no engine-level metrics surface).
    pub fn engine_ref(&self) -> Option<&tps::TpsEngine> {
        match self {
            SkiNode::SrTps(app) => Some(app.engine()),
            SkiNode::Wire(_) | SkiNode::SrJxta(_) => None,
        }
    }

    /// Virtual arrival times of every offer received so far.
    pub fn received_times(&self) -> Vec<SimTime> {
        match self {
            SkiNode::Wire(app) | SkiNode::SrJxta(app) => app.received().iter().map(|(t, _)| *t).collect(),
            SkiNode::SrTps(app) => app.received().iter().map(|(t, _)| *t).collect(),
        }
    }

    /// The offers received so far.
    pub fn received_offers(&self) -> Vec<SkiRental> {
        match self {
            SkiNode::Wire(app) | SkiNode::SrJxta(app) => {
                app.received().iter().map(|(_, o)| o.clone()).collect()
            }
            SkiNode::SrTps(app) => app.received().iter().map(|(_, o)| o.clone()).collect(),
        }
    }

    /// How many offers were received.
    pub fn received_count(&self) -> usize {
        match self {
            SkiNode::Wire(app) | SkiNode::SrJxta(app) => app.received().len(),
            SkiNode::SrTps(app) => app.received().len(),
        }
    }
}

impl simnet::SimNode for SkiNode {
    fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
        match self {
            SkiNode::Wire(app) | SkiNode::SrJxta(app) => simnet::SimNode::on_start(app, ctx),
            SkiNode::SrTps(app) => simnet::SimNode::on_start(app, ctx),
        }
    }

    fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, datagram: Datagram) {
        match self {
            SkiNode::Wire(app) | SkiNode::SrJxta(app) => app.on_datagram(ctx, datagram),
            SkiNode::SrTps(app) => app.on_datagram(ctx, datagram),
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeContext<'_>, token: TimerToken, tag: u64) {
        match self {
            SkiNode::Wire(app) | SkiNode::SrJxta(app) => app.on_timer(ctx, token, tag),
            SkiNode::SrTps(app) => app.on_timer(ctx, token, tag),
        }
    }

    fn on_address_changed(&mut self, ctx: &mut NodeContext<'_>, old: SimAddress, new: SimAddress) {
        match self {
            SkiNode::Wire(app) | SkiNode::SrJxta(app) => app.on_address_changed(ctx, old, new),
            SkiNode::SrTps(app) => app.on_address_changed(ctx, old, new),
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(Flavor::JxtaWire.label(), "JXTA-WIRE");
        assert_eq!(Flavor::SrJxta.label(), "SR-JXTA");
        assert_eq!(Flavor::SrTps.to_string(), "SR-TPS");
        assert_eq!(Flavor::ALL.len(), 3);
    }

    #[test]
    fn nodes_construct_for_every_flavor_and_role() {
        for flavor in Flavor::ALL {
            for role in [Role::Publisher, Role::Subscriber] {
                let node = SkiNode::new(flavor, role, "peer", vec![], CostModel::free());
                assert_eq!(node.received_count(), 0);
                assert!(node.received_times().is_empty());
            }
        }
    }
}
