//! A single simulation-node type covering the three implementation flavours
//! compared in the paper's evaluation, so that the measurement harness can
//! drive any of them uniformly.

use crate::jxta_app::{JxtaSkiApp, Role};
use crate::tps_app::TpsSkiApp;
use crate::types::SkiRental;
use jxta::peer::{CostModel, PeerConfig};
use jxta::{FlyweightEdge, PeerId, PipeId};
use simnet::{Datagram, NodeContext, SimAddress, SimTime, TimerToken};
use tps::TpsConfig;

/// The three implementations compared in Section 5 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flavor {
    /// The bare JXTA-WIRE service (lower-bound reference point).
    JxtaWire,
    /// The ski-rental application written directly over JXTA with the same
    /// functionality as TPS (SR-JXTA).
    SrJxta,
    /// The ski-rental application written over the TPS layer (SR-TPS).
    SrTps,
}

impl Flavor {
    /// All flavours, in the order the paper's figures list them.
    pub const ALL: [Flavor; 3] = [Flavor::JxtaWire, Flavor::SrJxta, Flavor::SrTps];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Flavor::JxtaWire => "JXTA-WIRE",
            Flavor::SrJxta => "SR-JXTA",
            Flavor::SrTps => "SR-TPS",
        }
    }
}

impl std::fmt::Display for Flavor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One ski-rental peer of a given flavour and role.
// Nodes live boxed inside the network kernel, so the size spread between the
// flavours costs nothing per dispatch.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum SkiNode {
    /// Raw JXTA-WIRE peer.
    Wire(JxtaSkiApp),
    /// SR-JXTA peer.
    SrJxta(JxtaSkiApp),
    /// SR-TPS peer.
    SrTps(TpsSkiApp),
    /// A flyweight subscriber: lease + subscription + mailbox, no full JXTA
    /// stack. The mega-scale population representation (see
    /// [`jxta::FlyweightEdge`]); subscribe-only.
    Flyweight(FlyweightEdge),
}

impl SkiNode {
    /// Creates a peer of the given flavour and role.
    ///
    /// `costs` controls the virtual CPU model of the underlying JXTA peer
    /// (use [`CostModel::jxta_1_0`] for the paper's figures,
    /// [`CostModel::free`] for functional tests).
    pub fn new(flavor: Flavor, role: Role, name: &str, seeds: Vec<SimAddress>, costs: CostModel) -> Self {
        Self::with_dissemination(
            flavor,
            role,
            name,
            seeds,
            costs,
            jxta::DisseminationConfig::default(),
        )
    }

    /// Creates a peer running the given dissemination strategy (the paper
    /// baseline is [`jxta::DisseminationConfig::direct_fanout`]).
    pub fn with_dissemination(
        flavor: Flavor,
        role: Role,
        name: &str,
        seeds: Vec<SimAddress>,
        costs: CostModel,
        dissemination: jxta::DisseminationConfig,
    ) -> Self {
        let peer_config = PeerConfig::edge(name)
            .with_seeds(seeds)
            .with_costs(costs)
            .with_dissemination(dissemination);
        match flavor {
            Flavor::JxtaWire => SkiNode::Wire(JxtaSkiApp::new(peer_config, role, false)),
            Flavor::SrJxta => SkiNode::SrJxta(JxtaSkiApp::new(peer_config, role, true)),
            Flavor::SrTps => {
                let config = TpsConfig::new(name).with_peer(peer_config);
                SkiNode::SrTps(TpsSkiApp::new(config, role))
            }
        }
    }

    /// Boxed constructor, convenient for `NetworkBuilder::add_node`.
    pub fn boxed(
        flavor: Flavor,
        role: Role,
        name: &str,
        seeds: Vec<SimAddress>,
        costs: CostModel,
    ) -> Box<Self> {
        Box::new(Self::new(flavor, role, name, seeds, costs))
    }

    /// Boxed flyweight-subscriber constructor: a [`jxta::FlyweightEdge`]
    /// leasing with the `shards`-way rendezvous mesh behind `seeds` and
    /// subscribed to the `SkiRental` wire pipe. Costs nothing per idle node
    /// and cannot publish.
    pub fn boxed_flyweight(name: &str, seeds: Vec<SimAddress>, shards: usize) -> Box<Self> {
        Box::new(SkiNode::Flyweight(FlyweightEdge::new(
            name,
            seeds,
            shards,
            PipeId::derive(<SkiRental as tps::TpsEvent>::TYPE_NAME),
        )))
    }

    /// Boxed strategy-aware constructor.
    pub fn boxed_with_dissemination(
        flavor: Flavor,
        role: Role,
        name: &str,
        seeds: Vec<SimAddress>,
        costs: CostModel,
        dissemination: jxta::DisseminationConfig,
    ) -> Box<Self> {
        Box::new(Self::with_dissemination(
            flavor,
            role,
            name,
            seeds,
            costs,
            dissemination,
        ))
    }

    /// Publishes one offer.
    ///
    /// # Errors
    ///
    /// Returns a readable error if the underlying layer rejects the publish.
    pub fn publish_offer(&mut self, ctx: &mut NodeContext<'_>, offer: &SkiRental) -> Result<(), String> {
        match self {
            SkiNode::Wire(app) | SkiNode::SrJxta(app) => app.publish_offer(ctx, offer),
            SkiNode::SrTps(app) => app.publish_offer(ctx, offer),
            SkiNode::Flyweight(_) => Err("flyweight peers are subscribe-only".to_owned()),
        }
    }

    /// Publishes several offers at once. The SR-TPS flavour marshals them
    /// into **one** wire message (`Publisher::publish_batch`); the JXTA
    /// flavours have no batching support and fall back to one message per
    /// offer, which is exactly the per-event cost the batch path removes.
    ///
    /// # Errors
    ///
    /// Returns a readable error if the underlying layer rejects the publish.
    pub fn publish_offer_batch(
        &mut self,
        ctx: &mut NodeContext<'_>,
        offers: &[SkiRental],
    ) -> Result<(), String> {
        match self {
            SkiNode::Wire(app) | SkiNode::SrJxta(app) => {
                for offer in offers {
                    app.publish_offer(ctx, offer)?;
                }
                Ok(())
            }
            SkiNode::SrTps(app) => app.publish_offer_batch(ctx, offers),
            SkiNode::Flyweight(_) => Err("flyweight peers are subscribe-only".to_owned()),
        }
    }

    /// The underlying JXTA peer, whatever the flavour.
    ///
    /// # Panics
    ///
    /// Panics for the flyweight variant, which carries no JXTA stack — use
    /// [`SkiNode::peer_opt`] when flyweights may be in the population.
    pub fn peer_ref(&self) -> &jxta::JxtaPeer {
        self.peer_opt()
            .expect("flyweight peers carry no JXTA stack; use peer_opt")
    }

    /// The underlying JXTA peer, or `None` for the flyweight variant.
    pub fn peer_opt(&self) -> Option<&jxta::JxtaPeer> {
        match self {
            SkiNode::Wire(app) | SkiNode::SrJxta(app) => Some(app.peer()),
            SkiNode::SrTps(app) => Some(app.engine().peer()),
            SkiNode::Flyweight(_) => None,
        }
    }

    /// The rendezvous peer this node currently leases with, whatever the
    /// flavour (flyweights included), or `None` while unconnected.
    pub fn leased_rendezvous(&self) -> Option<PeerId> {
        match self {
            SkiNode::Flyweight(fly) => fly.lease().map(|lease| lease.rdv),
            _ => self.peer_ref().rendezvous().connection().map(|c| c.peer),
        }
    }

    /// The flyweight edge, for the flyweight variant only.
    pub fn flyweight_ref(&self) -> Option<&FlyweightEdge> {
        match self {
            SkiNode::Flyweight(fly) => Some(fly),
            _ => None,
        }
    }

    /// Installs a shared trace collector, whatever the flavour: the TPS
    /// flavour traces through the engine (which owns the terminal delivery
    /// verdicts), the JXTA flavours directly through the peer.
    pub fn set_trace_collector(&mut self, tracer: jxta::SharedTraceCollector) {
        match self {
            SkiNode::Wire(app) | SkiNode::SrJxta(app) => app.set_trace_collector(tracer),
            SkiNode::SrTps(app) => app.set_trace_collector(tracer),
            // Flyweights are deliberately outside the tracing plane: per-copy
            // spans at 100k subscribers would dwarf the population itself.
            SkiNode::Flyweight(_) => {}
        }
    }

    /// The TPS engine, for the SR-TPS flavour only (the JXTA flavours have
    /// no engine-level metrics surface).
    pub fn engine_ref(&self) -> Option<&tps::TpsEngine> {
        match self {
            SkiNode::SrTps(app) => Some(app.engine()),
            SkiNode::Wire(_) | SkiNode::SrJxta(_) | SkiNode::Flyweight(_) => None,
        }
    }

    /// Virtual arrival times of every offer received so far.
    pub fn received_times(&self) -> Vec<SimTime> {
        match self {
            SkiNode::Wire(app) | SkiNode::SrJxta(app) => app.received().iter().map(|(t, _)| *t).collect(),
            SkiNode::SrTps(app) => app.received().iter().map(|(t, _)| *t).collect(),
            SkiNode::Flyweight(fly) => fly.mailbox().iter().map(|&(t, _)| t).collect(),
        }
    }

    /// The offers received so far. A flyweight records arrivals without
    /// unmarshalling them (its mailbox holds message ids, not payloads), so
    /// this is empty for the flyweight variant — use
    /// [`SkiNode::received_count`] / [`SkiNode::received_times`] there.
    pub fn received_offers(&self) -> Vec<SkiRental> {
        match self {
            SkiNode::Wire(app) | SkiNode::SrJxta(app) => {
                app.received().iter().map(|(_, o)| o.clone()).collect()
            }
            SkiNode::SrTps(app) => app.received().iter().map(|(_, o)| o.clone()).collect(),
            SkiNode::Flyweight(_) => Vec::new(),
        }
    }

    /// How many offers were received.
    pub fn received_count(&self) -> usize {
        match self {
            SkiNode::Wire(app) | SkiNode::SrJxta(app) => app.received().len(),
            SkiNode::SrTps(app) => app.received().len(),
            SkiNode::Flyweight(fly) => fly.received_count(),
        }
    }
}

impl simnet::SimNode for SkiNode {
    fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
        match self {
            SkiNode::Wire(app) | SkiNode::SrJxta(app) => simnet::SimNode::on_start(app, ctx),
            SkiNode::SrTps(app) => simnet::SimNode::on_start(app, ctx),
            SkiNode::Flyweight(fly) => simnet::SimNode::on_start(fly, ctx),
        }
    }

    fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, datagram: Datagram) {
        match self {
            SkiNode::Wire(app) | SkiNode::SrJxta(app) => app.on_datagram(ctx, datagram),
            SkiNode::SrTps(app) => app.on_datagram(ctx, datagram),
            SkiNode::Flyweight(fly) => simnet::SimNode::on_datagram(fly, ctx, datagram),
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeContext<'_>, token: TimerToken, tag: u64) {
        match self {
            SkiNode::Wire(app) | SkiNode::SrJxta(app) => app.on_timer(ctx, token, tag),
            SkiNode::SrTps(app) => app.on_timer(ctx, token, tag),
            SkiNode::Flyweight(fly) => simnet::SimNode::on_timer(fly, ctx, token, tag),
        }
    }

    fn on_address_changed(&mut self, ctx: &mut NodeContext<'_>, old: SimAddress, new: SimAddress) {
        match self {
            SkiNode::Wire(app) | SkiNode::SrJxta(app) => app.on_address_changed(ctx, old, new),
            SkiNode::SrTps(app) => app.on_address_changed(ctx, old, new),
            SkiNode::Flyweight(fly) => simnet::SimNode::on_address_changed(fly, ctx, old, new),
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(Flavor::JxtaWire.label(), "JXTA-WIRE");
        assert_eq!(Flavor::SrJxta.label(), "SR-JXTA");
        assert_eq!(Flavor::SrTps.to_string(), "SR-TPS");
        assert_eq!(Flavor::ALL.len(), 3);
    }

    #[test]
    fn nodes_construct_for_every_flavor_and_role() {
        for flavor in Flavor::ALL {
            for role in [Role::Publisher, Role::Subscriber] {
                let node = SkiNode::new(flavor, role, "peer", vec![], CostModel::free());
                assert_eq!(node.received_count(), 0);
                assert!(node.received_times().is_empty());
            }
        }
    }
}
