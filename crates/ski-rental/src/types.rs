//! The application event types of the evaluation.
//!
//! `SkiRental` is the paper's type (Section 4.3.1): shop name, price, brand
//! and rental duration. For the subtype-delivery experiments (Figure 7) the
//! reproduction adds a small hierarchy around it: a generic `RentalOffer`
//! supertype and a `SnowboardRental` sibling.

use serde::{Deserialize, Serialize};
use tps::TpsEvent;

/// The generic rental offer supertype (`A` in the paper's Figure 7).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct RentalOffer {
    /// The shop making the offer.
    pub shop: String,
    /// The price in CHF per day.
    pub price: f32,
}

impl TpsEvent for RentalOffer {
    const TYPE_NAME: &'static str = "RentalOffer";
}

/// The paper's ski-rental offer type.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SkiRental {
    /// The shop making the offer.
    pub shop: String,
    /// The price in CHF per day.
    pub price: f32,
    /// The ski brand on offer.
    pub brand: String,
    /// The rental duration the offer is valid for, in days.
    pub number_of_days: f32,
}

impl SkiRental {
    /// Creates an offer (same argument order as the paper's constructor).
    pub fn new(shop: impl Into<String>, brand: impl Into<String>, price: f32, number_of_days: f32) -> Self {
        SkiRental {
            shop: shop.into(),
            price,
            brand: brand.into(),
            number_of_days,
        }
    }
}

impl TpsEvent for SkiRental {
    const TYPE_NAME: &'static str = "SkiRental";
}

impl std::fmt::Display for SkiRental {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} offers {} skis at {:.2} CHF/day for {} days",
            self.shop, self.brand, self.price, self.number_of_days
        )
    }
}

/// A sibling subtype used by the hierarchy examples and tests.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SnowboardRental {
    /// The shop making the offer.
    pub shop: String,
    /// The price in CHF per day.
    pub price: f32,
    /// The board length in centimetres.
    pub board_length_cm: u16,
}

impl TpsEvent for SnowboardRental {
    const TYPE_NAME: &'static str = "SnowboardRental";
    const SUPERTYPES: &'static [&'static str] = &["RentalOffer"];
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps::TypeRegistry;

    #[test]
    fn hierarchy_is_declared() {
        let mut registry = TypeRegistry::new();
        registry.register::<RentalOffer>();
        registry.register::<SkiRental>();
        registry.register::<SnowboardRental>();
        assert!(registry.is_subtype_of("SnowboardRental", "RentalOffer"));
        assert!(!registry.is_subtype_of("RentalOffer", "SnowboardRental"));
        // The paper's SkiRental type is flat (static flavour of TPS).
        assert!(!registry.is_subtype_of("SkiRental", "SnowboardRental"));
    }

    #[test]
    fn ski_rental_projects_onto_rental_offer() {
        let offer = SkiRental::new("XTremShop", "Salomon", 14.0, 100.0);
        let bytes = tps::codec::to_vec(&offer).unwrap();
        let supertype: RentalOffer = tps::codec::from_slice(&bytes).unwrap();
        assert_eq!(supertype.shop, "XTremShop");
        assert_eq!(supertype.price, 14.0);
    }

    #[test]
    fn display_is_readable() {
        let offer = SkiRental::new("XTremShop", "Salomon", 14.0, 100.0);
        let text = offer.to_string();
        assert!(text.contains("XTremShop"));
        assert!(text.contains("Salomon"));
    }
}
