//! Deterministic workload generation: streams of ski-rental offers.

use crate::types::SkiRental;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The ski brands the generator draws from.
pub const BRANDS: [&str; 6] = ["Salomon", "Rossignol", "Atomic", "Head", "Fischer", "Völkl"];
/// The shops the generator draws from.
pub const SHOPS: [&str; 5] = [
    "XTremShop",
    "AlpinCenter",
    "GlacierSports",
    "PowderPro",
    "EdgeWorks",
];

/// A deterministic generator of ski-rental offers.
#[derive(Debug)]
pub struct OfferGenerator {
    rng: StdRng,
    counter: u64,
}

impl OfferGenerator {
    /// Creates a generator; equal seeds produce equal offer streams.
    pub fn new(seed: u64) -> Self {
        OfferGenerator {
            rng: StdRng::seed_from_u64(seed),
            counter: 0,
        }
    }

    /// The next offer in the stream.
    pub fn next_offer(&mut self) -> SkiRental {
        self.counter += 1;
        let shop = SHOPS[self.rng.gen_range(0..SHOPS.len())];
        let brand = BRANDS[self.rng.gen_range(0..BRANDS.len())];
        let price = (self.rng.gen_range(80..400) as f32) / 10.0;
        let days = self.rng.gen_range(1..15) as f32;
        SkiRental::new(format!("{shop}-{}", self.counter), brand, price, days)
    }

    /// Generates a batch of offers.
    pub fn batch(&mut self, count: usize) -> Vec<SkiRental> {
        (0..count).map(|_| self.next_offer()).collect()
    }

    /// How many offers have been generated.
    pub fn generated(&self) -> u64 {
        self.counter
    }
}

impl Iterator for OfferGenerator {
    type Item = SkiRental;
    fn next(&mut self) -> Option<SkiRental> {
        Some(self.next_offer())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a: Vec<_> = OfferGenerator::new(1).batch(10);
        let b: Vec<_> = OfferGenerator::new(1).batch(10);
        let c: Vec<_> = OfferGenerator::new(2).batch(10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn offers_are_plausible() {
        let mut generator = OfferGenerator::new(3);
        for offer in generator.by_ref().take(100) {
            assert!(offer.price >= 8.0 && offer.price <= 40.0);
            assert!(offer.number_of_days >= 1.0 && offer.number_of_days < 15.0);
            assert!(!offer.shop.is_empty());
        }
        assert_eq!(generator.generated(), 100);
    }
}
