//! The ski-rental application written **directly against JXTA** — the
//! paper's SR-JXTA — plus the bare JXTA-WIRE reference point.
//!
//! This is the hand-rolled counterpart of the TPS layer: it re-creates the
//! paper's `AdvertisementsCreator`, `AdvertisementsFinder` and
//! `WireServiceFinder` on top of [`jxta::JxtaPeer`], and (in its
//! full-featured SR-JXTA configuration) re-implements the three guarantees
//! the TPS layer gives for free:
//!
//! 1. minimisation of the number of advertisements for the same type,
//! 2. management of multiple advertisements at the same time,
//! 3. handling of duplicate messages.
//!
//! With `full_featured = false` it degrades to the raw JXTA-WIRE lower-bound
//! used as a reference in the paper's Section 5: no duplicate suppression, no
//! multi-advertisement management, no sent/received history.

use crate::types::SkiRental;
use jxta::peer::{is_jxta_timer, PeerConfig};
use jxta::{
    AdvKind, AnyAdvertisement, JxtaEvent, JxtaPeer, Message, MessageElement, PeerGroup, PipeAdvertisement,
    SearchFilter, Uuid,
};
use simnet::{Datagram, NodeContext, SimDuration, SimTime};
use std::collections::HashSet;

use jxta::PeerId;

/// Timer tag of the application-level advertisement finder thread.
pub const TIMER_SR_FINDER: u64 = 0x5352_0001;

/// Whether this peer publishes offers or subscribes to them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// A shop publishing rental offers.
    Publisher,
    /// A skier looking for offers.
    Subscriber,
}

/// Extra per-event CPU the full-featured SR layers spend compared to raw
/// JXTA-WIRE (duplicate bookkeeping, advertisement management, histories).
const SR_PUBLISH_OVERHEAD: SimDuration = SimDuration::from_millis(20);
const SR_DELIVER_OVERHEAD: SimDuration = SimDuration::from_millis(24);
/// Marshalling cost charged by every flavour (object serialisation).
const MARSHAL_COST: SimDuration = SimDuration::from_millis(2);
/// The paper's wire message size.
const TARGET_MESSAGE_SIZE: usize = 1910;
/// Additional receive-side cost per extra incoming publisher connection,
/// relative to the base cost (JXTA 1.0 degraded sharply as the subscriber had
/// to service more connections — the cause of Figure 20's ~3x drop).
const CONNECTION_SCALE: f64 = 0.8;

/// The direct-JXTA ski-rental peer (SR-JXTA, or raw JXTA-WIRE when
/// `full_featured` is off).
#[derive(Debug)]
pub struct JxtaSkiApp {
    peer: JxtaPeer,
    role: Role,
    full_featured: bool,
    group: PeerGroup,
    known_pipes: Vec<PipeAdvertisement>,
    seen_events: HashSet<Uuid>,
    received: Vec<(SimTime, SkiRental)>,
    sent: Vec<SkiRental>,
    duplicates: u64,
    overloaded_drops: u64,
    publishers_seen: HashSet<PeerId>,
    busy_until: SimTime,
    finder_interval: SimDuration,
}

impl JxtaSkiApp {
    /// Creates the application peer.
    ///
    /// `full_featured = true` gives SR-JXTA; `false` gives the raw JXTA-WIRE
    /// reference.
    pub fn new(peer_config: PeerConfig, role: Role, full_featured: bool) -> Self {
        let peer = JxtaPeer::new(peer_config);
        let group = PeerGroup::for_event_type("SkiRental", peer.peer_id());
        let pipe = group
            .wire_pipe()
            .expect("event-type groups always embed a pipe")
            .clone();
        JxtaSkiApp {
            peer,
            role,
            full_featured,
            group,
            known_pipes: vec![pipe],
            seen_events: HashSet::new(),
            received: Vec::new(),
            sent: Vec::new(),
            duplicates: 0,
            overloaded_drops: 0,
            publishers_seen: HashSet::new(),
            busy_until: SimTime::ZERO,
            finder_interval: SimDuration::from_secs(10),
        }
    }

    /// The underlying JXTA peer.
    pub fn peer(&self) -> &JxtaPeer {
        &self.peer
    }

    /// Installs a shared trace collector on the underlying peer, so every
    /// copy of every offer this app publishes or receives records causal
    /// delivery spans. The bare-JXTA flavours have no TPS dedup above the
    /// wire, so the peer records the terminal spans itself.
    pub fn set_trace_collector(&mut self, tracer: jxta::SharedTraceCollector) {
        self.peer.set_trace_collector(tracer, false);
    }

    /// The offers received so far, with their virtual arrival times.
    pub fn received(&self) -> &[(SimTime, SkiRental)] {
        &self.received
    }

    /// The offers published so far (empty for the raw wire flavour, which
    /// keeps no history).
    pub fn sent(&self) -> &[SkiRental] {
        &self.sent
    }

    /// Duplicate events suppressed (always 0 for the raw wire flavour).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Events lost because the subscriber was still busy servicing earlier
    /// ones (receive-side overload, as JXTA 1.0 exhibited under flooding).
    pub fn overloaded_drops(&self) -> u64 {
        self.overloaded_drops
    }

    /// The number of wire pipes currently managed for the SkiRental type.
    pub fn known_pipe_count(&self) -> usize {
        self.known_pipes.len()
    }

    /// Publishes an offer; the publisher-side half of the paper's
    /// `WireServiceFinder.publish(msg.dup())`.
    ///
    /// # Errors
    ///
    /// Returns a readable error if the offer cannot be serialised or no
    /// output pipe exists.
    pub fn publish_offer(&mut self, ctx: &mut NodeContext<'_>, offer: &SkiRental) -> Result<(), String> {
        let payload = tps::codec::to_vec(offer).map_err(|e| e.to_string())?;
        ctx.charge(MARSHAL_COST);
        let mut message = Message::new();
        if self.full_featured {
            // Duplicate-handling support and sent-history bookkeeping.
            ctx.charge(SR_PUBLISH_OVERHEAD);
            let event_id = Uuid::generate(ctx.rng());
            message.add(MessageElement::text("sr", "EventId", event_id.to_hex()));
            self.sent.push(offer.clone());
        }
        message.add(MessageElement::binary("sr", "Payload", payload));
        let current = message.wire_size();
        if current < TARGET_MESSAGE_SIZE {
            message.add(MessageElement::binary(
                "sr",
                "Padding",
                vec![0u8; TARGET_MESSAGE_SIZE - current],
            ));
        }
        let pipes: Vec<_> = if self.full_featured {
            self.known_pipes.iter().map(|p| p.pipe_id).collect()
        } else {
            vec![self.known_pipes[0].pipe_id]
        };
        for pipe_id in pipes {
            self.peer
                .wire_send(ctx, pipe_id, &message)
                .map_err(|e| e.to_string())?;
        }
        Ok(())
    }

    fn handle_wire_message(&mut self, ctx: &mut NodeContext<'_>, src_peer: PeerId, message: &Message) {
        // Receive-side capacity model: servicing one event costs a base
        // amount (scaled from the peer's cost model) plus a penalty per
        // additional incoming publisher connection; events arriving while the
        // subscriber is still busy are lost, as on the paper's testbed.
        self.publishers_seen.insert(src_peer);
        let base = self.peer.config().costs.wire_listener_fixed.mul_f64(0.85);
        if base > SimDuration::ZERO {
            let connections = self.publishers_seen.len().max(1);
            let mut service_cost = base.mul_f64(1.0 + CONNECTION_SCALE * (connections - 1) as f64);
            if self.full_featured {
                service_cost += SR_DELIVER_OVERHEAD;
            }
            if ctx.now() < self.busy_until {
                self.overloaded_drops += 1;
                return;
            }
            self.busy_until = ctx.now() + service_cost;
        }
        if self.full_featured {
            ctx.charge(SR_DELIVER_OVERHEAD);
            if let Some(id_hex) = message.element_text("sr", "EventId") {
                if let Ok(id) = Uuid::from_hex(&id_hex) {
                    if !self.seen_events.insert(id) {
                        self.duplicates += 1;
                        return;
                    }
                }
            }
        }
        let Some(payload) = message.element("sr", "Payload") else {
            return;
        };
        let Ok(offer) = tps::codec::from_slice::<SkiRental>(&payload.body) else {
            return;
        };
        self.received.push((ctx.now(), offer));
    }

    fn handle_discovered(&mut self, ctx: &mut NodeContext<'_>, adv: &AnyAdvertisement) {
        if !self.full_featured {
            return; // the raw wire flavour manages a single advertisement only
        }
        let Some(group_adv) = adv.as_group() else { return };
        if group_adv.name != self.group.name() {
            return;
        }
        let Ok(pipe) = PeerGroup::from_advertisement(group_adv.clone())
            .wire_pipe()
            .cloned()
        else {
            return;
        };
        // The paper's findAdvertisement duplicate check: only genuinely new
        // advertisements are added.
        if self.known_pipes.iter().any(|p| p.pipe_id == pipe.pipe_id) {
            return;
        }
        self.known_pipes.push(pipe.clone());
        match self.role {
            Role::Subscriber => {
                self.peer.create_wire_input_pipe(ctx, &pipe);
            }
            Role::Publisher => {
                self.peer.resolve_wire_output_pipe(ctx, &pipe);
            }
        }
    }

    fn drain(&mut self, ctx: &mut NodeContext<'_>) {
        for event in self.peer.take_events() {
            match event {
                JxtaEvent::WireMessageReceived {
                    src_peer, message, ..
                } => self.handle_wire_message(ctx, src_peer, &message),
                JxtaEvent::AdvertisementDiscovered { adv, .. } => self.handle_discovered(ctx, &adv),
                _ => {}
            }
        }
    }
}

impl simnet::SimNode for JxtaSkiApp {
    fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
        self.peer.on_start(ctx);
        // AdvertisementsCreator: publish the ps-SkiRental group advertisement.
        self.peer.author_group(ctx, self.group.advertisement());
        self.peer
            .remote_publish(ctx, AnyAdvertisement::Group(self.group.advertisement().clone()));
        let pipes = self.known_pipes.clone();
        match self.role {
            Role::Subscriber => {
                for pipe in &pipes {
                    self.peer.create_wire_input_pipe(ctx, pipe);
                }
            }
            Role::Publisher => {
                for pipe in &pipes {
                    self.peer.resolve_wire_output_pipe(ctx, pipe);
                }
            }
        }
        if self.full_featured {
            // AdvertisementsFinder: keep searching for other advertisements
            // of the same type.
            self.peer
                .discover_remote(ctx, AdvKind::Group, SearchFilter::by_name("ps-SkiRental*"), 10);
        }
        // Every flavour runs the finder tick: publishers must retry pipe
        // resolution because the initial attempt races peer start-up (a
        // listener that has not leased with its rendezvous yet cannot be
        // walked, so the first resolution round can miss it).
        ctx.set_timer(self.finder_interval, TIMER_SR_FINDER);
        self.drain(ctx);
    }

    fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, datagram: Datagram) {
        self.peer.on_datagram(ctx, &datagram);
        self.drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut NodeContext<'_>, _token: simnet::TimerToken, tag: u64) {
        if is_jxta_timer(tag) {
            self.peer.on_timer(ctx, tag);
        } else if tag == TIMER_SR_FINDER {
            if self.full_featured {
                self.peer
                    .discover_remote(ctx, AdvKind::Group, SearchFilter::by_name("ps-SkiRental*"), 10);
            }
            if self.role == Role::Publisher {
                // Pipe resolutions are additive (newly answering listeners
                // bind on top of the ones already resolved), so retrying
                // picks up listeners whose leases were not yet granted when
                // the previous round walked the rendezvous.
                let pipes = self.known_pipes.clone();
                for pipe in &pipes {
                    self.peer.resolve_wire_output_pipe(ctx, pipe);
                }
            }
            ctx.set_timer(self.finder_interval, TIMER_SR_FINDER);
        }
        self.drain(ctx);
    }

    fn on_address_changed(
        &mut self,
        ctx: &mut NodeContext<'_>,
        old: simnet::SimAddress,
        new: simnet::SimAddress,
    ) {
        self.peer.on_address_changed(ctx, old, new);
        self.drain(ctx);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxta::peer::CostModel;

    #[test]
    fn construction_prepares_the_canonical_pipe() {
        let app = JxtaSkiApp::new(
            PeerConfig::edge("shop").with_costs(CostModel::free()),
            Role::Publisher,
            true,
        );
        assert_eq!(app.known_pipe_count(), 1);
        assert!(app.sent().is_empty());
        assert!(app.received().is_empty());
        assert_eq!(app.duplicates(), 0);
        assert_eq!(app.peer().peer_id(), jxta::PeerId::derive("shop"));
    }
}
