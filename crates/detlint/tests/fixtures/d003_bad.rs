// Known-bad: OS-level nondeterminism in kernel code.
pub fn decide() -> bool {
    let jitter: u64 = rand::random();
    let debug = std::env::var("DEBUG_LEVEL").is_ok();
    std::thread::spawn(|| {});
    jitter % 2 == 0 && debug
}
