// D004 fixture: `label` omits `Gamma`, `ALL` names every variant.
#[derive(Debug, Clone, Copy)]
pub enum Flavor {
    Alpha,
    Beta,
    Gamma,
}

impl Flavor {
    pub const ALL: [Flavor; 3] = [Flavor::Alpha, Flavor::Beta, Flavor::Gamma];

    pub fn label(self) -> &'static str {
        match self {
            Flavor::Alpha => "alpha",
            Flavor::Beta => "beta",
            _ => "other",
        }
    }
}
