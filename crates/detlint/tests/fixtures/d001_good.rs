// Known-good: virtual time only; wall-clock names appear solely inside
// strings and comments, which the lexer scrubs.
pub struct VirtualClock {
    now_us: u64,
}

impl VirtualClock {
    // A comment mentioning Instant::now must not fire.
    pub fn advance(&mut self, us: u64) {
        self.now_us += us;
    }

    pub fn describe(&self) -> String {
        format!("not a real clock, no SystemTime here: {}", self.now_us)
    }
}
