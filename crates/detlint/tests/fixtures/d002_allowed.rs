// Known-good: the iteration is order-sensitive but deliberately accepted,
// with an annotation carrying the justification.
use std::collections::HashMap;

pub struct Pool {
    workers: HashMap<u64, String>,
}

impl Pool {
    pub fn poke_all(&mut self) {
        // detlint::allow(D002, reason = "side effects are commutative: each worker is poked exactly once")
        for worker in self.workers.values_mut() {
            worker.push('!');
        }
    }
}
