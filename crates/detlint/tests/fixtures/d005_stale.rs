// Known-bad for D005: the first allow suppresses nothing (the map below it
// is a BTreeMap), and the second is malformed (no reason).
use std::collections::BTreeMap;

pub struct Registry {
    entries: BTreeMap<String, u64>,
}

impl Registry {
    pub fn walk(&self) {
        // detlint::allow(D002, reason = "left behind after a BTreeMap conversion")
        for entry in self.entries.values() {
            let _ = entry;
        }
    }

    pub fn other(&self) -> usize {
        // detlint::allow(D001)
        self.entries.len()
    }
}
