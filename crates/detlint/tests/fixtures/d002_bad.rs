// Known-bad: order-sensitive walks over hash containers.
use std::collections::{HashMap, HashSet};

pub struct Table {
    counts: HashMap<String, u64>,
    members: HashSet<u64>,
}

impl Table {
    pub fn export(&self) -> Vec<String> {
        self.counts.keys().cloned().collect()
    }

    pub fn visit(&self) {
        for member in &self.members {
            let _ = member;
        }
    }

    pub fn drain_all(&mut self) {
        for (name, count) in self.counts.drain() {
            let _ = (name, count);
        }
    }
}
