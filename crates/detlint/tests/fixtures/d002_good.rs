// Known-good: ordered containers, lookups, sorted/order-free reductions.
use std::collections::{BTreeMap, HashMap, HashSet};

pub struct Table {
    counts: HashMap<String, u64>,
    ordered: BTreeMap<String, u64>,
    members: HashSet<u64>,
}

impl Table {
    pub fn lookup(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.counts.iter().map(|(k, v)| (k.clone(), *v)).collect::<BTreeMap<String, u64>>()
    }

    pub fn snapshot_multiline(&self) -> BTreeMap<String, u64> {
        self.counts
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect::<BTreeMap<_, _>>()
    }

    pub fn walk_ordered(&self) {
        for (name, count) in &self.ordered {
            let _ = (name, count);
        }
    }

    pub fn contains(&self, member: u64) -> bool {
        self.members.contains(&member)
    }
}
