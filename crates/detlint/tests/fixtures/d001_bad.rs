// Known-bad: reads the host wall clock from simulation code.
use std::time::{Instant, SystemTime};

pub struct Sampler {
    started: Instant,
}

impl Sampler {
    pub fn new() -> Self {
        Sampler { started: Instant::now() }
    }

    pub fn stamp(&self) -> u64 {
        let epoch = SystemTime::now();
        let _ = epoch;
        self.started.elapsed().as_micros() as u64
    }
}
