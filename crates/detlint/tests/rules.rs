//! Rule behaviour over the fixture corpus: every rule's hit AND miss side,
//! allow-annotation suppression, stale-allow (D005) regression, D004
//! exhaustiveness, and baseline diffing.
//!
//! Fixtures live in `tests/fixtures/` and are pulled in with `include_str!`
//! so they are never compiled and never scanned as workspace sources (the
//! walker skips `fixtures/` directories). Each test mounts its fixture at a
//! fake kernel-crate path to bring it into D002/D003 scope.

use detlint::exhaustive::{Pair, Region, RegionKind};
use detlint::rules::{Finding, Rule};

const KERNEL_PATH: &str = "crates/simnet/src/fixture.rs";

fn scan_at(path: &str, source: &str) -> Vec<Finding> {
    detlint::scan_sources(&[(path.to_owned(), source.to_owned())], &[])
}

fn rules_of(findings: &[Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn d001_fires_on_wall_clock_reads() {
    let findings = scan_at(KERNEL_PATH, include_str!("fixtures/d001_bad.rs"));
    let d001: Vec<&Finding> = findings.iter().filter(|f| f.rule == Rule::D001).collect();
    assert!(
        d001.len() >= 2,
        "expected Instant::now and SystemTime hits, got {findings:?}"
    );
    assert!(d001.iter().any(|f| f.key == "Instant::now"));
    assert!(d001.iter().any(|f| f.key == "SystemTime"));
    assert!(
        d001.iter().any(|f| f.item.contains("Sampler")),
        "item paths attach: {d001:?}"
    );
}

#[test]
fn d001_ignores_strings_comments_and_bench_code() {
    let good = include_str!("fixtures/d001_good.rs");
    assert!(
        scan_at(KERNEL_PATH, good).is_empty(),
        "virtual clock must be clean"
    );
    // The same bad source is exempt in shims and bench paths.
    let bad = include_str!("fixtures/d001_bad.rs");
    assert!(scan_at("crates/shims/criterion/src/lib.rs", bad)
        .iter()
        .all(|f| f.rule != Rule::D001));
    assert!(scan_at("crates/bench/benches/fig18.rs", bad)
        .iter()
        .all(|f| f.rule != Rule::D001));
}

#[test]
fn d002_fires_on_hash_iteration_shapes() {
    let findings = scan_at(KERNEL_PATH, include_str!("fixtures/d002_bad.rs"));
    let keys: Vec<&str> = findings.iter().map(|f| f.key.as_str()).collect();
    assert!(keys.contains(&"counts.keys()"), "method-call iteration: {keys:?}");
    assert!(
        keys.contains(&"for-in:members"),
        "for-loop over hash set: {keys:?}"
    );
    assert!(
        keys.iter().any(|k| k.starts_with("counts.drain")),
        "drain: {keys:?}"
    );
    assert!(rules_of(&findings).iter().all(|r| *r == Rule::D002));
}

#[test]
fn d002_spares_ordered_containers_lookups_and_mitigated_statements() {
    let findings = scan_at(KERNEL_PATH, include_str!("fixtures/d002_good.rs"));
    assert!(
        findings.is_empty(),
        "known-good fixture must be clean, got {findings:?}"
    );
}

#[test]
fn d002_outside_kernel_crates_is_out_of_scope() {
    let findings = scan_at(
        "crates/detlint/src/other.rs",
        include_str!("fixtures/d002_bad.rs"),
    );
    assert!(findings.iter().all(|f| f.rule != Rule::D002));
}

#[test]
fn d002_allow_annotation_suppresses_and_is_not_stale() {
    let findings = scan_at(KERNEL_PATH, include_str!("fixtures/d002_allowed.rs"));
    assert!(
        findings.is_empty(),
        "allowed iteration must produce no findings, got {findings:?}"
    );
}

#[test]
fn d003_fires_on_thread_and_os_nondeterminism() {
    let findings = scan_at(KERNEL_PATH, include_str!("fixtures/d003_bad.rs"));
    let keys: Vec<&str> = findings.iter().map(|f| f.key.as_str()).collect();
    assert!(keys.contains(&"rand::random"), "{keys:?}");
    assert!(keys.contains(&"env::var"), "{keys:?}");
    assert!(keys.contains(&"thread::spawn"), "{keys:?}");
    assert!(rules_of(&findings).iter().all(|r| *r == Rule::D003));
}

#[test]
fn d004_reports_missing_variant_but_not_complete_regions() {
    let path = "crates/simnet/src/flavor.rs";
    let pairs = [Pair {
        enum_name: "Flavor",
        enum_file: "crates/simnet/src/flavor.rs",
        regions: &[
            Region {
                file: "crates/simnet/src/flavor.rs",
                kind: RegionKind::Const,
                name: "ALL",
            },
            Region {
                file: "crates/simnet/src/flavor.rs",
                kind: RegionKind::Fn,
                name: "label",
            },
        ],
    }];
    let findings = detlint::scan_sources(
        &[(
            path.to_owned(),
            include_str!("fixtures/d004_region.rs").to_owned(),
        )],
        &pairs,
    );
    let d004: Vec<&Finding> = findings.iter().filter(|f| f.rule == Rule::D004).collect();
    assert_eq!(
        d004.len(),
        1,
        "only `label` is missing Gamma (wildcards don't count): {d004:?}"
    );
    assert_eq!(d004[0].key, "Flavor::Gamma!label");
}

#[test]
fn d004_flags_table_drift_when_anchor_disappears() {
    let pairs = [Pair {
        enum_name: "Vanished",
        enum_file: "crates/simnet/src/flavor.rs",
        regions: &[],
    }];
    let findings = detlint::scan_sources(
        &[(
            "crates/simnet/src/flavor.rs".to_owned(),
            include_str!("fixtures/d004_region.rs").to_owned(),
        )],
        &pairs,
    );
    assert!(findings
        .iter()
        .any(|f| f.rule == Rule::D004 && f.key == "missing-enum:Vanished"));
}

#[test]
fn d005_stale_and_malformed_allows_are_errors() {
    let findings = scan_at(KERNEL_PATH, include_str!("fixtures/d005_stale.rs"));
    let d005: Vec<&Finding> = findings.iter().filter(|f| f.rule == Rule::D005).collect();
    assert_eq!(d005.len(), 2, "one stale + one malformed, got {findings:?}");
    assert!(d005.iter().any(|f| f.key == "stale-allow:D002"));
    assert!(d005.iter().any(|f| f.key == "malformed-allow"));
}

#[test]
fn d005_regression_allow_goes_stale_when_the_code_is_fixed() {
    // The exact lifecycle the rule exists for: an allow is valid while the
    // hash iteration exists…
    let before = "use std::collections::HashMap;\n\
                  pub struct S { m: HashMap<u32, u32> }\n\
                  impl S {\n\
                      pub fn f(&self) {\n\
                          // detlint::allow(D002, reason = \"commutative\")\n\
                          for v in self.m.values() { let _ = v; }\n\
                      }\n\
                  }\n";
    assert!(scan_at(KERNEL_PATH, before).is_empty());
    // …and becomes an error the moment the iteration is gone.
    let after = "use std::collections::HashMap;\n\
                 pub struct S { m: HashMap<u32, u32> }\n\
                 impl S {\n\
                     pub fn f(&self) -> usize {\n\
                         // detlint::allow(D002, reason = \"commutative\")\n\
                         self.m.len()\n\
                     }\n\
                 }\n";
    let findings = scan_at(KERNEL_PATH, after);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, Rule::D005);
    assert_eq!(findings[0].key, "stale-allow:D002");
}

#[test]
fn baseline_diff_separates_new_old_and_stale() {
    let findings = scan_at(KERNEL_PATH, include_str!("fixtures/d002_bad.rs"));
    assert!(!findings.is_empty());

    // Baseline everything → nothing is new.
    let full = detlint::baseline::parse(&detlint::baseline::render(&findings));
    let (new, old, stale) = detlint::baseline::diff(&findings, &full);
    assert!(new.is_empty());
    assert_eq!(old.len(), findings.len());
    assert!(stale.is_empty());

    // Empty baseline → everything is new.
    let empty = detlint::baseline::parse("# nothing accepted\n");
    let (new, old, _) = detlint::baseline::diff(&findings, &empty);
    assert_eq!(new.len(), findings.len());
    assert!(old.is_empty());

    // A baseline entry that no longer fires is reported stale.
    let mut with_ghost = full.clone();
    with_ghost.insert("D002\tcrates/simnet/src/gone.rs\tGone::walk\tm.keys()".to_owned());
    let (_, _, stale) = detlint::baseline::diff(&findings, &with_ghost);
    assert_eq!(stale.len(), 1);
}

#[test]
fn identities_are_line_number_free() {
    let source = include_str!("fixtures/d002_bad.rs");
    let shifted = format!("// shifted\n//\n//\n{source}");
    let a: Vec<String> = scan_at(KERNEL_PATH, source)
        .iter()
        .map(detlint::rules::Finding::identity)
        .collect();
    let b: Vec<String> = scan_at(KERNEL_PATH, &shifted)
        .iter()
        .map(detlint::rules::Finding::identity)
        .collect();
    assert_eq!(a, b, "prepending comment lines must not change identities");
}
