//! The gate, as a test: scanning the real workspace must produce no finding
//! that is not in the committed `detlint.baseline` — so plain `cargo test`
//! enforces the determinism contract even before CI's dedicated detlint job
//! runs. Also pins the acceptance criteria on the baseline itself: no
//! accepted wall-clock (D001) or thread/OS (D003) findings, ever.

use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/detlint → workspace root is two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
}

#[test]
fn workspace_scan_has_no_unbaselined_findings() {
    let root = workspace_root();
    let findings = detlint::scan_workspace(root).expect("workspace scan");
    let baseline_text = std::fs::read_to_string(root.join("detlint.baseline")).unwrap_or_default();
    let baseline = detlint::baseline::parse(&baseline_text);
    let (new, _, stale) = detlint::baseline::diff(&findings, &baseline);
    assert!(
        new.is_empty(),
        "new detlint findings — fix them or (rarely) annotate detlint::allow:\n{}",
        new.iter()
            .map(|f| format!("  {}:{} [{}] {}: {}", f.file, f.line, f.rule, f.item, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        stale.is_empty(),
        "stale baseline entries (refresh with --write-baseline): {stale:?}"
    );
}

#[test]
fn baseline_never_accepts_wall_clock_or_thread_nondeterminism() {
    let root = workspace_root();
    let baseline_text = std::fs::read_to_string(root.join("detlint.baseline")).unwrap_or_default();
    let baseline = detlint::baseline::parse(&baseline_text);
    for entry in &baseline {
        assert!(
            !entry.starts_with("D001") && !entry.starts_with("D003"),
            "D001/D003 findings must be fixed, not baselined: {entry}"
        );
    }
}

#[test]
fn exhaustiveness_anchors_exist_in_the_workspace() {
    // If a D004 anchor (enum or region) is renamed away, the scan reports
    // table drift as a finding; this test keeps the failure message close to
    // the table that needs updating.
    let root = workspace_root();
    let findings = detlint::scan_workspace(root).expect("workspace scan");
    let drift: Vec<_> = findings
        .iter()
        .filter(|f| {
            f.key.starts_with("missing-enum:")
                || f.key.starts_with("missing-region:")
                || f.key.starts_with("missing-file:")
        })
        .collect();
    assert!(
        drift.is_empty(),
        "detlint WORKSPACE_PAIRS drifted from the sources: {drift:?}"
    );
}
