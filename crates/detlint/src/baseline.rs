//! The checked-in findings baseline.
//!
//! `detlint.baseline` at the workspace root records the identities of
//! findings that were present when the gate was introduced. CI fails only on
//! findings *not* in the baseline, so the list can shrink monotonically
//! toward empty without a flag day. Identities are line-number-free (see
//! [`crate::rules::Finding::identity`]) so unrelated edits never churn it.

use crate::rules::Finding;
use std::collections::BTreeSet;

/// Parse a baseline file: one identity per line, `#` comments and blank
/// lines ignored.
pub fn parse(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_owned)
        .collect()
}

/// Render the baseline for the given findings, sorted and deduplicated.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# detlint baseline — accepted pre-existing findings.\n\
         # One identity per line: RULE <TAB> file <TAB> item path <TAB> key.\n\
         # Regenerate with: cargo run -p detlint -- --workspace --write-baseline\n\
         # New findings (anything not listed here) fail the build.\n",
    );
    let ids: BTreeSet<String> = findings.iter().map(Finding::identity).collect();
    for id in ids {
        out.push_str(&id);
        out.push('\n');
    }
    out
}

/// Split findings into (new, baselined) against a parsed baseline, and
/// report stale baseline entries that no longer correspond to any finding.
pub fn diff<'a>(
    findings: &'a [Finding],
    baseline: &BTreeSet<String>,
) -> (Vec<&'a Finding>, Vec<&'a Finding>, Vec<String>) {
    let current: BTreeSet<String> = findings.iter().map(Finding::identity).collect();
    let new: Vec<&Finding> = findings
        .iter()
        .filter(|f| !baseline.contains(&f.identity()))
        .collect();
    let old: Vec<&Finding> = findings
        .iter()
        .filter(|f| baseline.contains(&f.identity()))
        .collect();
    let stale: Vec<String> = baseline
        .iter()
        .filter(|b| !current.contains(*b))
        .cloned()
        .collect();
    (new, old, stale)
}
