//! The detlint ruleset.
//!
//! | rule | checks for | scope |
//! |------|-----------|-------|
//! | D001 | wall-clock leaks (`Instant::now`, `SystemTime`, …) | everything except shims / bench code |
//! | D002 | iteration over `HashMap`/`HashSet` | determinism-critical crates |
//! | D003 | thread / OS nondeterminism (`thread::spawn`, `thread_rng`, `env::var`, …) | determinism-critical crates |
//! | D004 | structural exhaustiveness (see [`crate::exhaustive`]) | declared enum/region pairs |
//! | D005 | stale or malformed `detlint::allow` annotations | everywhere |
//!
//! Findings carry a line number for display but their *identity* (what the
//! baseline stores) is `(rule, file, item path, key)` — editing unrelated
//! lines never churns the baseline.

use crate::lexer::{word_at, word_occurrences, Scrubbed};
use std::collections::BTreeSet;
use std::fmt;

/// Rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    D001,
    D002,
    D003,
    D004,
    D005,
}

impl Rule {
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::D001 => "D001",
            Rule::D002 => "D002",
            Rule::D003 => "D003",
            Rule::D004 => "D004",
            Rule::D005 => "D005",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative, '/'-separated path.
    pub file: String,
    /// 1-based line, for display only.
    pub line: usize,
    pub rule: Rule,
    /// Item path at the finding site (`Network::drop_summary`).
    pub item: String,
    /// Stable token naming what fired (`drop_counts.iter()`).
    pub key: String,
    pub message: String,
}

impl Finding {
    /// Line-number-free identity used by the baseline.
    pub fn identity(&self) -> String {
        format!("{}\t{}\t{}\t{}", self.rule, self.file, self.item, self.key)
    }
}

/// Crates whose event ordering must be bit-identical across processes: the
/// simulation kernel and everything that runs inside it.
pub const KERNEL_PREFIXES: [&str; 5] = [
    "crates/simnet/",
    "crates/jxta/",
    "crates/dissem/",
    "crates/tps/",
    "crates/telemetry/",
];

/// Paths where wall-clock reads are legitimate: the vendored dependency
/// shims (criterion really does time things) and benchmark harness code.
pub const D001_EXEMPT_PREFIXES: [&str; 2] = ["crates/shims/", "crates/bench/"];

fn in_kernel(file: &str) -> bool {
    KERNEL_PREFIXES.iter().any(|p| file.starts_with(p))
}

fn d001_applies(file: &str) -> bool {
    !D001_EXEMPT_PREFIXES.iter().any(|p| file.starts_with(p)) && !file.contains("/benches/")
}

/// Wall-clock constructors. Matched as whole words in scrubbed text, so
/// occurrences inside strings/comments never fire.
const D001_PATTERNS: [&str; 5] = [
    "Instant::now",
    "SystemTime",
    "UNIX_EPOCH",
    "Utc::now",
    "Local::now",
];

/// Thread- and OS-level nondeterminism sources.
const D003_PATTERNS: [&str; 8] = [
    "thread::spawn",
    "spawn_blocking",
    "thread_rng",
    "rand::random",
    "env::var",
    "env::vars",
    "available_parallelism",
    "RandomState",
];

/// Hash-container methods whose result order is nondeterministic.
const ITER_SUFFIXES: [&str; 9] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

/// Tokens that make an iteration order-insensitive: collecting into an
/// ordered container, sorting the result in the same statement, or reducing
/// to an order-free aggregate.
const MITIGATORS: [&str; 13] = [
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    ".sort",
    ".count()",
    ".sum()",
    ".sum::",
    ".len()",
    ".min(",
    ".max(",
    ".any(",
    ".all(",
    ".is_empty()",
];

/// Run the per-file rules (D001/D002/D003) over one scrubbed source file.
/// `allows` usage flags are updated in place; stale ones become D005
/// findings later via [`stale_allows`].
pub fn check_file(file: &str, scrubbed: &mut Scrubbed, findings: &mut Vec<Finding>) {
    if d001_applies(file) {
        pattern_rule(
            file,
            scrubbed,
            Rule::D001,
            &D001_PATTERNS,
            "wall-clock read",
            findings,
        );
    }
    if in_kernel(file) {
        pattern_rule(
            file,
            scrubbed,
            Rule::D003,
            &D003_PATTERNS,
            "thread/OS nondeterminism",
            findings,
        );
        check_hash_iteration(file, scrubbed, findings);
    }
}

fn pattern_rule(
    file: &str,
    scrubbed: &mut Scrubbed,
    rule: Rule,
    patterns: &[&str],
    what: &str,
    findings: &mut Vec<Finding>,
) {
    for lineno in 1..=scrubbed.lines.len() {
        let line = scrubbed.lines[lineno - 1].clone();
        for pat in patterns {
            if word_occurrences(&line, pat).next().is_some() {
                push_unless_allowed(
                    file,
                    scrubbed,
                    findings,
                    Finding {
                        file: file.to_owned(),
                        line: lineno,
                        rule,
                        item: scrubbed.path_of(lineno).to_owned(),
                        key: (*pat).to_owned(),
                        message: format!("{what} `{pat}` in deterministic code"),
                    },
                );
            }
        }
    }
}

/// D002: two passes. First collect the names bound to `HashMap`/`HashSet`
/// values in this file (struct fields, lets, params); then flag order-
/// sensitive iteration over those names.
fn check_hash_iteration(file: &str, scrubbed: &mut Scrubbed, findings: &mut Vec<Finding>) {
    let names = hash_bindings(&scrubbed.lines);
    if names.is_empty() {
        return;
    }
    for lineno in 1..=scrubbed.lines.len() {
        let line = scrubbed.lines[lineno - 1].clone();
        let mut flagged: BTreeSet<(String, String)> = BTreeSet::new();
        for name in &names {
            for idx in word_occurrences(&line, name).collect::<Vec<_>>() {
                let after = &line[idx + name.len()..];
                for suffix in ITER_SUFFIXES {
                    if after.starts_with(suffix) {
                        flagged.insert((name.clone(), format!("{name}{}", suffix.trim_end_matches('('))));
                    }
                }
            }
            if let Some(expr) = for_loop_expr(&line) {
                let subject = expr
                    .trim_start_matches('&')
                    .trim_start_matches("mut ")
                    .trim_start()
                    .trim_start_matches("self.");
                if subject == name.as_str() {
                    flagged.insert((name.clone(), format!("for-in:{name}")));
                }
            }
        }
        for (name, key) in flagged {
            if statement_window(&scrubbed.lines, lineno)
                .iter()
                .any(|l| MITIGATORS.iter().any(|m| l.contains(m)))
            {
                continue;
            }
            push_unless_allowed(
                file,
                scrubbed,
                findings,
                Finding {
                    file: file.to_owned(),
                    line: lineno,
                    rule: Rule::D002,
                    item: scrubbed.path_of(lineno).to_owned(),
                    key: key.clone(),
                    message: format!(
                        "iteration over hash container `{name}` — order is nondeterministic; \
                         sort, use a BTreeMap/BTreeSet, or annotate detlint::allow(D002, …)"
                    ),
                },
            );
        }
    }
}

/// Names bound to a `HashMap`/`HashSet` anywhere in the file: `x: HashMap<…>`
/// (fields, params, typed lets) and `x = HashMap::new()` style initialisers.
fn hash_bindings(lines: &[String]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for line in lines {
        for container in ["HashMap", "HashSet"] {
            for idx in word_occurrences(line, container) {
                if let Some(name) = binding_before(&line[..idx]) {
                    names.insert(name);
                }
            }
        }
    }
    names
}

/// Given the text before a `HashMap`/`HashSet` token, extract the bound name
/// for declaration shapes (`name: HashMap<…>`, `name = HashMap::new()`).
fn binding_before(before: &str) -> Option<String> {
    let mut s = before.trim_end();
    // Strip a path prefix like `std::collections::`.
    while let Some(r) = s.strip_suffix("::") {
        let r = r.trim_end();
        let ident = trailing_ident(r)?;
        s = r[..r.len() - ident.len()].trim_end();
    }
    // Strip reference/mut decorations: `name: &mut HashMap<…>`.
    loop {
        let t = s.trim_end();
        if let Some(r) = t.strip_suffix('&') {
            s = r;
        } else if let Some(r) = t.strip_suffix("mut") {
            if r.is_empty() || r.ends_with([' ', '&', '(']) {
                s = r;
            } else {
                s = t;
                break;
            }
        } else {
            s = t;
            break;
        }
    }
    if let Some(r) = s.strip_suffix(':') {
        if r.ends_with(':') {
            return None; // path remnant like `collections::`
        }
        return trailing_ident(r.trim_end()).filter(|n| n != "let");
    }
    if let Some(r) = s.strip_suffix('=') {
        if r.ends_with(['=', '!', '<', '>', '+', '-', '*']) {
            return None; // comparison / compound assignment
        }
        return trailing_ident(r.trim_end()).filter(|n| n != "let");
    }
    None
}

fn trailing_ident(s: &str) -> Option<String> {
    let ident: String = s
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(ident)
    }
}

/// If `line` holds a `for … in EXPR {` header, return the trimmed EXPR.
fn for_loop_expr(line: &str) -> Option<&str> {
    let for_idx = word_occurrences(line, "for").next()?;
    let rest = &line[for_idx + 3..];
    let in_idx = word_occurrences(rest, "in").next()?;
    let expr = rest[in_idx + 2..].trim();
    Some(expr.trim_end_matches('{').trim_end())
}

/// The statement the finding line starts: that line plus following lines up
/// to (and including) the first one ending in `;` or `{`, capped at 8.
fn statement_window(lines: &[String], lineno: usize) -> Vec<String> {
    let mut window = Vec::new();
    for line in lines.iter().skip(lineno - 1).take(8) {
        window.push(line.clone());
        let t = line.trim_end();
        if t.ends_with(';') || t.ends_with('{') {
            break;
        }
    }
    window
}

/// Suppression: an allow for the finding's rule on the same line or the line
/// directly above eats the finding (and is marked used, for D005).
fn push_unless_allowed(_file: &str, scrubbed: &mut Scrubbed, findings: &mut Vec<Finding>, finding: Finding) {
    for allow in &mut scrubbed.allows {
        if allow.malformed.is_none()
            && allow.rule == finding.rule.as_str()
            && (allow.line == finding.line || allow.line + 1 == finding.line)
        {
            allow.used = true;
            return;
        }
    }
    findings.push(finding);
}

/// D005: every allow that never suppressed anything (or failed to parse) is
/// itself a finding — stale annotations rot into misinformation.
pub fn stale_allows(file: &str, scrubbed: &Scrubbed, findings: &mut Vec<Finding>) {
    for allow in &scrubbed.allows {
        if let Some(why) = &allow.malformed {
            findings.push(Finding {
                file: file.to_owned(),
                line: allow.line,
                rule: Rule::D005,
                item: scrubbed.path_of(allow.line).to_owned(),
                key: "malformed-allow".to_owned(),
                message: format!("malformed detlint::allow annotation: {why}"),
            });
        } else if !allow.used {
            findings.push(Finding {
                file: file.to_owned(),
                line: allow.line,
                rule: Rule::D005,
                item: scrubbed.path_of(allow.line).to_owned(),
                key: format!("stale-allow:{}", allow.rule),
                message: format!(
                    "stale detlint::allow({}) — the rule no longer fires here; delete the annotation",
                    allow.rule
                ),
            });
        }
    }
}

/// Self-check helper for `word_at`, exposed for tests.
pub fn contains_word(text: &str, needle: &str) -> bool {
    text.match_indices(needle).any(|(i, _)| word_at(text, i, needle))
}
