//! D004 — structural exhaustiveness.
//!
//! Some correspondences in this workspace cannot be enforced by the type
//! system because they live in different crates or in data (label tables,
//! metric exports, span taxonomies). Each [`Pair`] below declares one such
//! contract: *every variant of `enum_name` must appear, as a whole word, in
//! each named region*. A `_ =>` wildcard does not satisfy the contract — the
//! point is to force the author of a new variant to visit every site that
//! classifies it.

use crate::rules::{Finding, Rule};
use std::collections::BTreeMap;

/// What kind of item anchors a checked region.
#[derive(Debug, Clone, Copy)]
pub enum RegionKind {
    /// `fn name { … }` — the region is the brace-balanced body.
    Fn,
    /// `const NAME: … = …;` — the region runs to the terminating `;`.
    Const,
}

/// One region that must mention every variant.
#[derive(Debug, Clone, Copy)]
pub struct Region {
    pub file: &'static str,
    pub kind: RegionKind,
    pub name: &'static str,
}

/// An enum and the regions that must stay exhaustive over it.
#[derive(Debug, Clone, Copy)]
pub struct Pair {
    pub enum_name: &'static str,
    pub enum_file: &'static str,
    pub regions: &'static [Region],
}

/// The workspace's exhaustiveness contracts. Documented in ARCHITECTURE.md's
/// determinism-contract section; extend this table when a new
/// variant-classifying site appears.
pub const WORKSPACE_PAIRS: [Pair; 5] = [
    // Every kernel drop reason must be countable, labelable, and indexable —
    // the drop-summary export iterates DropReason::ALL, so a variant missing
    // from any of these silently vanishes from metrics.
    Pair {
        enum_name: "DropReason",
        enum_file: "crates/simnet/src/stats.rs",
        regions: &[
            Region {
                file: "crates/simnet/src/stats.rs",
                kind: RegionKind::Const,
                name: "ALL",
            },
            Region {
                file: "crates/simnet/src/stats.rs",
                kind: RegionKind::Fn,
                name: "label",
            },
            Region {
                file: "crates/simnet/src/stats.rs",
                kind: RegionKind::Fn,
                name: "index",
            },
        ],
    },
    // Every wire message must have a span-taxonomy tag, a decoder arm, and a
    // handler arm — a new message type that skips any of these is routed but
    // never traced (or vice versa).
    Pair {
        enum_name: "WireMessage",
        enum_file: "crates/jxta/src/endpoint.rs",
        regions: &[
            Region {
                file: "crates/jxta/src/endpoint.rs",
                kind: RegionKind::Fn,
                name: "type_tag",
            },
            Region {
                file: "crates/jxta/src/endpoint.rs",
                kind: RegionKind::Fn,
                name: "from_message",
            },
            Region {
                file: "crates/jxta/src/peer.rs",
                kind: RegionKind::Fn,
                name: "handle_wire_message",
            },
        ],
    },
    // Every span kind must render in the operator timeline.
    Pair {
        enum_name: "SpanKind",
        enum_file: "crates/telemetry/src/trace.rs",
        regions: &[Region {
            file: "crates/telemetry/src/trace.rs",
            kind: RegionKind::Fn,
            name: "timeline",
        }],
    },
    // Every health-alert kind must be enumerable, labelable, and indexable —
    // the watchdog's alert log and the operator view key off the label table,
    // so a variant missing from any of these renders as nothing.
    Pair {
        enum_name: "AlertKind",
        enum_file: "crates/telemetry/src/slo.rs",
        regions: &[
            Region {
                file: "crates/telemetry/src/slo.rs",
                kind: RegionKind::Const,
                name: "ALL",
            },
            Region {
                file: "crates/telemetry/src/slo.rs",
                kind: RegionKind::Fn,
                name: "label",
            },
            Region {
                file: "crates/telemetry/src/slo.rs",
                kind: RegionKind::Fn,
                name: "index",
            },
        ],
    },
    // Every dissemination strategy must be enumerable by the bench matrix.
    Pair {
        enum_name: "StrategyKind",
        enum_file: "crates/dissem/src/lib.rs",
        regions: &[Region {
            file: "crates/dissem/src/lib.rs",
            kind: RegionKind::Const,
            name: "ALL",
        }],
    },
];

/// Check every pair against the scrubbed sources (keyed by workspace-relative
/// path). Missing files/enums/regions are themselves findings — a renamed
/// anchor must update this table, not silently disable the check.
pub fn check(sources: &BTreeMap<String, Vec<String>>, pairs: &[Pair], findings: &mut Vec<Finding>) {
    for pair in pairs {
        let Some(enum_lines) = sources.get(pair.enum_file) else {
            findings.push(drift(pair.enum_file, 1, pair.enum_name, "missing-file"));
            continue;
        };
        let Some(variants) = enum_variants(enum_lines, pair.enum_name) else {
            findings.push(drift(pair.enum_file, 1, pair.enum_name, "missing-enum"));
            continue;
        };
        for region in pair.regions {
            let Some(region_lines) = sources.get(region.file) else {
                findings.push(drift(region.file, 1, region.name, "missing-file"));
                continue;
            };
            let Some((start, text)) = region_text(region_lines, region.kind, region.name) else {
                findings.push(drift(region.file, 1, region.name, "missing-region"));
                continue;
            };
            for variant in &variants {
                if !crate::rules::contains_word(&text, variant) {
                    findings.push(Finding {
                        file: region.file.to_owned(),
                        line: start,
                        rule: Rule::D004,
                        item: region.name.to_owned(),
                        key: format!("{}::{variant}!{}", pair.enum_name, region.name),
                        message: format!(
                            "`{}::{variant}` is not handled in `{}` ({}): add an arm/entry for it",
                            pair.enum_name, region.name, region.file
                        ),
                    });
                }
            }
        }
    }
}

fn drift(file: &str, line: usize, name: &str, what: &str) -> Finding {
    Finding {
        file: file.to_owned(),
        line,
        rule: Rule::D004,
        item: name.to_owned(),
        key: format!("{what}:{name}"),
        message: format!("exhaustiveness table drift: {what} `{name}` — update detlint's WORKSPACE_PAIRS"),
    }
}

/// Parse the variant names of `enum name { … }` from scrubbed lines.
pub fn enum_variants(lines: &[String], name: &str) -> Option<Vec<String>> {
    let text = lines.join("\n");
    let mut search_from = 0;
    let decl = loop {
        let idx = text[search_from..].find("enum")? + search_from;
        search_from = idx + 4;
        if !crate::lexer::word_at(&text, idx, "enum") {
            continue;
        }
        let after = text[idx + 4..].trim_start();
        if after.starts_with(name)
            && !after[name.len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            break idx;
        }
    };
    let body_open = text[decl..].find('{')? + decl;
    let body = balanced_block(&text, body_open)?;
    // Drop the enclosing braces so the variant walk sees depth 0 inside.
    let inner = &body[1..body.len().saturating_sub(1)];

    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut expecting = true;
    let chars: Vec<char> = inner.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            '#' if depth == 0 => {
                // Skip an attribute: `#[derive(…)]`.
                let mut d = 0;
                while i < chars.len() {
                    match chars[i] {
                        '[' => d += 1,
                        ']' => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            ',' if depth == 0 => expecting = true,
            _ if depth == 0 && expecting && (c.is_alphabetic() || c == '_') => {
                let mut ident = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    ident.push(chars[i]);
                    i += 1;
                }
                expecting = false;
                variants.push(ident);
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    Some(variants)
}

/// The text of the named region and its 1-based start line.
pub fn region_text(lines: &[String], kind: RegionKind, name: &str) -> Option<(usize, String)> {
    let text = lines.join("\n");
    let keyword = match kind {
        RegionKind::Fn => "fn",
        RegionKind::Const => "const",
    };
    let mut search_from = 0;
    let decl = loop {
        let idx = text[search_from..].find(keyword)? + search_from;
        search_from = idx + keyword.len();
        if !crate::lexer::word_at(&text, idx, keyword) {
            continue;
        }
        let after = text[idx + keyword.len()..].trim_start();
        if after.starts_with(name) && crate::lexer::word_at(after, 0, name) {
            break idx;
        }
    };
    let start_line = text[..decl].matches('\n').count() + 1;
    let body = match kind {
        RegionKind::Fn => {
            let open = text[decl..].find('{')? + decl;
            balanced_block(&text, open)?
        }
        RegionKind::Const => {
            // Run to the first `;` at bracket depth 0 (the type's own `;` in
            // `[T; N]` sits inside brackets).
            let rest = &text[decl..];
            let mut depth = 0i32;
            let mut end = None;
            for (i, c) in rest.char_indices() {
                match c {
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' | '}' => depth -= 1,
                    ';' if depth == 0 => {
                        end = Some(i);
                        break;
                    }
                    _ => {}
                }
            }
            rest[..end?].to_owned()
        }
    };
    Some((start_line, body))
}

/// The `{ … }` block opening at `open` (byte index of `{`), braces balanced.
fn balanced_block(text: &str, open: usize) -> Option<String> {
    let mut depth = 0i32;
    for (i, c) in text[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(text[open..open + i + 1].to_owned());
                }
            }
            _ => {}
        }
    }
    None
}
