//! Line-oriented Rust lexing: just enough awareness to blank out comments and
//! string/char literals (so rule patterns never match inside them), harvest
//! `detlint::allow` annotations from comments, and attach a coarse
//! item path (`Type::fn_name`) to every line.
//!
//! This is intentionally not a full Rust parser. The rules in this workspace
//! key off token patterns (`Instant::now`, `.keys()`, `for … in`), and the
//! only lexical hazards for those are literals and comments — which a
//! character-level state machine handles exactly, including nested block
//! comments and `r#"…"#` raw strings.

/// A `detlint::allow` annotation — rule id plus mandatory reason string —
/// found in a comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line the annotation sits on. It suppresses findings of its
    /// rule on the same line or the line directly below.
    pub line: usize,
    /// Rule id the annotation names, e.g. `D002`.
    pub rule: String,
    /// The operator-facing justification. Required: an allow without a
    /// reason is reported as malformed.
    pub reason: String,
    /// Parse error, if the annotation was recognisably an allow but did not
    /// follow the grammar. Reported as D005.
    pub malformed: Option<String>,
    /// Set by the rule engines when a finding was actually suppressed.
    /// Allows that stay unused are stale and reported as D005.
    pub used: bool,
}

/// A source file after literal/comment scrubbing.
#[derive(Debug)]
pub struct Scrubbed {
    /// Source lines with comment and string/char literal *contents* replaced
    /// by spaces. Line structure (count and byte offsets) is preserved so
    /// findings can point back at real locations.
    pub lines: Vec<String>,
    /// Allow annotations harvested from the comments, in file order.
    pub allows: Vec<Allow>,
    /// `item_paths[i]` is the item path in effect at the start of line
    /// `i + 1`, e.g. `Network::drop_summary`. Empty at module scope.
    pub item_paths: Vec<String>,
}

impl Scrubbed {
    /// Item path for a 1-based line number.
    pub fn path_of(&self, line: usize) -> &str {
        self.item_paths
            .get(line.wrapping_sub(1))
            .map_or("", String::as_str)
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nesting depth of `/* */`.
    BlockComment(u32),
    Str,
    /// Number of `#` marks that close the raw string.
    RawStr(u32),
    CharLit,
}

/// Scrub `source`: blank out comments and literal contents, collect allow
/// annotations, and compute per-line item paths.
pub fn scrub(source: &str) -> Scrubbed {
    let mut lines = Vec::new();
    let mut allows = Vec::new();
    let mut state = State::Code;

    for (idx, raw) in source.lines().enumerate() {
        let mut out = String::with_capacity(raw.len());
        let mut comment = String::new();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        comment.extend(&chars[i..]);
                        out.extend(std::iter::repeat_n(' ', chars.len() - i));
                        state = State::LineComment;
                        i = chars.len();
                        continue;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        out.push_str("  ");
                        i += 2;
                        continue;
                    }
                    '"' => {
                        state = State::Str;
                        out.push('"');
                    }
                    'r' if matches!(next, Some('"' | '#')) && !prev_is_ident(&chars, i) => {
                        // Raw string: r"…" or r#"…"# (any number of hashes).
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            state = State::RawStr(hashes);
                            for _ in i..=j {
                                out.push(' ');
                            }
                            i = j + 1;
                            continue;
                        }
                        out.push(c);
                    }
                    '\'' => {
                        // Char literal vs lifetime: a literal is 'x' or an
                        // escape; a lifetime tick is followed by an ident
                        // with no closing quote right after.
                        if next == Some('\\') {
                            state = State::CharLit;
                            out.push('\'');
                            out.push(' ');
                            i += 2;
                            continue;
                        }
                        if chars.get(i + 2) == Some(&'\'') && next != Some('\'') {
                            out.push_str("' '");
                            i += 3;
                            continue;
                        }
                        out.push('\'');
                    }
                    _ => out.push(c),
                },
                State::LineComment => unreachable!("line comments consume the rest of the line"),
                State::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::BlockComment(depth - 1)
                        };
                        comment.push(' ');
                        out.push_str("  ");
                        i += 2;
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        state = State::BlockComment(depth + 1);
                        comment.push(' ');
                        out.push_str("  ");
                        i += 2;
                        continue;
                    }
                    comment.push(c);
                    out.push(' ');
                }
                State::Str => match c {
                    '\\' => {
                        out.push_str("  ");
                        i += 2;
                        continue;
                    }
                    '"' => {
                        state = State::Code;
                        out.push('"');
                    }
                    _ => out.push(' '),
                },
                State::RawStr(hashes) => {
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..hashes as usize {
                            if chars.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            state = State::Code;
                            for _ in 0..=hashes as usize {
                                out.push(' ');
                            }
                            i += 1 + hashes as usize;
                            continue;
                        }
                    }
                    out.push(' ');
                }
                State::CharLit => {
                    if c == '\'' {
                        state = State::Code;
                        out.push('\'');
                    } else {
                        out.push(' ');
                    }
                }
            }
            i += 1;
        }
        // A line comment never spills to the next line, and a char literal
        // cannot contain a newline. Plain and raw strings CAN span lines —
        // those states persist.
        if matches!(state, State::LineComment | State::CharLit) {
            state = State::Code;
        }
        if let Some(allow) = parse_allow(&comment, idx + 1) {
            allows.push(allow);
        }
        lines.push(out);
    }

    let item_paths = item_paths(&lines);
    Scrubbed {
        lines,
        allows,
        item_paths,
    }
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Parse an allow annotation — `detlint::allow` immediately followed by
/// `(RULE, reason = …)` — out of comment text. Returns `None` when the
/// comment does not contain the call form at all; prose that merely
/// *mentions* detlint::allow is not an annotation attempt.
fn parse_allow(comment: &str, line: usize) -> Option<Allow> {
    let start = comment.find("detlint::allow(")?;
    let malformed = |why: &str| Allow {
        line,
        rule: String::new(),
        reason: String::new(),
        malformed: Some(why.to_owned()),
        used: false,
    };
    let rest = &comment[start + "detlint::allow".len()..];
    let Some(body) = rest.strip_prefix('(').and_then(|r| r.split(')').next()) else {
        return Some(malformed("expected `detlint::allow(RULE, reason = \"…\")`"));
    };
    let mut parts = body.splitn(2, ',');
    let rule = parts.next().unwrap_or("").trim().to_owned();
    if rule.len() != 4 || !rule.starts_with('D') || !rule[1..].chars().all(|c| c.is_ascii_digit()) {
        return Some(malformed("allow must name a rule id like D002"));
    }
    let tail = parts.next().unwrap_or("").trim();
    let reason = tail
        .strip_prefix("reason")
        .map(|r| r.trim_start().trim_start_matches('=').trim())
        .and_then(|r| r.strip_prefix('"'))
        .and_then(|r| r.rsplit_once('"').map(|(body, _)| body.to_owned()));
    let Some(reason) = reason else {
        return Some(malformed("allow requires `reason = \"…\"`"));
    };
    if reason.trim().is_empty() {
        return Some(malformed("allow reason must not be empty"));
    }
    Some(Allow {
        line,
        rule,
        reason,
        malformed: None,
        used: false,
    })
}

/// Compute the item path in effect at the start of every (scrubbed) line by
/// tracking brace depth and the `fn`/`struct`/`enum`/`impl`/`mod`/`trait`
/// headers that open blocks.
fn item_paths(lines: &[String]) -> Vec<String> {
    let mut paths = Vec::with_capacity(lines.len());
    // (depth the item's block lives at, name)
    let mut stack: Vec<(usize, String)> = Vec::new();
    let mut depth = 0usize;
    let mut pending: Option<String> = None;

    for line in lines {
        paths.push(
            stack
                .iter()
                .map(|(_, n)| n.as_str())
                .collect::<Vec<_>>()
                .join("::"),
        );
        if let Some(name) = item_header(line) {
            pending = Some(name);
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some(name) = pending.take() {
                        stack.push((depth, name));
                    }
                }
                '}' => {
                    if stack.last().is_some_and(|(d, _)| *d == depth) {
                        stack.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                ';' => {
                    // `struct Unit;`, trait method signatures, etc. end the
                    // pending header without opening a block.
                    pending = None;
                }
                _ => {}
            }
        }
    }
    paths
}

/// If the line begins an item (`fn name`, `impl Type`, …) return its display
/// name. `impl Trait for Type` names `Type`.
fn item_header(line: &str) -> Option<String> {
    let words: Vec<&str> = line.split_whitespace().collect();
    for (i, w) in words.iter().enumerate() {
        match *w {
            "fn" | "struct" | "enum" | "trait" | "mod" | "union" => {
                return words.get(i + 1).map(|n| ident_prefix(n));
            }
            "impl" => {
                // `impl<T> Trait for Type` — prefer the type after `for`.
                let after_for = words
                    .iter()
                    .position(|w| *w == "for")
                    .and_then(|p| words.get(p + 1));
                let name = after_for.or_else(|| {
                    words[i + 1..]
                        .iter()
                        .find(|w| w.chars().next().is_some_and(char::is_alphabetic))
                });
                return name.map(|n| ident_prefix(n));
            }
            // Qualifiers that may precede the item keyword.
            "pub" | "pub(crate)" | "pub(super)" | "const" | "unsafe" | "async" | "extern" => {}
            _ => return None,
        }
    }
    None
}

/// The leading identifier characters of a token (`Network<T>` → `Network`).
fn ident_prefix(token: &str) -> String {
    token
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect()
}

/// True when `text[idx..]` starts with `needle` as a whole word: the
/// characters on either side are not identifier characters.
pub fn word_at(text: &str, idx: usize, needle: &str) -> bool {
    if !text[idx..].starts_with(needle) {
        return false;
    }
    let before_ok = idx == 0
        || text[..idx]
            .chars()
            .next_back()
            .is_some_and(|c| !c.is_alphanumeric() && c != '_');
    let after = text[idx + needle.len()..].chars().next();
    let after_ok = after.is_none_or(|c| !c.is_alphanumeric() && c != '_');
    before_ok && after_ok
}

/// All whole-word occurrences of `needle` in `text`.
pub fn word_occurrences<'a>(text: &'a str, needle: &'a str) -> impl Iterator<Item = usize> + 'a {
    text.match_indices(needle)
        .map(|(i, _)| i)
        .filter(move |&i| word_at(text, i, needle))
}
