//! detlint — the workspace determinism & simulation-safety audit.
//!
//! Every claim this repository makes (exactly-once delivery under churn,
//! bit-identical same-seed traces, the rebalance-recovery numbers) rests on
//! the simulation kernel being deterministic. detlint turns that contract
//! from folklore into an enforced static-analysis pass: it walks the
//! workspace sources with a line-oriented lexer (string/comment aware, item
//! paths attached) and applies the D001–D005 ruleset described in
//! [`rules`] and [`exhaustive`].
//!
//! Run it as `cargo run -p detlint -- --workspace`. Findings diff against
//! the checked-in `detlint.baseline`; only *new* findings fail the build.
//! See ARCHITECTURE.md § "The determinism contract".

pub mod baseline;
pub mod exhaustive;
pub mod lexer;
pub mod rules;

use rules::Finding;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Run the whole pipeline over in-memory sources: per-file rules
/// (D001–D003), exhaustiveness (D004) over `pairs`, then stale-allow
/// hygiene (D005). `files` maps workspace-relative paths to source text.
/// Findings come back sorted by (file, line, rule, key).
pub fn scan_sources(files: &[(String, String)], pairs: &[exhaustive::Pair]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut scrubbed_lines: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut scrubbed_files = Vec::new();

    for (rel, source) in files {
        let mut scrubbed = lexer::scrub(source);
        rules::check_file(rel, &mut scrubbed, &mut findings);
        scrubbed_lines.insert(rel.clone(), scrubbed.lines.clone());
        scrubbed_files.push((rel.clone(), scrubbed));
    }

    exhaustive::check(&scrubbed_lines, pairs, &mut findings);

    // D005 last: an allow is "used" only once every rule that could consume
    // it has run.
    for (rel, scrubbed) in &scrubbed_files {
        rules::stale_allows(rel, scrubbed, &mut findings);
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule, &a.key).cmp(&(&b.file, b.line, b.rule, &b.key)));
    findings
}

/// Scan a workspace rooted at `root` with the standard D004 table.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for rel in collect_rust_files(root)? {
        let source = std::fs::read_to_string(root.join(&rel))?;
        files.push((rel, source));
    }
    Ok(scan_sources(&files, &exhaustive::WORKSPACE_PAIRS))
}

/// Every `.rs` file under `root`, as sorted workspace-relative paths with
/// `/` separators. Skips build output, VCS metadata, and detlint's own
/// fixture corpus (which contains deliberate violations).
pub fn collect_rust_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | ".git" | "fixtures") {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Locate the workspace root: walk up from `start` to the first directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Minimal JSON string escaping for `--json` output.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
