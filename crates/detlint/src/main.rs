//! CLI for the determinism audit. Typical invocations:
//!
//! ```text
//! cargo run -p detlint -- --workspace              # human-readable, diffed against detlint.baseline
//! cargo run -p detlint -- --workspace --json       # machine-readable findings
//! cargo run -p detlint -- --workspace --deny-new   # CI gate: new findings OR stale baseline entries fail
//! cargo run -p detlint -- --workspace --write-baseline
//! ```
//!
//! Exit code 0 when every finding is baselined; 1 when new findings exist
//! (or, under `--deny-new`, when the baseline lists findings that no longer
//! fire — a stale baseline hides regressions); 2 on usage/IO errors.

use detlint::rules::{Finding, Rule};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    json: bool,
    deny_new: bool,
    write_baseline: bool,
    baseline_path: Option<PathBuf>,
}

fn main() -> ExitCode {
    let mut opts = Options {
        json: false,
        deny_new: false,
        write_baseline: false,
        baseline_path: None,
    };
    let mut workspace = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => opts.json = true,
            "--deny-new" => opts.deny_new = true,
            "--write-baseline" => opts.write_baseline = true,
            "--baseline" => {
                let Some(p) = args.next() else {
                    eprintln!("detlint: --baseline requires a path");
                    return ExitCode::from(2);
                };
                opts.baseline_path = Some(PathBuf::from(p));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: detlint --workspace [--json] [--deny-new] [--write-baseline] \
                     [--baseline PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("detlint: unknown argument `{other}` (only --workspace scans are supported)");
                return ExitCode::from(2);
            }
        }
    }
    if !workspace {
        eprintln!("detlint: pass --workspace to scan the enclosing cargo workspace");
        return ExitCode::from(2);
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("detlint: cannot determine working directory: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = detlint::find_workspace_root(&cwd) else {
        eprintln!(
            "detlint: no workspace root (Cargo.toml with [workspace]) above {}",
            cwd.display()
        );
        return ExitCode::from(2);
    };

    let findings = match detlint::scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("detlint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_path = opts
        .baseline_path
        .clone()
        .unwrap_or_else(|| root.join("detlint.baseline"));
    if opts.write_baseline {
        let rendered = detlint::baseline::render(&findings);
        if let Err(e) = std::fs::write(&baseline_path, rendered) {
            eprintln!("detlint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "detlint: wrote {} finding(s) to {}",
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = std::fs::read_to_string(&baseline_path)
        .map(|t| detlint::baseline::parse(&t))
        .unwrap_or_default();
    let (new, old, stale) = detlint::baseline::diff(&findings, &baseline);

    if opts.json {
        print_json(&new, &old, &stale);
    } else {
        print_human(&new, &old, &stale, &baseline_path.display().to_string());
    }

    let stale_fails = opts.deny_new && !stale.is_empty();
    if new.is_empty() && !stale_fails {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_human(new: &[&Finding], old: &[&Finding], stale: &[String], baseline_path: &str) {
    for f in new {
        let item = if f.item.is_empty() {
            String::new()
        } else {
            format!(" {}", f.item)
        };
        println!("{}:{} [{}]{item}: {}", f.file, f.line, f.rule, f.message);
    }
    let mut per_rule: Vec<(Rule, usize)> = Vec::new();
    for f in new.iter().chain(old.iter()) {
        match per_rule.iter_mut().find(|(r, _)| *r == f.rule) {
            Some((_, n)) => *n += 1,
            None => per_rule.push((f.rule, 1)),
        }
    }
    per_rule.sort_by_key(|(r, _)| *r);
    let summary: Vec<String> = per_rule.iter().map(|(r, n)| format!("{r}×{n}")).collect();
    println!(
        "detlint: {} new finding(s), {} baselined, {} stale baseline entr{} [{}]",
        new.len(),
        old.len(),
        stale.len(),
        if stale.len() == 1 { "y" } else { "ies" },
        if summary.is_empty() {
            "clean".to_owned()
        } else {
            summary.join(", ")
        },
    );
    for s in stale {
        println!(
            "  stale baseline entry (no longer fires): {}",
            s.replace('\t', " | ")
        );
    }
    if !stale.is_empty() {
        println!("  refresh with: cargo run -p detlint -- --workspace --write-baseline  ({baseline_path})");
    }
}

fn print_json(new: &[&Finding], old: &[&Finding], stale: &[String]) {
    let esc = detlint::json_escape;
    let render = |f: &Finding, is_new: bool| {
        format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"item\":\"{}\",\"key\":\"{}\",\
             \"message\":\"{}\",\"new\":{}}}",
            f.rule,
            esc(&f.file),
            f.line,
            esc(&f.item),
            esc(&f.key),
            esc(&f.message),
            is_new
        )
    };
    let mut items: Vec<String> = new.iter().map(|f| render(f, true)).collect();
    items.extend(old.iter().map(|f| render(f, false)));
    let stales: Vec<String> = stale.iter().map(|s| format!("\"{}\"", esc(s))).collect();
    println!(
        "{{\"findings\":[{}],\"new\":{},\"baselined\":{},\"stale\":[{}]}}",
        items.join(","),
        new.len(),
        old.len(),
        stales.join(",")
    );
}
