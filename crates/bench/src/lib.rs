//! # tps-bench — figure reproductions and ablation benches
//!
//! The measurement surface of the reproduction. Three Criterion benches
//! regenerate the paper's figures (`fig18_invocation_time`,
//! `fig19_publisher_throughput`, `fig20_subscriber_throughput`) and six
//! ablations isolate one mechanism each (`ablation_dissem`,
//! `ablation_batch`, `ablation_codec`, `ablation_dedup`,
//! `ablation_fanout`, `ablation_rebalance`). The `reproduce` binary
//! (`cargo run -p tps-bench --bin reproduce --release`) prints the
//! paper-vs-measured comparison tables without the bench harness.
//!
//! All series are measured in *virtual* time on the deterministic
//! simulator, so runs are reproducible per seed ([`DEFAULT_SEED`]; change
//! it to check conclusions are seed-independent). Set `TPS_BENCH_SMOKE=1`
//! to run reduced-iteration shapes — that is what CI does to keep bench
//! code from rotting.
//!
//! This crate itself holds the shared reporting helpers: [`SeriesReport`]
//! pairs a reproduced series with the paper's reference value and renders
//! the comparison rows used by both consumers, and [`report::BenchJson`]
//! emits each headline table as a machine-readable
//! `target/bench-json/BENCH_<name>.json` artifact.

pub mod report;

use ski_rental::{stats, Flavor, SeriesStats};

/// The default seed used by the figure reproductions (change it to check that
/// conclusions are seed-independent).
pub const DEFAULT_SEED: u64 = 2002;

/// A reproduced series alongside the paper's reported reference value.
#[derive(Debug, Clone)]
pub struct SeriesReport {
    /// The flavour and population the series describes (e.g. "SR-TPS, 4 subs").
    pub label: String,
    /// The value the paper reports (approximate, read off the figure).
    pub paper_reference: String,
    /// Statistics of the reproduced series.
    pub measured: SeriesStats,
    /// The full reproduced series.
    pub series: Vec<f64>,
}

impl SeriesReport {
    /// Builds a report from a measured series.
    pub fn new(label: impl Into<String>, paper_reference: impl Into<String>, series: Vec<f64>) -> Self {
        SeriesReport {
            label: label.into(),
            paper_reference: paper_reference.into(),
            measured: stats(&series),
            series,
        }
    }

    /// One formatted table row: label, paper reference, measured mean ± std.
    pub fn row(&self, unit: &str) -> String {
        format!(
            "{:<22} | paper: {:<18} | measured: {:7.2} ± {:6.2} {} (min {:.2}, max {:.2})",
            self.label,
            self.paper_reference,
            self.measured.mean,
            self.measured.std_dev,
            unit,
            self.measured.min,
            self.measured.max
        )
    }
}

/// The flavours in figure order with their figure labels.
pub fn flavors() -> [Flavor; 3] {
    [Flavor::JxtaWire, Flavor::SrJxta, Flavor::SrTps]
}

/// Renders a figure header for the console report.
pub fn figure_header(title: &str) -> String {
    let line = "=".repeat(title.len());
    format!("\n{title}\n{line}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_rows_format_mean_and_reference() {
        let report = SeriesReport::new("SR-TPS, 1 sub", "~250 ms", vec![10.0, 20.0, 30.0]);
        let row = report.row("ms");
        assert!(row.contains("SR-TPS, 1 sub"));
        assert!(row.contains("~250 ms"));
        assert!(row.contains("20.00"));
        assert_eq!(report.series.len(), 3);
    }

    #[test]
    fn header_underlines_title() {
        let header = figure_header("Figure 18");
        assert!(header.contains("Figure 18"));
        assert!(header.contains("========="));
    }

    #[test]
    fn flavor_order_matches_figures() {
        assert_eq!(flavors()[0].label(), "JXTA-WIRE");
        assert_eq!(flavors()[2].label(), "SR-TPS");
    }
}
