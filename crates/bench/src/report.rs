//! Machine-readable bench reports: `BENCH_<name>.json` artifacts.
//!
//! Every headline table a bench prints to the console is also emitted as a
//! JSON artifact under `target/bench-json/`, so CI (and anyone diffing two
//! branches) can compare series without scraping stdout. The writer is
//! deliberately hand-rolled: field order is insertion order, floats render
//! through the same [`format_f64`] the telemetry exporters use, and each row
//! is one line — the artifact diffs like a table.
//!
//! Wall-clock figures (e.g. `wall_secs`) are honest measurements of the
//! harness and vary run to run; every *virtual*-time figure in these files
//! is deterministic per seed.

use jxta::telemetry::export::{format_f64, push_json_string};
use std::path::PathBuf;

/// One JSON scalar, pre-rendered so the writer stays allocation-simple.
#[derive(Debug, Clone)]
enum Value {
    Raw(String),
    Str(String),
}

fn push_value(out: &mut String, value: &Value) {
    match value {
        Value::Raw(raw) => out.push_str(raw),
        Value::Str(s) => push_json_string(out, s),
    }
}

fn push_object(out: &mut String, fields: &[(String, Value)]) {
    out.push('{');
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_json_string(out, key);
        out.push_str(": ");
        push_value(out, value);
    }
    out.push('}');
}

/// An in-progress `BENCH_<name>.json` artifact: top-level metadata plus a
/// list of uniform-ish rows.
#[derive(Debug)]
pub struct BenchJson {
    name: String,
    meta: Vec<(String, Value)>,
    rows: Vec<Vec<(String, Value)>>,
}

impl BenchJson {
    /// Starts an artifact for the bench `name` (`BENCH_<name>.json`).
    pub fn new(name: impl Into<String>) -> Self {
        BenchJson {
            name: name.into(),
            meta: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Adds one top-level metadata field (seed, population shape, smoke…).
    pub fn meta_num(&mut self, key: &str, value: f64) -> &mut Self {
        self.meta.push((key.to_owned(), Value::Raw(format_f64(value))));
        self
    }

    /// Adds one top-level string metadata field.
    pub fn meta_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.meta.push((key.to_owned(), Value::Str(value.to_owned())));
        self
    }

    /// Opens a new row; fill it field by field via the returned builder.
    pub fn row(&mut self) -> Row<'_> {
        self.rows.push(Vec::new());
        Row {
            fields: self.rows.last_mut().expect("row just pushed"),
        }
    }

    /// The rendered artifact: meta fields in insertion order, one row per
    /// line.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"bench\": ");
        push_json_string(&mut out, &self.name);
        out.push_str(",\n  \"meta\": ");
        push_object(&mut out, &self.meta);
        out.push_str(",\n  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            push_object(&mut out, row);
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes `target/bench-json/BENCH_<name>.json` and returns its path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/bench-json"));
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// `write`, reporting the outcome on the console instead of failing the
    /// bench: the artifact is a side product, a read-only target dir must
    /// not kill the measurement run.
    pub fn write_and_announce(&self) {
        match self.write() {
            Ok(path) => println!("bench json: {}", path.display()),
            Err(err) => eprintln!("bench json: failed to write BENCH_{}.json: {err}", self.name),
        }
    }
}

/// Field-by-field builder for one row of a [`BenchJson`].
#[derive(Debug)]
pub struct Row<'a> {
    fields: &'a mut Vec<(String, Value)>,
}

impl Row<'_> {
    /// Adds one numeric field (rendered via [`format_f64`]).
    pub fn num(self, key: &str, value: f64) -> Self {
        self.fields.push((key.to_owned(), Value::Raw(format_f64(value))));
        self
    }

    /// Adds one string field.
    pub fn str(self, key: &str, value: &str) -> Self {
        self.fields.push((key.to_owned(), Value::Str(value.to_owned())));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_render_in_insertion_order_one_per_line() {
        let mut report = BenchJson::new("unit");
        report.meta_num("seed", 2002.0).meta_str("mode", "smoke");
        report.row().str("strategy", "direct-fanout").num("ms", 1.5);
        report.row().str("strategy", "gossip").num("ms", 0.25);
        let json = report.to_json();
        assert_eq!(
            json,
            "{\n  \"bench\": \"unit\",\n  \"meta\": {\"seed\": 2002, \"mode\": \"smoke\"},\n  \
             \"rows\": [\n    {\"strategy\": \"direct-fanout\", \"ms\": 1.5},\n    \
             {\"strategy\": \"gossip\", \"ms\": 0.25}\n  ]\n}\n"
        );
    }

    #[test]
    fn strings_are_escaped_and_non_finite_numbers_clamped() {
        let mut report = BenchJson::new("esc");
        report.row().str("label", "a \"b\"\n").num("nan", f64::NAN);
        let json = report.to_json();
        assert!(json.contains("\"label\": \"a \\\"b\\\"\\n\""));
        assert!(json.contains("\"nan\": 0"));
    }
}
