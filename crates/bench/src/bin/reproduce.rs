//! Regenerates every table and figure of the paper's evaluation section and
//! prints paper-reference vs measured values.
//!
//! ```text
//! cargo run -p tps-bench --bin reproduce --release            # everything
//! cargo run -p tps-bench --bin reproduce --release -- fig18   # one figure
//! ```

use ski_rental::{
    dissemination_comparison, invocation_time, loc_report, publisher_throughput, subscriber_throughput,
    Flavor, StrategyKind,
};
use tps_bench::{figure_header, SeriesReport, DEFAULT_SEED};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "all");

    println!("Reproduction of 'OS Support for P2P Programming: a Case for TPS' (ICDCS 2002)");
    println!("seed = {DEFAULT_SEED}; all times are virtual (simulated JXTA 1.0 testbed)");

    if wanted("fig18") {
        fig18();
    }
    if wanted("fig19") {
        fig19();
    }
    if wanted("fig20") {
        fig20();
    }
    if wanted("loc") {
        loc();
    }
    if wanted("dissem") {
        dissem();
    }
}

fn fig18() {
    println!(
        "{}",
        figure_header("Figure 18 - Invocation time (ms per sendMessage call, 50 events)")
    );
    let paper: &[(&str, Flavor, usize)] = &[
        ("~150-450 (1 sub)", Flavor::JxtaWire, 1),
        ("~200-500 (1 sub)", Flavor::SrJxta, 1),
        ("~200-500 (1 sub)", Flavor::SrTps, 1),
        ("~400-1100 (4 subs)", Flavor::JxtaWire, 4),
        ("~450-1200 (4 subs)", Flavor::SrJxta, 4),
        ("~450-1200 (4 subs)", Flavor::SrTps, 4),
    ];
    for (reference, flavor, subs) in paper {
        let series = invocation_time(*flavor, *subs, 50, DEFAULT_SEED);
        let report = SeriesReport::new(format!("{flavor}, {subs} sub(s)"), *reference, series);
        println!("{}", report.row("ms/msg"));
    }
    println!("shape checks: JXTA-WIRE < SR-JXTA ~= SR-TPS; 4 subscribers slower than 1; large std-dev");
}

fn fig19() {
    println!(
        "{}",
        figure_header("Figure 19 - Publisher throughput (events sent/sec, 100 events, 10 epochs)")
    );
    let paper: &[(&str, Flavor, usize)] = &[
        ("~9-11 ev/s (1 sub)", Flavor::JxtaWire, 1),
        ("~7-9 ev/s (1 sub)", Flavor::SrJxta, 1),
        ("~7-9 ev/s (1 sub)", Flavor::SrTps, 1),
        ("~2-4 ev/s (4 subs)", Flavor::JxtaWire, 4),
        ("~2-4 ev/s (4 subs)", Flavor::SrJxta, 4),
        ("~2-4 ev/s (4 subs)", Flavor::SrTps, 4),
    ];
    for (reference, flavor, subs) in paper {
        let series = publisher_throughput(*flavor, *subs, 100, 10, DEFAULT_SEED);
        let report = SeriesReport::new(format!("{flavor}, {subs} sub(s)"), *reference, series);
        println!("{}", report.row("ev/s"));
    }
    println!("shape checks: wire fastest at 1 sub; differences shrink as subscribers increase");
}

fn fig20() {
    println!(
        "{}",
        figure_header("Figure 20 - Subscriber throughput (events received/sec over 50s of flooding)")
    );
    let paper: &[(&str, Flavor, usize)] = &[
        ("~7.8 ev/s (1 pub)", Flavor::JxtaWire, 1),
        ("~6.1 ev/s (1 pub)", Flavor::SrJxta, 1),
        ("~6.0 ev/s (1 pub)", Flavor::SrTps, 1),
        ("~2-3 ev/s (4 pubs)", Flavor::JxtaWire, 4),
        ("~2 ev/s (4 pubs)", Flavor::SrJxta, 4),
        ("~2 ev/s (4 pubs)", Flavor::SrTps, 4),
    ];
    for (reference, flavor, pubs) in paper {
        let series = subscriber_throughput(*flavor, *pubs, 50, DEFAULT_SEED);
        let report = SeriesReport::new(format!("{flavor}, {pubs} pub(s)"), *reference, series);
        println!("{}", report.row("ev/s"));
    }
    println!("shape checks: wire >= SR layers at 1 publisher; per-layer rates drop with 4 publishers");
}

fn dissem() {
    println!(
        "{}",
        figure_header("Ablation - Dissemination strategies (publisher invocation time, ms/event)")
    );
    let populations = [1usize, 4, 16, 32];
    // One sweep per population; each sweep runs the same workload under every
    // strategy (the harness's dissemination_comparison scenario).
    let sweeps: Vec<Vec<(StrategyKind, f64)>> = populations
        .iter()
        .map(|&subs| dissemination_comparison(Flavor::SrTps, subs, 10, DEFAULT_SEED))
        .collect();
    print!("{:<18}", "strategy \\ subs");
    for subs in populations {
        print!("{subs:>10}");
    }
    println!();
    for (row, kind) in StrategyKind::ALL.into_iter().enumerate() {
        print!("{:<18}", kind.label());
        for sweep in &sweeps {
            print!("{:>10.1}", sweep[row].1);
        }
        println!();
    }
    println!(
        "shape checks: direct fan-out grows linearly (Figure 18); rendezvous tree stays flat (O(1) copies)"
    );
}

fn loc() {
    println!(
        "{}",
        figure_header("Section 4.4 - Programming effort (non-blank, non-comment lines)")
    );
    let report = loc_report();
    println!(
        "code a TPS user writes (type + SR-TPS app):        {:>6}",
        report.tps_user_loc
    );
    println!(
        "code a direct-JXTA user writes (SR-JXTA app):      {:>6}",
        report.jxta_user_loc
    );
    println!(
        "TPS library functionality the JXTA user forgoes:   {:>6}",
        report.tps_library_loc
    );
    println!(
        "savings, minimal functionality (paper: >= 900):    {:>6}",
        report.minimal_savings()
    );
    println!(
        "savings, full API functionality (paper: ~5000):    {:>6}",
        report.full_api_savings()
    );
}
