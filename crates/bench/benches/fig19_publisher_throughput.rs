//! Figure 19: publisher throughput, per flavour and subscriber count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ski_rental::{publisher_throughput, Flavor};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig19_publisher_throughput");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for flavor in [Flavor::JxtaWire, Flavor::SrJxta, Flavor::SrTps] {
        for subs in [1usize, 4] {
            group.bench_with_input(BenchmarkId::new(flavor.label(), subs), &subs, |b, &subs| {
                b.iter(|| publisher_throughput(flavor, subs, 20, 2, 2002));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
