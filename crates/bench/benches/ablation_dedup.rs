//! Ablation A1: what the SR layers' added functionality (duplicate handling,
//! advertisement management, histories) costs compared to the raw wire.

use criterion::{criterion_group, criterion_main, Criterion};
use ski_rental::{invocation_time, Flavor};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dedup");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("raw_wire_no_dedup", |b| {
        b.iter(|| invocation_time(Flavor::JxtaWire, 1, 10, 7));
    });
    group.bench_function("sr_jxta_with_dedup", |b| {
        b.iter(|| invocation_time(Flavor::SrJxta, 1, 10, 7));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
