//! Ablation A5: batched publication. `Publisher::publish_batch` marshals N
//! events into **one** wire message, so the publisher pays the per-message
//! charges (connection service per listener, padding) once per batch instead
//! of once per event.
//!
//! The interesting output is the *virtual* invocation-time table printed
//! before the wall-clock samples: under DirectFanout at 64 events the total
//! publisher time collapses from `64 × listeners × service` to roughly
//! `listeners × service`, flattening the per-event cost; the same holds on
//! the rendezvous tree, where the publisher side is already O(1) copies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ski_rental::harness::batch_comparison;
use ski_rental::{DisseminationConfig, Flavor, StrategyKind};
use std::time::Duration;
use tps_bench::report::BenchJson;

const BATCH_SIZES: [usize; 4] = [4, 16, 64, 256];
const SUBSCRIBERS: usize = 4;
const SEED: u64 = 2002;

fn virtual_time_table() {
    println!(
        "\nvirtual publisher invocation time for N events, singles vs one batch \
         ({SUBSCRIBERS} subscribers, DirectFanout, seed {SEED})"
    );
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>9}",
        "events", "singles (ms)", "batch (ms)", "ms/event", "speedup"
    );
    let mut json = BenchJson::new("ablation_batch");
    json.meta_num("seed", SEED as f64)
        .meta_num("subscribers", SUBSCRIBERS as f64)
        .meta_str("strategy", "direct-fanout");
    for events in BATCH_SIZES {
        let (singles, batch) = batch_comparison(
            Flavor::SrTps,
            DisseminationConfig::direct_fanout(),
            SUBSCRIBERS,
            events,
            SEED,
        );
        println!(
            "{:>8} {:>14.1} {:>14.1} {:>14.2} {:>8.1}x",
            events,
            singles,
            batch,
            batch / events as f64,
            singles / batch
        );
        json.row()
            .num("events", events as f64)
            .num("singles_ms", singles)
            .num("batch_ms", batch)
            .num("batch_ms_per_event", batch / events as f64)
            .num("speedup", singles / batch);
    }
    json.write_and_announce();
}

fn bench(c: &mut Criterion) {
    virtual_time_table();
    let mut group = c.benchmark_group("ablation_batch");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    for kind in [StrategyKind::DirectFanout, StrategyKind::RendezvousTree] {
        for events in [16usize, 64] {
            group.bench_with_input(
                BenchmarkId::new(format!("{}_batch", kind.label()), events),
                &events,
                |b, &events| {
                    b.iter(|| {
                        batch_comparison(
                            Flavor::SrTps,
                            DisseminationConfig::of_kind(kind),
                            SUBSCRIBERS,
                            events,
                            SEED,
                        )
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
