//! Figure 18: invocation time of one published event, per flavour and
//! subscriber count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ski_rental::{Flavor, Scenario};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig18_invocation_time");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for flavor in [Flavor::JxtaWire, Flavor::SrJxta, Flavor::SrTps] {
        for subs in [1usize, 4] {
            group.bench_with_input(BenchmarkId::new(flavor.label(), subs), &subs, |b, &subs| {
                b.iter_batched(
                    || {
                        let mut scenario = Scenario::build(flavor, 1, subs, 2002);
                        scenario.warm_up();
                        scenario
                    },
                    |mut scenario| {
                        for _ in 0..5 {
                            scenario.publish_one(0);
                        }
                        scenario
                    },
                    criterion::BatchSize::SmallInput,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
