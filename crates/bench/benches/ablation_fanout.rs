//! Ablation A3: subscriber fan-out sweep beyond the paper's 5-peer JXTA 1.0
//! limit (invocation time as the listener count grows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ski_rental::{Flavor, Scenario};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fanout");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    for subs in [1usize, 2, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("sr_tps_subscribers", subs), &subs, |b, &subs| {
            b.iter_batched(
                || {
                    let mut scenario = Scenario::build(Flavor::SrTps, 1, subs, 2002);
                    scenario.warm_up();
                    scenario
                },
                |mut scenario| {
                    scenario.publish_one(0);
                    scenario
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
