//! The mega-scale series: simulation throughput and per-node traffic as the
//! flyweight subscriber population grows 1k → 10k → 100k.
//!
//! This is the measurement behind the flyweight edge-peer mode: the headline
//! table prints, per population, the wall time of the whole scenario, the
//! kernel's simulated events per wall-second, and the payload bytes the
//! network moved per node — the two axes (time and space) that the
//! zero-copy datagrams, the arena-indexed kernel and the flyweight
//! representation were built to keep flat-ish per member.
//!
//! Wall-clock use is confined to this crate (`crates/bench/` is detlint
//! D001-exempt): it measures the harness, never simulation behaviour.
//! `TPS_BENCH_SMOKE=1` (set by CI) shrinks the populations so the bench
//! smoke-runs in seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simnet::SimDuration;
use ski_rental::harness::Scenario;
use std::time::Duration;
use tps_bench::report::BenchJson;

const SHARDS: usize = 4;
const PUBLISHES: usize = 3;
const SEED: u64 = 2002;

fn smoke() -> bool {
    std::env::var("TPS_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn populations() -> Vec<usize> {
    if smoke() {
        vec![200, 1_000, 2_000]
    } else {
        vec![1_000, 10_000, 100_000]
    }
}

struct ScaleRow {
    population: usize,
    wall: Duration,
    events: u64,
    events_per_sec: f64,
    bytes_per_node: f64,
    delivered: u64,
    missing: usize,
}

/// One full scenario at `population` flyweight subscribers: build, lease,
/// publish `PUBLISHES` offers, drain, and read the kernel's books.
fn run_population(population: usize) -> ScaleRow {
    let start = std::time::Instant::now();
    let mut scenario = Scenario::build_flyweight_mesh(SHARDS, 1, population, SEED);
    scenario.advance(SimDuration::from_secs(8));
    for _ in 0..PUBLISHES {
        scenario.publish_one(0);
        scenario.advance(SimDuration::from_secs(3));
    }
    scenario.advance(SimDuration::from_secs(5));
    let wall = start.elapsed();

    let stats = scenario.network().total_stats();
    let events = scenario.network().events_processed();
    let nodes = (SHARDS + 1 + population) as f64;
    let missing = (0..population)
        .filter(|&i| scenario.received_count(i) != PUBLISHES)
        .count();
    ScaleRow {
        population,
        wall,
        events,
        events_per_sec: events as f64 / wall.as_secs_f64().max(1e-9),
        bytes_per_node: stats.bytes_sent as f64 / nodes,
        delivered: stats.datagrams_delivered,
        missing,
    }
}

fn series_table() {
    println!(
        "\nmega-scale series: {SHARDS}-shard rendezvous mesh, {PUBLISHES} publishes, \
         flyweight subscribers, seed {SEED}{}",
        if smoke() { ", SMOKE" } else { "" }
    );
    println!(
        "{:>12} {:>10} {:>16} {:>14} {:>12} {:>8}",
        "subscribers", "wall", "sim events/sec", "bytes/node", "delivered", "missing"
    );
    let mut json = BenchJson::new("scale_population");
    json.meta_num("seed", SEED as f64)
        .meta_num("shards", SHARDS as f64)
        .meta_num("publishes", PUBLISHES as f64)
        .meta_str("mode", if smoke() { "smoke" } else { "full" });
    for population in populations() {
        let row = run_population(population);
        println!(
            "{:>12} {:>9.2}s {:>16.0} {:>14.1} {:>12} {:>8}",
            row.population,
            row.wall.as_secs_f64(),
            row.events_per_sec,
            row.bytes_per_node,
            row.delivered,
            row.missing
        );
        json.row()
            .num("subscribers", row.population as f64)
            .num("wall_secs", row.wall.as_secs_f64())
            .num("sim_events", row.events as f64)
            .num("sim_events_per_sec", row.events_per_sec)
            .num("bytes_per_node", row.bytes_per_node)
            .num("delivered", row.delivered as f64)
            .num("missing", row.missing as f64);
        assert_eq!(
            row.missing, 0,
            "{} subscribers: every flyweight must receive all {} publishes",
            row.population, PUBLISHES
        );
        assert!(
            row.events >= (row.population * PUBLISHES) as u64,
            "the kernel must have simulated at least one event per (subscriber, publish)"
        );
    }
    json.write_and_announce();
}

fn bench(c: &mut Criterion) {
    series_table();
    // Criterion timing on the smallest population only: the table above
    // already covers the big shapes once each, and iterating a 100k build
    // inside the sampler would take minutes for no extra signal.
    let population = if smoke() { 200 } else { 1_000 };
    let mut group = c.benchmark_group("scale_population");
    group.sample_size(10).measurement_time(Duration::from_secs(10));
    group.bench_with_input(
        BenchmarkId::new("flyweight-mesh", population),
        &population,
        |b, &population| {
            b.iter(|| run_population(population));
        },
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
