//! Ablation A5: the load-aware rebalancing controller. Reproduces the
//! delivery-ratio-vs-time trajectory of a sharded rendezvous mesh across a
//! scripted shard death, with and without the controller.
//!
//! One rendezvous of four is killed and **never revived**. Events are
//! published on a fixed cadence; each epoch's delivery ratio is the fraction
//! of subscribers that received that epoch's event. Without the controller
//! (`RebalanceConfig::disabled`, the PR 3 behaviour) the dead shard's
//! subscribers stay dark forever and the ratio flatlines below 1. With the
//! controller, the survivors declare the shard dead after its rendezvous
//! misses the report threshold, the dead shard's edges walk the failover
//! ring to the adopting rendezvous as their leases expire, and the ratio
//! recovers to 1.0 — the headline table this bench prints.
//!
//! `TPS_BENCH_SMOKE=1` (set by CI) shrinks the virtual horizon and epoch
//! count so the bench smoke-runs in seconds; the trajectory shape (dip,
//! then recovery only with the controller) is preserved.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jxta::RebalanceConfig;
use simnet::{ChurnDriver, SimDuration};
use ski_rental::harness::Scenario;
use ski_rental::{DisseminationConfig, Flavor};
use std::time::Duration;
use tps_bench::report::BenchJson;

const SHARDS: usize = 4;
const SUBSCRIBERS: usize = 8;
const SEED: u64 = 2002;
/// Seconds between published events.
const EPOCH_SECS: u64 = 15;

fn smoke() -> bool {
    std::env::var("TPS_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// Epochs after the kill. The full run covers the whole lease lifetime plus
/// the failover margin (the recovery completes by ~150 virtual seconds); the
/// smoke run keeps the dip visible and the code paths exercised.
fn epochs() -> usize {
    if smoke() {
        4
    } else {
        14
    }
}

/// One run: returns the per-epoch delivery ratios after the shard death.
fn delivery_trajectory(controller_on: bool) -> Vec<f64> {
    let rebalance = if controller_on {
        RebalanceConfig::default()
    } else {
        RebalanceConfig::disabled()
    };
    let mut scenario = Scenario::build_sharded(
        Flavor::SrTps,
        DisseminationConfig::rendezvous_mesh(SHARDS).with_rebalance(rebalance),
        SHARDS,
        1,
        SUBSCRIBERS,
        SEED,
        jxta::CostModel::free(),
    );
    scenario.warm_up();
    // The victim: first shard that is not the publisher's and has clients.
    let publisher_shard = scenario
        .shard_of(scenario.publisher_id(0))
        .expect("publisher leased");
    let victim = scenario
        .rendezvous_ids()
        .iter()
        .copied()
        .find(|&id| {
            id != publisher_shard
                && (0..SUBSCRIBERS).any(|i| scenario.shard_of(scenario.subscriber_id(i)) == Some(id))
        })
        .expect("some non-publisher shard has subscribers");

    let mut churn = ChurnDriver::new();
    let kill_at = scenario.now() + SimDuration::from_secs(1);
    churn.kill_at(kill_at, victim);
    churn.run_until(scenario.network_mut(), kill_at + SimDuration::from_secs(1));

    let mut ratios = Vec::with_capacity(epochs());
    for _ in 0..epochs() {
        let before: Vec<usize> = (0..SUBSCRIBERS).map(|i| scenario.received_count(i)).collect();
        scenario.publish_one(0);
        scenario.advance(SimDuration::from_secs(EPOCH_SECS));
        let delivered = (0..SUBSCRIBERS)
            .filter(|&i| scenario.received_count(i) > before[i])
            .count();
        ratios.push(delivered as f64 / SUBSCRIBERS as f64);
    }
    ratios
}

fn trajectory_table() {
    let with_controller = delivery_trajectory(true);
    let without_controller = delivery_trajectory(false);
    println!(
        "\ndelivery ratio vs time across a permanent shard death \
         ({SHARDS} shards, {SUBSCRIBERS} subscribers, seed {SEED}{})",
        if smoke() { ", SMOKE" } else { "" }
    );
    println!(
        "{:>12} {:>17} {:>17}",
        "t after kill", "with controller", "without"
    );
    let mut json = BenchJson::new("ablation_rebalance");
    json.meta_num("seed", SEED as f64)
        .meta_num("shards", SHARDS as f64)
        .meta_num("subscribers", SUBSCRIBERS as f64)
        .meta_str("mode", if smoke() { "smoke" } else { "full" });
    for (epoch, (on, off)) in with_controller.iter().zip(&without_controller).enumerate() {
        println!(
            "{:>10}s {:>16.0}% {:>16.0}%",
            (epoch as u64 + 1) * EPOCH_SECS,
            on * 100.0,
            off * 100.0
        );
        json.row()
            .num("t_after_kill_secs", ((epoch as u64 + 1) * EPOCH_SECS) as f64)
            .num("with_controller", *on)
            .num("without_controller", *off);
    }
    json.write_and_announce();
    let recovered = with_controller.last().copied().unwrap_or(0.0);
    let stranded = without_controller.last().copied().unwrap_or(0.0);
    println!(
        "final epoch: controller {:.0}% vs baseline {:.0}% — the gap is the dead shard",
        recovered * 100.0,
        stranded * 100.0
    );
    if !smoke() {
        assert!(
            recovered >= 0.99,
            "with the controller, delivery must fully recover (got {recovered})"
        );
        assert!(
            stranded < 1.0,
            "without the controller the dead shard must stay dark (got {stranded})"
        );
    }
}

fn bench(c: &mut Criterion) {
    trajectory_table();
    let mut group = c.benchmark_group("ablation_rebalance");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    for (label, on) in [("with-controller", true), ("without-controller", false)] {
        group.bench_with_input(BenchmarkId::new(label, SHARDS), &on, |b, &on| {
            b.iter(|| delivery_trajectory(on));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
