//! Ablation A4: dissemination-strategy sweep. Re-runs the Figure 18
//! experiment (publisher-side invocation time) under each dissemination
//! strategy at 1–32 subscribers.
//!
//! The interesting output is the *virtual* invocation time table printed
//! before the wall-clock samples: DirectFanout grows linearly with the
//! subscriber count (the paper's Figure 18 trend), RendezvousTree stays flat
//! (the publisher sends O(1) copies and the fan-out cost moves to the
//! rendezvous), and Gossip sits in between, governed by its fanout.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ski_rental::harness::{dissemination_comparison, invocation_time_with_dissemination};
use ski_rental::{DisseminationConfig, Flavor, StrategyKind};
use std::time::Duration;

const SUBSCRIBER_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];
const EVENTS: usize = 5;
const SEED: u64 = 2002;

fn virtual_time_table() {
    println!("\nvirtual publisher invocation time (ms/event, mean of {EVENTS} events, seed {SEED})");
    let sweeps: Vec<Vec<(StrategyKind, f64)>> = SUBSCRIBER_COUNTS
        .iter()
        .map(|&subs| dissemination_comparison(Flavor::SrTps, subs, EVENTS, SEED))
        .collect();
    print!("{:<18}", "strategy");
    for subs in SUBSCRIBER_COUNTS {
        print!("{subs:>9}");
    }
    println!();
    for (row, kind) in StrategyKind::ALL.into_iter().enumerate() {
        print!("{:<18}", kind.label());
        for sweep in &sweeps {
            print!("{:>9.1}", sweep[row].1);
        }
        println!();
    }
}

fn bench(c: &mut Criterion) {
    virtual_time_table();
    let mut group = c.benchmark_group("ablation_dissem");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    for kind in StrategyKind::ALL {
        for subs in SUBSCRIBER_COUNTS {
            group.bench_with_input(BenchmarkId::new(kind.label(), subs), &subs, |b, &subs| {
                b.iter(|| {
                    invocation_time_with_dissemination(
                        Flavor::SrTps,
                        DisseminationConfig::of_kind(kind),
                        subs,
                        EVENTS,
                        SEED,
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
