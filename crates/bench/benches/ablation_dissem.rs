//! Ablation A4: dissemination-strategy sweep. Re-runs the Figure 18
//! experiment (publisher-side invocation time) under each dissemination
//! strategy at 1–32 subscribers, plus the sharded rendezvous-mesh series at
//! N ∈ {1, 2, 4, 8} shards.
//!
//! The interesting output is the *virtual* invocation time table printed
//! before the wall-clock samples: DirectFanout grows linearly with the
//! subscriber count (the paper's Figure 18 trend), RendezvousTree stays flat
//! (the publisher sends O(1) copies and the fan-out cost moves to the
//! rendezvous), RendezvousMesh stays flat too *and* splits the rendezvous
//! fan-out across shards, and Gossip sits in between, governed by its
//! fanout. The mesh table shows publisher copies independent of the
//! subscriber count while the per-rendezvous fan-out shrinks ≈ subscribers/N
//! (plus the N-1 mesh links).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ski_rental::harness::{dissemination_comparison, invocation_time_with_dissemination, mesh_fanout_report};
use ski_rental::{DisseminationConfig, Flavor, StrategyKind};
use std::time::Duration;

const SUBSCRIBER_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];
const MESH_SHARDS: [usize; 4] = [1, 2, 4, 8];
const EVENTS: usize = 5;
const SEED: u64 = 2002;

fn virtual_time_table() {
    println!("\nvirtual publisher invocation time (ms/event, mean of {EVENTS} events, seed {SEED})");
    let sweeps: Vec<Vec<(StrategyKind, f64)>> = SUBSCRIBER_COUNTS
        .iter()
        .map(|&subs| dissemination_comparison(Flavor::SrTps, subs, EVENTS, SEED))
        .collect();
    print!("{:<18}", "strategy");
    for subs in SUBSCRIBER_COUNTS {
        print!("{subs:>9}");
    }
    println!();
    for (row, kind) in StrategyKind::ALL.into_iter().enumerate() {
        print!("{:<18}", kind.label());
        for sweep in &sweeps {
            print!("{:>9.1}", sweep[row].1);
        }
        println!();
    }
}

fn mesh_series_table() {
    println!("\nrendezvous-mesh cost structure (16 subscribers unless noted, seed {SEED})");
    println!(
        "{:>7} {:>12} {:>15} {:>17} {:>11} {:>10}",
        "shards", "subscribers", "pub copies", "max rdv fan-out", "max leases", "delivered"
    );
    for &shards in &MESH_SHARDS {
        for &subs in &[16usize, 32] {
            let report = mesh_fanout_report(subs, shards, EVENTS, SEED);
            println!(
                "{:>7} {:>12} {:>15} {:>17} {:>11} {:>9.0}%",
                report.shards,
                report.subscribers,
                report.publisher_copies,
                report.max_rendezvous_fanout,
                report.max_rendezvous_clients,
                report.delivered_ratio * 100.0
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    virtual_time_table();
    mesh_series_table();
    let mut group = c.benchmark_group("ablation_dissem");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    for kind in StrategyKind::ALL {
        for subs in SUBSCRIBER_COUNTS {
            group.bench_with_input(BenchmarkId::new(kind.label(), subs), &subs, |b, &subs| {
                b.iter(|| {
                    invocation_time_with_dissemination(
                        Flavor::SrTps,
                        DisseminationConfig::of_kind(kind),
                        subs,
                        EVENTS,
                        SEED,
                    )
                })
            });
        }
    }
    for shards in MESH_SHARDS {
        group.bench_with_input(BenchmarkId::new("mesh-shards", shards), &shards, |b, &shards| {
            b.iter(|| mesh_fanout_report(16, shards, EVENTS, SEED))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
