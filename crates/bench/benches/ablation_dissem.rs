//! Ablation A4: dissemination-strategy sweep. Re-runs the Figure 18
//! experiment (publisher-side invocation time) under each dissemination
//! strategy at 1–32 subscribers, plus the sharded rendezvous-mesh series at
//! N ∈ {1, 2, 4, 8} shards.
//!
//! The interesting output is the *virtual* invocation time table printed
//! before the wall-clock samples: DirectFanout grows linearly with the
//! subscriber count (the paper's Figure 18 trend), RendezvousTree stays flat
//! (the publisher sends O(1) copies and the fan-out cost moves to the
//! rendezvous), RendezvousMesh stays flat too *and* splits the rendezvous
//! fan-out across shards, and Gossip sits in between, governed by its
//! fanout. The mesh table shows publisher copies independent of the
//! subscriber count while the per-rendezvous fan-out shrinks ≈ subscribers/N
//! (plus the N-1 mesh links).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ski_rental::harness::{
    dissemination_comparison, invocation_time_with_dissemination, mesh_fanout_report,
    trace_latency_comparison,
};
use ski_rental::{DisseminationConfig, Flavor, StrategyKind};
use std::time::Duration;
use tps_bench::report::BenchJson;

const SEED: u64 = 2002;

/// `TPS_BENCH_SMOKE=1` (set by CI) shrinks the sweep so the bench
/// smoke-runs in seconds while still exercising every strategy and the
/// mesh code paths — bench rot shows up as a compile or runtime failure.
fn smoke() -> bool {
    std::env::var("TPS_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn subscriber_counts() -> &'static [usize] {
    if smoke() {
        &[1, 4]
    } else {
        &[1, 2, 4, 8, 16, 32]
    }
}

fn mesh_shards() -> &'static [usize] {
    if smoke() {
        &[1, 2]
    } else {
        &[1, 2, 4, 8]
    }
}

fn events() -> usize {
    if smoke() {
        2
    } else {
        5
    }
}

fn virtual_time_table(json: &mut BenchJson) {
    let events = events();
    println!("\nvirtual publisher invocation time (ms/event, mean of {events} events, seed {SEED})");
    let sweeps: Vec<Vec<(StrategyKind, f64)>> = subscriber_counts()
        .iter()
        .map(|&subs| dissemination_comparison(Flavor::SrTps, subs, events, SEED))
        .collect();
    print!("{:<18}", "strategy");
    for subs in subscriber_counts() {
        print!("{subs:>9}");
    }
    println!();
    for (row, kind) in StrategyKind::ALL.into_iter().enumerate() {
        print!("{:<18}", kind.label());
        for (sweep, &subs) in sweeps.iter().zip(subscriber_counts()) {
            print!("{:>9.1}", sweep[row].1);
            json.row()
                .str("table", "invocation_time")
                .str("strategy", kind.label())
                .num("subscribers", subs as f64)
                .num("ms_per_event", sweep[row].1);
        }
        println!();
    }
}

fn mesh_series_table(json: &mut BenchJson) {
    println!("\nrendezvous-mesh cost structure (16 subscribers unless noted, seed {SEED})");
    println!(
        "{:>7} {:>12} {:>15} {:>17} {:>11} {:>10}",
        "shards", "subscribers", "pub copies", "max rdv fan-out", "max leases", "delivered"
    );
    let sub_series: &[usize] = if smoke() { &[16] } else { &[16, 32] };
    for &shards in mesh_shards() {
        for &subs in sub_series {
            let report = mesh_fanout_report(subs, shards, events(), SEED);
            println!(
                "{:>7} {:>12} {:>15} {:>17} {:>11} {:>9.0}%",
                report.shards,
                report.subscribers,
                report.publisher_copies,
                report.max_rendezvous_fanout,
                report.max_rendezvous_clients,
                report.delivered_ratio * 100.0
            );
            json.row()
                .str("table", "mesh_fanout")
                .num("shards", report.shards as f64)
                .num("subscribers", report.subscribers as f64)
                .num("publisher_copies", report.publisher_copies as f64)
                .num("max_rendezvous_fanout", report.max_rendezvous_fanout as f64)
                .num("max_rendezvous_clients", report.max_rendezvous_clients as f64)
                .num("delivered_ratio", report.delivered_ratio);
        }
    }
}

/// The `trace_latency` series: end-to-end *virtual* delivery latency
/// (publish span → delivery span, one sample per subscriber per event) per
/// strategy, from the causal tracing plane. The complement of the
/// publisher-side table above — DirectFanout's cheap overlay hops give the
/// lowest end-to-end latency at small fan-outs, while the rendezvous
/// strategies trade a relay hop for the flat publisher cost.
fn trace_latency_table(json: &mut BenchJson) {
    let subs = if smoke() { 4 } else { 16 };
    let events = events();
    println!("\nend-to-end virtual delivery latency (ms, {subs} subscribers, {events} events, seed {SEED})");
    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>9}",
        "strategy", "samples", "p50", "p99", "max"
    );
    for (kind, summary) in trace_latency_comparison(Flavor::SrTps, subs, events, SEED) {
        println!(
            "{:<18} {:>9} {:>9.1} {:>9.1} {:>9.1}",
            kind.label(),
            summary.count,
            summary.p50,
            summary.p99,
            summary.max
        );
        json.row()
            .str("table", "trace_latency")
            .str("strategy", kind.label())
            .num("subscribers", subs as f64)
            .num("samples", summary.count as f64)
            .num("p50_ms", summary.p50)
            .num("p99_ms", summary.p99)
            .num("max_ms", summary.max);
    }
}

fn bench(c: &mut Criterion) {
    let mut json = BenchJson::new("ablation_dissem");
    json.meta_num("seed", SEED as f64)
        .meta_str("mode", if smoke() { "smoke" } else { "full" });
    virtual_time_table(&mut json);
    mesh_series_table(&mut json);
    trace_latency_table(&mut json);
    json.write_and_announce();
    let mut group = c.benchmark_group("ablation_dissem");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    for kind in StrategyKind::ALL {
        for &subs in subscriber_counts() {
            group.bench_with_input(BenchmarkId::new(kind.label(), subs), &subs, |b, &subs| {
                b.iter(|| {
                    invocation_time_with_dissemination(
                        Flavor::SrTps,
                        DisseminationConfig::of_kind(kind),
                        subs,
                        events(),
                        SEED,
                    )
                });
            });
        }
    }
    for &shards in mesh_shards() {
        group.bench_with_input(BenchmarkId::new("mesh-shards", shards), &shards, |b, &shards| {
            b.iter(|| mesh_fanout_report(16, shards, events(), SEED));
        });
    }
    let trace_subs = if smoke() { 4 } else { 16 };
    group.bench_with_input(
        BenchmarkId::new("trace-latency", trace_subs),
        &trace_subs,
        |b, &subs| b.iter(|| trace_latency_comparison(Flavor::SrTps, subs, events(), SEED)),
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
