//! Ablation A2: real CPU cost of the TPS typed codec (marshal + unmarshal +
//! structural upcast) versus handling raw bytes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ski_rental::{RentalOffer, SkiRental};

fn bench(c: &mut Criterion) {
    let offer = SkiRental::new("XTremShop", "Salomon", 14.0, 100.0);
    let encoded = tps::codec::to_vec(&offer).unwrap();

    let mut group = c.benchmark_group("ablation_codec");
    group.bench_function("marshal_ski_rental", |b| {
        b.iter(|| tps::codec::to_vec(black_box(&offer)).unwrap());
    });
    group.bench_function("unmarshal_ski_rental", |b| {
        b.iter(|| tps::codec::from_slice::<SkiRental>(black_box(&encoded)).unwrap());
    });
    group.bench_function("structural_upcast_to_rental_offer", |b| {
        b.iter(|| tps::codec::from_slice::<RentalOffer>(black_box(&encoded)).unwrap());
    });
    group.bench_function("raw_bytes_copy_baseline", |b| {
        b.iter(|| black_box(&encoded).to_vec());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
