//! Figure 20: subscriber throughput under flooding publishers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ski_rental::{subscriber_throughput, Flavor};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig20_subscriber_throughput");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    for flavor in [Flavor::JxtaWire, Flavor::SrJxta, Flavor::SrTps] {
        for pubs in [1usize, 4] {
            group.bench_with_input(BenchmarkId::new(flavor.label(), pubs), &pubs, |b, &pubs| {
                b.iter(|| subscriber_throughput(flavor, pubs, 10, 2002));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
