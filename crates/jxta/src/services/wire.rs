//! The wire service: many-to-many pipes.
//!
//! The paper's applications communicate exclusively through the JXTA-WIRE
//! service: a named pipe that any number of publishers send on and any number
//! of subscribers listen on. An output pipe keeps one connection per resolved
//! listener, and propagated copies are de-duplicated by message id at the
//! receivers.
//!
//! *Which* copies go to which next hops is no longer hard-coded: the service
//! owns a pluggable [`DisseminationStrategy`] (see the `dissem` crate) and
//! delegates copy selection to it, both at publish time ([`WireService::plan_publish`])
//! and when a propagated copy arrives ([`WireService::plan_forward`]). The
//! paper-faithful one-unicast-per-listener policy is the default
//! ([`dissem::DirectFanout`]) — the policy whose linear cost Figure 18
//! measures.

use crate::id::{PeerId, PipeId, Uuid};
use crate::services::rendezvous::RendezvousService;
use dissem::{
    DisseminationConfig, DisseminationStrategy, ForwardPlan, NeighborView, PublishPlan, StrategyKind,
};
use rand::RngCore;
use simnet::{SimAddress, SimTime};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// How many message ids each input pipe remembers for duplicate suppression.
pub const DEDUP_WINDOW: usize = 8192;

/// The resolved listeners of one output ("sending") end of a wire pipe.
#[derive(Debug, Clone, Default)]
pub struct OutputPipeState {
    /// Listener peers and the endpoints they were resolved at, in
    /// deterministic (peer-id) order.
    pub listeners: BTreeMap<PeerId, Vec<SimAddress>>,
}

impl OutputPipeState {
    /// Adds or refreshes a listener binding.
    pub fn bind(&mut self, peer: PeerId, endpoints: Vec<SimAddress>) {
        self.listeners.insert(peer, endpoints);
    }

    /// Removes a listener binding (e.g. after repeated delivery failures).
    pub fn unbind(&mut self, peer: PeerId) {
        self.listeners.remove(&peer);
    }

    /// Number of currently bound listeners.
    pub fn len(&self) -> usize {
        self.listeners.len()
    }

    /// Whether no listener is bound.
    pub fn is_empty(&self) -> bool {
        self.listeners.is_empty()
    }
}

/// Per-peer wire service state.
#[derive(Debug)]
pub struct WireService {
    /// Ordered containers (not hash) — both are iterated on paths that feed
    /// event ordering (`input_pipes()`, `forget_peer`), and the determinism
    /// contract requires those walks to be independent of hash seeds.
    input_pipes: BTreeSet<PipeId>,
    output_pipes: BTreeMap<PipeId, OutputPipeState>,
    /// Per-pipe dedup state: lookup/insert only, never iterated — hash is
    /// fine here.
    seen: HashMap<PipeId, (HashSet<Uuid>, VecDeque<Uuid>)>,
    strategy: Box<dyn DisseminationStrategy<PeerId>>,
    messages_sent: u64,
    messages_received: u64,
    duplicates_dropped: u64,
    copies_forwarded: u64,
}

impl Default for WireService {
    fn default() -> Self {
        WireService::with_config(&DisseminationConfig::default())
    }
}

impl WireService {
    /// Creates an empty wire service running the paper-baseline
    /// direct-fan-out strategy.
    pub fn new() -> Self {
        WireService::default()
    }

    /// Creates an empty wire service running the configured dissemination
    /// strategy.
    pub fn with_config(config: &DisseminationConfig) -> Self {
        WireService {
            input_pipes: BTreeSet::new(),
            output_pipes: BTreeMap::new(),
            seen: HashMap::new(),
            strategy: config.build(),
            messages_sent: 0,
            messages_received: 0,
            duplicates_dropped: 0,
            copies_forwarded: 0,
        }
    }

    /// Which dissemination strategy this service runs.
    pub fn strategy_kind(&self) -> StrategyKind {
        self.strategy.kind()
    }

    /// Whether the strategy wants a forwarding decision for duplicate copies
    /// too (see [`DisseminationStrategy::forwards_duplicates`]).
    pub fn forwards_duplicates(&self) -> bool {
        self.strategy.forwards_duplicates()
    }

    /// Asks the strategy where the copies of a fresh publish on `pipe` go.
    ///
    /// The neighbourhood view handed to the strategy is assembled from the
    /// pipe's resolved listeners plus the lease state the rendezvous service
    /// already tracks.
    pub fn plan_publish(
        &mut self,
        pipe: PipeId,
        local: PeerId,
        rendezvous: &RendezvousService,
        ttl_budget: u8,
        rng: &mut dyn RngCore,
    ) -> PublishPlan<PeerId> {
        let view = self.neighbor_view(Some(pipe), local, rendezvous, ttl_budget);
        self.strategy.plan_publish(&view, rng)
    }

    /// Asks the strategy where a copy received from `origin` (with `ttl`
    /// hops remaining) is forwarded.
    pub fn plan_forward(
        &mut self,
        local: PeerId,
        rendezvous: &RendezvousService,
        origin: PeerId,
        ttl: u8,
        rng: &mut dyn RngCore,
    ) -> ForwardPlan<PeerId> {
        let view = self.neighbor_view(None, local, rendezvous, ttl);
        self.strategy.plan_forward(&view, origin, ttl, rng)
    }

    fn neighbor_view(
        &self,
        pipe: Option<PipeId>,
        local: PeerId,
        rendezvous: &RendezvousService,
        ttl_budget: u8,
    ) -> NeighborView<PeerId> {
        let listeners = pipe
            .and_then(|p| self.output_pipes.get(&p))
            .map(|state| state.listeners.keys().copied().collect())
            .unwrap_or_default();
        NeighborView {
            local,
            is_rendezvous: rendezvous.is_rendezvous(),
            rendezvous: rendezvous.connection().map(|c| c.peer),
            clients: rendezvous.client_ids(),
            mesh_links: rendezvous.mesh_link_ids(),
            listeners,
            ttl_budget,
        }
    }

    /// Registers a local input (listening) pipe. Returns `true` if it was not
    /// already registered.
    pub fn create_input_pipe(&mut self, pipe: PipeId) -> bool {
        self.input_pipes.insert(pipe)
    }

    /// Closes a local input pipe.
    pub fn close_input_pipe(&mut self, pipe: PipeId) {
        self.input_pipes.remove(&pipe);
    }

    /// Whether this peer listens on the given pipe.
    pub fn has_input_pipe(&self, pipe: PipeId) -> bool {
        self.input_pipes.contains(&pipe)
    }

    /// All local input pipes, in deterministic (ascending id) order.
    pub fn input_pipes(&self) -> Vec<PipeId> {
        self.input_pipes.iter().copied().collect()
    }

    /// Creates (or returns the existing) output pipe for `pipe`.
    pub fn output_pipe_mut(&mut self, pipe: PipeId) -> &mut OutputPipeState {
        self.output_pipes.entry(pipe).or_default()
    }

    /// The output pipe for `pipe`, if one has been created.
    pub fn output_pipe(&self, pipe: PipeId) -> Option<&OutputPipeState> {
        self.output_pipes.get(&pipe)
    }

    /// Duplicate suppression per input pipe: returns `true` if the message id
    /// has already been delivered on that pipe.
    pub fn seen_before(&mut self, pipe: PipeId, msg_id: Uuid) -> bool {
        let (set, order) = self.seen.entry(pipe).or_default();
        if set.contains(&msg_id) {
            self.duplicates_dropped += 1;
            return true;
        }
        set.insert(msg_id);
        order.push_back(msg_id);
        if order.len() > DEDUP_WINDOW {
            // O(1) eviction; `Vec::remove(0)` here used to shift the whole
            // window on every insert once it filled.
            if let Some(oldest) = order.pop_front() {
                set.remove(&oldest);
            }
        }
        false
    }

    /// Counts an outgoing wire message (one per publish, not per copy).
    pub fn note_sent(&mut self) {
        self.messages_sent += 1;
    }

    /// Counts a delivered (non-duplicate) wire message.
    pub fn note_received(&mut self) {
        self.messages_received += 1;
    }

    /// Counts `copies` forwarded on behalf of other peers (the relay work a
    /// rendezvous reports on the load-report plane).
    pub fn note_forwarded(&mut self, copies: u64) {
        self.copies_forwarded += copies;
    }

    /// Total copies forwarded on behalf of other peers.
    pub fn forwarded(&self) -> u64 {
        self.copies_forwarded
    }

    /// Counters: `(sent, received, duplicates_dropped)`.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.messages_sent,
            self.messages_received,
            self.duplicates_dropped,
        )
    }

    /// Forgets a peer from every output pipe (e.g. when its lease lapsed).
    pub fn forget_peer(&mut self, peer: PeerId) {
        for state in self.output_pipes.values_mut() {
            state.unbind(peer);
        }
    }

    /// Removes dedup state older than needed; cheap housekeeping hook.
    pub fn housekeeping(&mut self, _now: SimTime) {
        // The dedup windows are already bounded; nothing else to do, but the
        // hook keeps the service's interface uniform with the others.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{SimDuration, TransportKind};

    fn addr(host: u32) -> SimAddress {
        SimAddress::new(TransportKind::Tcp, host, 9701)
    }

    #[test]
    fn input_pipes_register_once() {
        let mut wire = WireService::new();
        let pipe = PipeId::derive("ski");
        assert!(wire.create_input_pipe(pipe));
        assert!(!wire.create_input_pipe(pipe));
        assert!(wire.has_input_pipe(pipe));
        assert_eq!(wire.input_pipes(), vec![pipe]);
        wire.close_input_pipe(pipe);
        assert!(!wire.has_input_pipe(pipe));
    }

    #[test]
    fn output_pipe_bindings() {
        let mut wire = WireService::new();
        let pipe = PipeId::derive("ski");
        let sub1 = PeerId::derive("sub1");
        let sub2 = PeerId::derive("sub2");
        wire.output_pipe_mut(pipe).bind(sub1, vec![addr(1)]);
        wire.output_pipe_mut(pipe).bind(sub2, vec![addr(2)]);
        wire.output_pipe_mut(pipe).bind(sub1, vec![addr(3)]); // refresh
        assert_eq!(wire.output_pipe(pipe).unwrap().len(), 2);
        assert_eq!(wire.output_pipe(pipe).unwrap().listeners[&sub1], vec![addr(3)]);

        wire.forget_peer(sub1);
        assert_eq!(wire.output_pipe(pipe).unwrap().len(), 1);
        wire.output_pipe_mut(pipe).unbind(sub2);
        assert!(wire.output_pipe(pipe).unwrap().is_empty());
    }

    #[test]
    fn duplicate_suppression_is_per_pipe() {
        let mut wire = WireService::new();
        let pipe_a = PipeId::derive("a");
        let pipe_b = PipeId::derive("b");
        let msg = Uuid::derive("m");
        assert!(!wire.seen_before(pipe_a, msg));
        assert!(wire.seen_before(pipe_a, msg));
        assert!(!wire.seen_before(pipe_b, msg));
        assert_eq!(wire.counters().2, 1);
    }

    #[test]
    fn dedup_window_is_bounded() {
        let mut wire = WireService::new();
        let pipe = PipeId::derive("a");
        for i in 0..(DEDUP_WINDOW + 5) {
            wire.seen_before(pipe, Uuid::derive(&format!("m{i}")));
        }
        assert!(!wire.seen_before(pipe, Uuid::derive("m0")));
    }

    /// Regression test for the dedup-window eviction edge: two *distinct*
    /// events arriving exactly as the window reaches capacity must evict
    /// only the oldest entries — never each other.
    #[test]
    fn dedup_window_at_capacity_keeps_both_newest_events() {
        let mut wire = WireService::new();
        let pipe = PipeId::derive("a");
        for i in 0..(DEDUP_WINDOW - 1) {
            wire.seen_before(pipe, Uuid::derive(&format!("filler-{i}")));
        }
        let a = Uuid::derive("edge-a");
        let b = Uuid::derive("edge-b");
        // `a` lands exactly at capacity, `b` one past it.
        assert!(!wire.seen_before(pipe, a));
        assert!(!wire.seen_before(pipe, b));
        assert!(wire.seen_before(pipe, a), "a must survive b's arrival");
        assert!(wire.seen_before(pipe, b), "b must survive a's re-check");
        assert!(
            !wire.seen_before(pipe, Uuid::derive("filler-0")),
            "only the oldest filler leaves the window"
        );
        assert!(
            wire.seen_before(pipe, Uuid::derive(&format!("filler-{}", DEDUP_WINDOW - 2))),
            "recent fillers stay"
        );
    }

    /// The dedup window under a mega-scale id stream: 20 000 distinct ids
    /// (well past the 8192 window) must leave memory pinned at exactly
    /// `DEDUP_WINDOW` entries with strictly oldest-first eviction.
    #[test]
    fn dedup_window_holds_at_ten_thousand_plus_ids() {
        const TOTAL: usize = 20_000;
        let mut wire = WireService::new();
        let pipe = PipeId::derive("a");
        for i in 0..TOTAL {
            assert!(!wire.seen_before(pipe, Uuid::derive(&format!("m{i}"))));
        }
        let (set, order) = &wire.seen[&pipe];
        assert_eq!(set.len(), DEDUP_WINDOW, "the id set stays at the bound");
        assert_eq!(order.len(), DEDUP_WINDOW, "the FIFO stays at the bound");
        // Every id in the newest window is still rejected as a duplicate...
        for i in (TOTAL - DEDUP_WINDOW)..TOTAL {
            assert!(wire.seen_before(pipe, Uuid::derive(&format!("m{i}"))));
        }
        // ...and the id just past the window's edge has been forgotten.
        assert!(!wire.seen_before(pipe, Uuid::derive(&format!("m{}", TOTAL - DEDUP_WINDOW - 1))));
    }

    #[test]
    fn counters_accumulate() {
        let mut wire = WireService::new();
        wire.note_sent();
        wire.note_sent();
        wire.note_received();
        assert_eq!(wire.counters(), (2, 1, 0));
    }

    #[test]
    fn default_strategy_is_the_paper_baseline() {
        assert_eq!(WireService::new().strategy_kind(), StrategyKind::DirectFanout);
    }

    #[test]
    fn publish_plans_follow_the_configured_strategy() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let local = PeerId::derive("pub");
        let pipe = PipeId::derive("ski");
        let rdv_peer = PeerId::derive("rdv");

        // An edge peer holding a rendezvous lease, with two bound listeners.
        let mut rendezvous = RendezvousService::new(false, vec![addr(9)]);
        rendezvous.set_connection(rdv_peer, addr(9), SimDuration::from_secs(120), SimTime::ZERO);

        let mut direct = WireService::with_config(&DisseminationConfig::direct_fanout());
        direct
            .output_pipe_mut(pipe)
            .bind(PeerId::derive("sub1"), vec![addr(1)]);
        direct
            .output_pipe_mut(pipe)
            .bind(PeerId::derive("sub2"), vec![addr(2)]);
        let plan = direct.plan_publish(pipe, local, &rendezvous, 3, &mut rng);
        assert_eq!(
            plan.unicast.len(),
            2,
            "direct fan-out unicasts one copy per listener"
        );

        let mut tree = WireService::with_config(&DisseminationConfig::rendezvous_tree());
        tree.output_pipe_mut(pipe)
            .bind(PeerId::derive("sub1"), vec![addr(1)]);
        tree.output_pipe_mut(pipe)
            .bind(PeerId::derive("sub2"), vec![addr(2)]);
        let plan = tree.plan_publish(pipe, local, &rendezvous, 3, &mut rng);
        assert_eq!(
            plan.unicast,
            vec![rdv_peer],
            "the tree publisher sends one copy to its rendezvous"
        );
    }

    #[test]
    fn forward_plans_reuse_rendezvous_lease_state() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let local = PeerId::derive("rdv");
        let origin = PeerId::derive("pub");
        let mut rendezvous = RendezvousService::new(true, vec![]);
        rendezvous.register_client(origin, vec![addr(1)], SimTime::ZERO);
        rendezvous.register_client(PeerId::derive("sub"), vec![addr(2)], SimTime::ZERO);

        let mut wire = WireService::with_config(&DisseminationConfig::rendezvous_tree());
        let plan = wire.plan_forward(local, &rendezvous, origin, 2, &mut rng);
        assert_eq!(
            plan.forward,
            vec![PeerId::derive("sub")],
            "copies fan down the leases, minus the origin"
        );
    }
}
