//! The wire service: many-to-many pipes.
//!
//! The paper's applications communicate exclusively through the JXTA-WIRE
//! service: a named pipe that any number of publishers send on and any number
//! of subscribers listen on. An output pipe keeps one connection per resolved
//! listener — which is why the paper's invocation time grows with the number
//! of subscribers — and propagated copies are de-duplicated by message id at
//! the receivers.

use crate::id::{PeerId, PipeId, Uuid};
use simnet::{SimAddress, SimTime};
use std::collections::{BTreeMap, HashMap, HashSet};

/// How many message ids each input pipe remembers for duplicate suppression.
pub const DEDUP_WINDOW: usize = 8192;

/// The resolved listeners of one output ("sending") end of a wire pipe.
#[derive(Debug, Clone, Default)]
pub struct OutputPipeState {
    /// Listener peers and the endpoints they were resolved at, in
    /// deterministic (peer-id) order.
    pub listeners: BTreeMap<PeerId, Vec<SimAddress>>,
}

impl OutputPipeState {
    /// Adds or refreshes a listener binding.
    pub fn bind(&mut self, peer: PeerId, endpoints: Vec<SimAddress>) {
        self.listeners.insert(peer, endpoints);
    }

    /// Removes a listener binding (e.g. after repeated delivery failures).
    pub fn unbind(&mut self, peer: PeerId) {
        self.listeners.remove(&peer);
    }

    /// Number of currently bound listeners.
    pub fn len(&self) -> usize {
        self.listeners.len()
    }

    /// Whether no listener is bound.
    pub fn is_empty(&self) -> bool {
        self.listeners.is_empty()
    }
}

/// Per-peer wire service state.
#[derive(Debug, Default)]
pub struct WireService {
    input_pipes: HashSet<PipeId>,
    output_pipes: HashMap<PipeId, OutputPipeState>,
    seen: HashMap<PipeId, (HashSet<Uuid>, Vec<Uuid>)>,
    messages_sent: u64,
    messages_received: u64,
    duplicates_dropped: u64,
}

impl WireService {
    /// Creates an empty wire service.
    pub fn new() -> Self {
        WireService::default()
    }

    /// Registers a local input (listening) pipe. Returns `true` if it was not
    /// already registered.
    pub fn create_input_pipe(&mut self, pipe: PipeId) -> bool {
        self.input_pipes.insert(pipe)
    }

    /// Closes a local input pipe.
    pub fn close_input_pipe(&mut self, pipe: PipeId) {
        self.input_pipes.remove(&pipe);
    }

    /// Whether this peer listens on the given pipe.
    pub fn has_input_pipe(&self, pipe: PipeId) -> bool {
        self.input_pipes.contains(&pipe)
    }

    /// All local input pipes, in deterministic order.
    pub fn input_pipes(&self) -> Vec<PipeId> {
        let mut pipes: Vec<_> = self.input_pipes.iter().copied().collect();
        pipes.sort();
        pipes
    }

    /// Creates (or returns the existing) output pipe for `pipe`.
    pub fn output_pipe_mut(&mut self, pipe: PipeId) -> &mut OutputPipeState {
        self.output_pipes.entry(pipe).or_default()
    }

    /// The output pipe for `pipe`, if one has been created.
    pub fn output_pipe(&self, pipe: PipeId) -> Option<&OutputPipeState> {
        self.output_pipes.get(&pipe)
    }

    /// Duplicate suppression per input pipe: returns `true` if the message id
    /// has already been delivered on that pipe.
    pub fn seen_before(&mut self, pipe: PipeId, msg_id: Uuid) -> bool {
        let (set, order) = self.seen.entry(pipe).or_default();
        if set.contains(&msg_id) {
            self.duplicates_dropped += 1;
            return true;
        }
        set.insert(msg_id);
        order.push(msg_id);
        if order.len() > DEDUP_WINDOW {
            let oldest = order.remove(0);
            set.remove(&oldest);
        }
        false
    }

    /// Counts an outgoing wire message (one per publish, not per copy).
    pub fn note_sent(&mut self) {
        self.messages_sent += 1;
    }

    /// Counts a delivered (non-duplicate) wire message.
    pub fn note_received(&mut self) {
        self.messages_received += 1;
    }

    /// Counters: `(sent, received, duplicates_dropped)`.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.messages_sent, self.messages_received, self.duplicates_dropped)
    }

    /// Forgets a peer from every output pipe (e.g. when its lease lapsed).
    pub fn forget_peer(&mut self, peer: PeerId) {
        for state in self.output_pipes.values_mut() {
            state.unbind(peer);
        }
    }

    /// Removes dedup state older than needed; cheap housekeeping hook.
    pub fn housekeeping(&mut self, _now: SimTime) {
        // The dedup windows are already bounded; nothing else to do, but the
        // hook keeps the service's interface uniform with the others.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::TransportKind;

    fn addr(host: u32) -> SimAddress {
        SimAddress::new(TransportKind::Tcp, host, 9701)
    }

    #[test]
    fn input_pipes_register_once() {
        let mut wire = WireService::new();
        let pipe = PipeId::derive("ski");
        assert!(wire.create_input_pipe(pipe));
        assert!(!wire.create_input_pipe(pipe));
        assert!(wire.has_input_pipe(pipe));
        assert_eq!(wire.input_pipes(), vec![pipe]);
        wire.close_input_pipe(pipe);
        assert!(!wire.has_input_pipe(pipe));
    }

    #[test]
    fn output_pipe_bindings() {
        let mut wire = WireService::new();
        let pipe = PipeId::derive("ski");
        let sub1 = PeerId::derive("sub1");
        let sub2 = PeerId::derive("sub2");
        wire.output_pipe_mut(pipe).bind(sub1, vec![addr(1)]);
        wire.output_pipe_mut(pipe).bind(sub2, vec![addr(2)]);
        wire.output_pipe_mut(pipe).bind(sub1, vec![addr(3)]); // refresh
        assert_eq!(wire.output_pipe(pipe).unwrap().len(), 2);
        assert_eq!(wire.output_pipe(pipe).unwrap().listeners[&sub1], vec![addr(3)]);

        wire.forget_peer(sub1);
        assert_eq!(wire.output_pipe(pipe).unwrap().len(), 1);
        wire.output_pipe_mut(pipe).unbind(sub2);
        assert!(wire.output_pipe(pipe).unwrap().is_empty());
    }

    #[test]
    fn duplicate_suppression_is_per_pipe() {
        let mut wire = WireService::new();
        let pipe_a = PipeId::derive("a");
        let pipe_b = PipeId::derive("b");
        let msg = Uuid::derive("m");
        assert!(!wire.seen_before(pipe_a, msg));
        assert!(wire.seen_before(pipe_a, msg));
        assert!(!wire.seen_before(pipe_b, msg));
        assert_eq!(wire.counters().2, 1);
    }

    #[test]
    fn dedup_window_is_bounded() {
        let mut wire = WireService::new();
        let pipe = PipeId::derive("a");
        for i in 0..(DEDUP_WINDOW + 5) {
            wire.seen_before(pipe, Uuid::derive(&format!("m{i}")));
        }
        assert!(!wire.seen_before(pipe, Uuid::derive("m0")));
    }

    #[test]
    fn counters_accumulate() {
        let mut wire = WireService::new();
        wire.note_sent();
        wire.note_sent();
        wire.note_received();
        assert_eq!(wire.counters(), (2, 1, 0));
    }
}
