//! The peer information service (Peer Information Protocol state).
//!
//! Tracks how long the peer has been up and how much traffic it has handled,
//! and answers PIP queries with that information.

use crate::id::PeerId;
use crate::protocols::pip::PeerInfoResponse;
use simnet::SimTime;

/// Uptime and traffic counters for one peer.
#[derive(Debug, Default)]
pub struct PeerInfoService {
    started_at: Option<SimTime>,
    messages_sent: u64,
    messages_received: u64,
    bytes_sent: u64,
    bytes_received: u64,
}

impl PeerInfoService {
    /// Creates the service (not yet started).
    pub fn new() -> Self {
        PeerInfoService::default()
    }

    /// Records the peer's start time.
    pub fn start(&mut self, now: SimTime) {
        self.started_at = Some(now);
    }

    /// Records an outgoing message of `bytes` bytes.
    pub fn note_sent(&mut self, bytes: usize) {
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
    }

    /// Records an incoming message of `bytes` bytes.
    pub fn note_received(&mut self, bytes: usize) {
        self.messages_received += 1;
        self.bytes_received += bytes as u64;
    }

    /// The peer's uptime at `now` (zero if never started).
    pub fn uptime_ms(&self, now: SimTime) -> u64 {
        match self.started_at {
            Some(start) => now.saturating_since(start).as_millis(),
            None => 0,
        }
    }

    /// Builds the PIP response describing this peer at `now`.
    pub fn snapshot(&self, peer: PeerId, now: SimTime) -> PeerInfoResponse {
        PeerInfoResponse {
            peer,
            uptime_ms: self.uptime_ms(now),
            messages_sent: self.messages_sent,
            messages_received: self.messages_received,
            bytes_sent: self.bytes_sent,
            bytes_received: self.bytes_received,
        }
    }

    /// Counters: `(messages_sent, messages_received, bytes_sent, bytes_received)`.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.messages_sent,
            self.messages_received,
            self.bytes_sent,
            self.bytes_received,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uptime_and_counters() {
        let mut info = PeerInfoService::new();
        assert_eq!(info.uptime_ms(SimTime::from_secs(5)), 0);
        info.start(SimTime::from_secs(1));
        info.note_sent(100);
        info.note_sent(50);
        info.note_received(10);
        assert_eq!(info.uptime_ms(SimTime::from_secs(5)), 4_000);
        assert_eq!(info.counters(), (2, 1, 150, 10));
    }

    #[test]
    fn snapshot_reflects_state() {
        let mut info = PeerInfoService::new();
        info.start(SimTime::ZERO);
        info.note_received(42);
        let snap = info.snapshot(PeerId::derive("me"), SimTime::from_millis(500));
        assert_eq!(snap.peer, PeerId::derive("me"));
        assert_eq!(snap.uptime_ms, 500);
        assert_eq!(snap.messages_received, 1);
        assert_eq!(snap.bytes_received, 42);
        assert_eq!(snap.messages_sent, 0);
    }
}
