//! The rendezvous service.
//!
//! Rendezvous peers "keep track of information about peers that are
//! connected" and "are mainly used to dispatch information and discovery
//! queries between peers" (paper, Section 2.1). Ordinary (edge) peers connect
//! to a rendezvous, obtain a lease, renew it periodically, and use the
//! rendezvous to propagate queries, advertisement pushes and wire traffic
//! beyond their own subnet.

use crate::id::{PeerId, Uuid};
use simnet::{SimAddress, SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Default lease granted to connected clients.
pub const DEFAULT_LEASE: SimDuration = SimDuration::from_secs(120);
/// How many ids the duplicate-suppression window remembers.
pub const SEEN_WINDOW: usize = 4096;

/// A client registered with a rendezvous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientLease {
    /// The client's endpoints at connect time.
    pub endpoints: Vec<SimAddress>,
    /// When the lease expires unless renewed.
    pub expires_at: SimTime,
}

/// The rendezvous this (edge) peer is connected to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RendezvousConnection {
    /// The rendezvous peer's id.
    pub peer: PeerId,
    /// The address we talk to it at.
    pub address: SimAddress,
    /// When our lease expires.
    pub lease_expires_at: SimTime,
}

/// Per-peer rendezvous state (both roles: edge client and rendezvous).
#[derive(Debug)]
pub struct RendezvousService {
    is_rendezvous: bool,
    seed_addresses: Vec<SimAddress>,
    clients: BTreeMap<PeerId, ClientLease>,
    mesh_links: BTreeMap<PeerId, SimAddress>,
    connection: Option<RendezvousConnection>,
    seen: HashMap<Uuid, SimTime>,
    seen_order: VecDeque<Uuid>,
    propagated: u64,
    duplicates_dropped: u64,
}

impl RendezvousService {
    /// Creates the service. `is_rendezvous` selects the role; edge peers pass
    /// the addresses of seed rendezvous peers they should connect to.
    pub fn new(is_rendezvous: bool, seed_addresses: Vec<SimAddress>) -> Self {
        RendezvousService {
            is_rendezvous,
            seed_addresses,
            clients: BTreeMap::new(),
            mesh_links: BTreeMap::new(),
            connection: None,
            seen: HashMap::new(),
            seen_order: VecDeque::new(),
            propagated: 0,
            duplicates_dropped: 0,
        }
    }

    /// Whether this peer offers rendezvous service.
    pub fn is_rendezvous(&self) -> bool {
        self.is_rendezvous
    }

    /// The seed rendezvous addresses this edge peer should connect to.
    pub fn seed_addresses(&self) -> &[SimAddress] {
        &self.seed_addresses
    }

    /// Registers (or refreshes) a client lease; returns the lease duration.
    pub fn register_client(&mut self, peer: PeerId, endpoints: Vec<SimAddress>, now: SimTime) -> SimDuration {
        self.clients.insert(
            peer,
            ClientLease {
                endpoints,
                expires_at: now + DEFAULT_LEASE,
            },
        );
        DEFAULT_LEASE
    }

    /// Drops a client lease.
    pub fn unregister_client(&mut self, peer: PeerId) {
        self.clients.remove(&peer);
    }

    /// The currently connected clients (rendezvous role), in deterministic
    /// (peer-id) order.
    pub fn clients(&self) -> Vec<(PeerId, ClientLease)> {
        self.clients.iter().map(|(p, l)| (*p, l.clone())).collect()
    }

    /// The ids of the currently connected clients, in deterministic
    /// (peer-id) order. Cheaper than [`RendezvousService::clients`] when the
    /// leases themselves are not needed (ids are `Copy`, leases clone their
    /// endpoint lists); the lease table is ordered, so this is a plain
    /// collect.
    pub fn client_ids(&self) -> Vec<PeerId> {
        self.clients.keys().copied().collect()
    }

    /// Whether `peer` currently holds a client lease.
    pub fn has_client(&self, peer: PeerId) -> bool {
        self.clients.contains_key(&peer)
    }

    /// The endpoints a connected client registered, if it is connected.
    pub fn client_endpoints(&self, peer: PeerId) -> Option<&[SimAddress]> {
        self.clients.get(&peer).map(|l| l.endpoints.as_slice())
    }

    // ------------------------------------------------------------------
    // rendezvous-to-rendezvous mesh links (sharded deployments)
    // ------------------------------------------------------------------

    /// Records (or refreshes) a mesh link to a fellow rendezvous peer.
    /// Returns `true` the first time the peer is seen. Mesh links are
    /// address-scoped, not leased: they are refreshed by the periodic mesh
    /// hello and only dropped explicitly ([`RendezvousService::remove_mesh_link`]).
    pub fn add_mesh_link(&mut self, peer: PeerId, address: SimAddress) -> bool {
        self.mesh_links.insert(peer, address).is_none()
    }

    /// Drops a mesh link (fault handling, topology change).
    pub fn remove_mesh_link(&mut self, peer: PeerId) {
        self.mesh_links.remove(&peer);
    }

    /// The ids of the rendezvous peers this peer keeps mesh links with, in
    /// deterministic (peer-id) order.
    pub fn mesh_link_ids(&self) -> Vec<PeerId> {
        self.mesh_links.keys().copied().collect()
    }

    /// The address a mesh-linked rendezvous peer is reached at.
    pub fn mesh_link_address(&self, peer: PeerId) -> Option<SimAddress> {
        self.mesh_links.get(&peer).copied()
    }

    /// Whether `peer` is a mesh-linked rendezvous.
    pub fn has_mesh_link(&self, peer: PeerId) -> bool {
        self.mesh_links.contains_key(&peer)
    }

    /// Number of live mesh links.
    pub fn mesh_degree(&self) -> usize {
        self.mesh_links.len()
    }

    /// Removes expired client leases; returns how many were dropped.
    pub fn prune(&mut self, now: SimTime) -> usize {
        let before = self.clients.len();
        self.clients.retain(|_, lease| lease.expires_at > now);
        before - self.clients.len()
    }

    /// Records that this edge peer obtained a lease from a rendezvous.
    pub fn set_connection(&mut self, peer: PeerId, address: SimAddress, lease: SimDuration, now: SimTime) {
        self.connection = Some(RendezvousConnection {
            peer,
            address,
            lease_expires_at: now + lease,
        });
    }

    /// The rendezvous this edge peer is connected to, if any.
    pub fn connection(&self) -> Option<&RendezvousConnection> {
        self.connection.as_ref()
    }

    /// Whether the edge peer's lease needs renewing (expired or expiring
    /// within the given margin).
    pub fn needs_renewal(&self, now: SimTime, margin: SimDuration) -> bool {
        match &self.connection {
            Some(conn) => conn.lease_expires_at <= now + margin,
            None => !self.seed_addresses.is_empty(),
        }
    }

    /// Duplicate suppression for propagated messages: returns `true` when the
    /// id has already been seen (and counts it), `false` the first time.
    pub fn seen_before(&mut self, id: Uuid, now: SimTime) -> bool {
        if self.seen.contains_key(&id) {
            self.duplicates_dropped += 1;
            return true;
        }
        self.seen.insert(id, now);
        self.seen_order.push_back(id);
        if self.seen_order.len() > SEEN_WINDOW {
            // O(1) eviction; `Vec::remove(0)` here used to shift the whole
            // window on every insert once it filled.
            if let Some(oldest) = self.seen_order.pop_front() {
                self.seen.remove(&oldest);
            }
        }
        false
    }

    /// Counts a propagation.
    pub fn note_propagated(&mut self) {
        self.propagated += 1;
    }

    /// Counters: `(propagated, duplicates_dropped, connected_clients)`.
    pub fn counters(&self) -> (u64, u64, usize) {
        (self.propagated, self.duplicates_dropped, self.clients.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::TransportKind;

    fn addr(host: u32) -> SimAddress {
        SimAddress::new(TransportKind::Tcp, host, 9701)
    }

    #[test]
    fn client_leases_register_and_expire() {
        let mut rdv = RendezvousService::new(true, vec![]);
        let lease = rdv.register_client(PeerId::derive("a"), vec![addr(1)], SimTime::ZERO);
        assert_eq!(lease, DEFAULT_LEASE);
        assert!(rdv.has_client(PeerId::derive("a")));
        assert_eq!(rdv.client_endpoints(PeerId::derive("a")).unwrap().len(), 1);
        assert_eq!(rdv.prune(SimTime::from_secs(60)), 0);
        assert_eq!(rdv.prune(SimTime::from_secs(121)), 1);
        assert!(!rdv.has_client(PeerId::derive("a")));
    }

    #[test]
    fn unregister_removes_clients() {
        let mut rdv = RendezvousService::new(true, vec![]);
        rdv.register_client(PeerId::derive("a"), vec![], SimTime::ZERO);
        rdv.unregister_client(PeerId::derive("a"));
        assert!(rdv.clients().is_empty());
    }

    #[test]
    fn edge_peer_renewal_logic() {
        let mut edge = RendezvousService::new(false, vec![addr(9)]);
        // Not connected yet, but has seeds: should try.
        assert!(edge.needs_renewal(SimTime::ZERO, SimDuration::from_secs(10)));
        edge.set_connection(PeerId::derive("rdv"), addr(9), DEFAULT_LEASE, SimTime::ZERO);
        assert!(!edge.needs_renewal(SimTime::from_secs(10), SimDuration::from_secs(10)));
        assert!(edge.needs_renewal(SimTime::from_secs(115), SimDuration::from_secs(10)));
        assert_eq!(edge.connection().unwrap().peer, PeerId::derive("rdv"));
    }

    #[test]
    fn peer_without_seeds_never_renews() {
        let isolated = RendezvousService::new(false, vec![]);
        assert!(!isolated.needs_renewal(SimTime::from_secs(1_000), SimDuration::from_secs(10)));
    }

    #[test]
    fn duplicate_suppression_window() {
        let mut rdv = RendezvousService::new(true, vec![]);
        let id = Uuid::derive("msg-1");
        assert!(!rdv.seen_before(id, SimTime::ZERO));
        assert!(rdv.seen_before(id, SimTime::ZERO));
        let (_, dups, _) = rdv.counters();
        assert_eq!(dups, 1);
    }

    #[test]
    fn seen_window_is_bounded() {
        let mut rdv = RendezvousService::new(true, vec![]);
        for i in 0..(SEEN_WINDOW + 10) {
            rdv.seen_before(Uuid::derive(&format!("m{i}")), SimTime::ZERO);
        }
        // The very first id fell out of the window, so it is "new" again.
        assert!(!rdv.seen_before(Uuid::derive("m0"), SimTime::ZERO));
    }

    #[test]
    fn mesh_links_register_refresh_and_drop() {
        let mut rdv = RendezvousService::new(true, vec![]);
        let peer = PeerId::derive("rdv-2");
        assert!(rdv.add_mesh_link(peer, addr(2)));
        assert!(!rdv.add_mesh_link(peer, addr(3)), "refresh is not a new link");
        assert_eq!(rdv.mesh_link_address(peer), Some(addr(3)));
        assert!(rdv.has_mesh_link(peer));
        assert_eq!(rdv.mesh_degree(), 1);
        assert_eq!(rdv.mesh_link_ids(), vec![peer]);
        rdv.remove_mesh_link(peer);
        assert!(!rdv.has_mesh_link(peer));
        assert_eq!(rdv.mesh_degree(), 0);
    }

    /// Regression test for the seen-window eviction edge: two *distinct* ids
    /// arriving exactly as the window reaches capacity must evict only the
    /// oldest filler entries — never each other.
    #[test]
    fn seen_window_at_capacity_keeps_both_newest_entries() {
        let mut rdv = RendezvousService::new(true, vec![]);
        for i in 0..(SEEN_WINDOW - 1) {
            rdv.seen_before(Uuid::derive(&format!("filler-{i}")), SimTime::ZERO);
        }
        let a = Uuid::derive("edge-a");
        let b = Uuid::derive("edge-b");
        // `a` lands exactly at capacity, `b` one past it (evicting filler-0).
        assert!(!rdv.seen_before(a, SimTime::ZERO));
        assert!(!rdv.seen_before(b, SimTime::ZERO));
        assert!(rdv.seen_before(a, SimTime::ZERO), "a must survive b's arrival");
        assert!(rdv.seen_before(b, SimTime::ZERO), "b must survive a's re-check");
        assert!(
            !rdv.seen_before(Uuid::derive("filler-0"), SimTime::ZERO),
            "only the oldest filler entries leave the window"
        );
        assert!(
            rdv.seen_before(
                Uuid::derive(&format!("filler-{}", SEEN_WINDOW - 2)),
                SimTime::ZERO
            ),
            "recent fillers stay"
        );
    }

    #[test]
    fn clients_listing_is_deterministic() {
        let mut rdv = RendezvousService::new(true, vec![]);
        rdv.register_client(PeerId::derive("b"), vec![], SimTime::ZERO);
        rdv.register_client(PeerId::derive("a"), vec![], SimTime::ZERO);
        let first = rdv.clients();
        let second = rdv.clients();
        assert_eq!(first, second);
        assert_eq!(first.len(), 2);
        let ids: Vec<_> = first.iter().map(|(peer, _)| *peer).collect();
        assert_eq!(
            rdv.client_ids(),
            ids,
            "client_ids matches the full listing's order"
        );
    }
}
