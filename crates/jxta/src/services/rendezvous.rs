//! The rendezvous service.
//!
//! Rendezvous peers "keep track of information about peers that are
//! connected" and "are mainly used to dispatch information and discovery
//! queries between peers" (paper, Section 2.1). Ordinary (edge) peers connect
//! to a rendezvous, obtain a lease, renew it periodically, and use the
//! rendezvous to propagate queries, advertisement pushes and wire traffic
//! beyond their own subnet.

use crate::id::{PeerId, Uuid};
use simnet::{SimAddress, SimDuration, SimTime, TransportKind};
use std::collections::{BTreeMap, HashMap, VecDeque};
use telemetry::LoadReport;

/// Default lease granted to connected clients.
pub const DEFAULT_LEASE: SimDuration = SimDuration::from_secs(120);
/// How many ids the duplicate-suppression window remembers.
pub const SEEN_WINDOW: usize = 4096;

/// A client registered with a rendezvous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientLease {
    /// The client's endpoints at connect time.
    pub endpoints: Vec<SimAddress>,
    /// When the lease expires unless renewed.
    pub expires_at: SimTime,
}

/// The rendezvous this (edge) peer is connected to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RendezvousConnection {
    /// The rendezvous peer's id.
    pub peer: PeerId,
    /// The address we talk to it at.
    pub address: SimAddress,
    /// When our lease expires.
    pub lease_expires_at: SimTime,
}

/// One row of a rendezvous peer's shard load table: the latest
/// [`LoadReport`] gossiped by a fellow rendezvous over a mesh link, with
/// when and where it was heard. Entries survive mesh-link removal so the
/// rebalancing layer can still name (and re-probe) a dead shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLoadEntry {
    /// The reported load.
    pub report: LoadReport,
    /// When the report arrived.
    pub last_heard: SimTime,
    /// The address the reporting rendezvous was reachable at.
    pub address: SimAddress,
}

/// Per-peer rendezvous state (both roles: edge client and rendezvous).
#[derive(Debug)]
pub struct RendezvousService {
    is_rendezvous: bool,
    seed_addresses: Vec<SimAddress>,
    clients: BTreeMap<PeerId, ClientLease>,
    mesh_links: BTreeMap<PeerId, SimAddress>,
    connection: Option<RendezvousConnection>,
    seen: HashMap<Uuid, SimTime>,
    seen_order: VecDeque<Uuid>,
    propagated: u64,
    duplicates_dropped: u64,
    load_table: BTreeMap<PeerId, ShardLoadEntry>,
    client_reports: BTreeMap<PeerId, LoadReport>,
    mesh_hellos_sent: u64,
    failover_attempts: u32,
    renewal_misses: u32,
    connect_pending: bool,
}

impl RendezvousService {
    /// Creates the service. `is_rendezvous` selects the role; edge peers pass
    /// the addresses of seed rendezvous peers they should connect to.
    pub fn new(is_rendezvous: bool, seed_addresses: Vec<SimAddress>) -> Self {
        RendezvousService {
            is_rendezvous,
            seed_addresses,
            clients: BTreeMap::new(),
            mesh_links: BTreeMap::new(),
            connection: None,
            seen: HashMap::new(),
            seen_order: VecDeque::new(),
            propagated: 0,
            duplicates_dropped: 0,
            load_table: BTreeMap::new(),
            client_reports: BTreeMap::new(),
            mesh_hellos_sent: 0,
            failover_attempts: 0,
            renewal_misses: 0,
            connect_pending: false,
        }
    }

    /// Whether this peer offers rendezvous service.
    pub fn is_rendezvous(&self) -> bool {
        self.is_rendezvous
    }

    /// The seed rendezvous addresses this edge peer should connect to.
    pub fn seed_addresses(&self) -> &[SimAddress] {
        &self.seed_addresses
    }

    /// Registers (or refreshes) a client lease; returns the lease duration.
    pub fn register_client(&mut self, peer: PeerId, endpoints: Vec<SimAddress>, now: SimTime) -> SimDuration {
        self.clients.insert(
            peer,
            ClientLease {
                endpoints,
                expires_at: now + DEFAULT_LEASE,
            },
        );
        DEFAULT_LEASE
    }

    /// Drops a client lease.
    pub fn unregister_client(&mut self, peer: PeerId) {
        self.clients.remove(&peer);
    }

    /// The currently connected clients (rendezvous role), in deterministic
    /// (peer-id) order.
    pub fn clients(&self) -> Vec<(PeerId, ClientLease)> {
        self.clients.iter().map(|(p, l)| (*p, l.clone())).collect()
    }

    /// Fills `out` with each client's forwarding target — its first endpoint
    /// matching one of `transports` — in deterministic (peer-id) order,
    /// skipping clients with no usable endpoint. The buffer is cleared
    /// first; callers keep a reusable scratch so the per-event fan-down of a
    /// 100k-client lease table allocates nothing and never clones a lease's
    /// endpoint list (unlike [`RendezvousService::clients`]).
    pub fn collect_client_targets(&self, transports: &[TransportKind], out: &mut Vec<(PeerId, SimAddress)>) {
        out.clear();
        out.extend(self.clients.iter().filter_map(|(peer, lease)| {
            lease
                .endpoints
                .iter()
                .copied()
                .find(|a| transports.contains(&a.transport))
                .map(|addr| (*peer, addr))
        }));
    }

    /// The ids of the currently connected clients, in deterministic
    /// (peer-id) order. Cheaper than [`RendezvousService::clients`] when the
    /// leases themselves are not needed (ids are `Copy`, leases clone their
    /// endpoint lists); the lease table is ordered, so this is a plain
    /// collect.
    pub fn client_ids(&self) -> Vec<PeerId> {
        self.clients.keys().copied().collect()
    }

    /// Whether `peer` currently holds a client lease.
    pub fn has_client(&self, peer: PeerId) -> bool {
        self.clients.contains_key(&peer)
    }

    /// The endpoints a connected client registered, if it is connected.
    pub fn client_endpoints(&self, peer: PeerId) -> Option<&[SimAddress]> {
        self.clients.get(&peer).map(|l| l.endpoints.as_slice())
    }

    // ------------------------------------------------------------------
    // rendezvous-to-rendezvous mesh links (sharded deployments)
    // ------------------------------------------------------------------

    /// Records (or refreshes) a mesh link to a fellow rendezvous peer.
    /// Returns `true` the first time the peer is seen. Mesh links are
    /// address-scoped, not leased: they are refreshed by the periodic mesh
    /// hello and only dropped explicitly ([`RendezvousService::remove_mesh_link`]).
    pub fn add_mesh_link(&mut self, peer: PeerId, address: SimAddress) -> bool {
        self.mesh_links.insert(peer, address).is_none()
    }

    /// Drops a mesh link (fault handling, topology change).
    pub fn remove_mesh_link(&mut self, peer: PeerId) {
        self.mesh_links.remove(&peer);
    }

    /// The ids of the rendezvous peers this peer keeps mesh links with, in
    /// deterministic (peer-id) order.
    pub fn mesh_link_ids(&self) -> Vec<PeerId> {
        self.mesh_links.keys().copied().collect()
    }

    /// The address a mesh-linked rendezvous peer is reached at.
    pub fn mesh_link_address(&self, peer: PeerId) -> Option<SimAddress> {
        self.mesh_links.get(&peer).copied()
    }

    /// Whether `peer` is a mesh-linked rendezvous.
    pub fn has_mesh_link(&self, peer: PeerId) -> bool {
        self.mesh_links.contains_key(&peer)
    }

    /// Number of live mesh links.
    pub fn mesh_degree(&self) -> usize {
        self.mesh_links.len()
    }

    /// Whether a mesh link to the given address is already established —
    /// the housekeeping tick only re-announces to seed addresses that are
    /// *not*, which is what keeps steady-state mesh chatter down.
    pub fn has_mesh_link_at(&self, address: SimAddress) -> bool {
        self.mesh_links.values().any(|&a| a == address)
    }

    /// Counts one outgoing mesh hello (link announcement).
    pub fn note_mesh_hello(&mut self) {
        self.mesh_hellos_sent += 1;
    }

    /// Total mesh hellos sent since boot. The throttling test pins this
    /// down: once every link is established, the counter stops growing.
    pub fn mesh_hellos_sent(&self) -> u64 {
        self.mesh_hellos_sent
    }

    // ------------------------------------------------------------------
    // the load-report plane (rendezvous role)
    // ------------------------------------------------------------------

    /// Records a load report gossiped by a fellow rendezvous (including this
    /// peer's own entry, recorded locally every tick).
    pub fn record_shard_load(&mut self, peer: PeerId, address: SimAddress, report: LoadReport, now: SimTime) {
        self.load_table.insert(
            peer,
            ShardLoadEntry {
                report,
                last_heard: now,
                address,
            },
        );
    }

    /// Records a load report received from a lease client; aggregated into
    /// this shard's own report by [`RendezvousService::own_load`].
    pub fn record_client_load(&mut self, peer: PeerId, report: LoadReport) {
        self.client_reports.insert(peer, report);
    }

    /// The per-shard load table, in deterministic (peer-id) order.
    pub fn load_table(&self) -> Vec<(PeerId, ShardLoadEntry)> {
        self.load_table.iter().map(|(p, e)| (*p, *e)).collect()
    }

    /// The load-table entry for one rendezvous, if it ever reported.
    pub fn shard_load(&self, peer: PeerId) -> Option<&ShardLoadEntry> {
        self.load_table.get(&peer)
    }

    /// This peer's own load report: relay counter and lease fan-out, with
    /// the client-reported figures folded in (mailbox depth aggregates as a
    /// maximum so one backed-up client is visible shard-wide).
    pub fn own_load(&self, mailbox_depth: u32, wire_relayed: u64) -> LoadReport {
        let mut load = LoadReport {
            events_relayed: self.propagated + wire_relayed,
            fan_out: (self.clients.len() + self.mesh_links.len()) as u32,
            mailbox_depth,
            lease_count: self.clients.len() as u32,
        };
        for report in self.client_reports.values() {
            load.mailbox_depth = load.mailbox_depth.max(report.mailbox_depth);
        }
        load
    }

    // ------------------------------------------------------------------
    // edge failover (sharded mesh deployments)
    // ------------------------------------------------------------------

    /// Drops the edge peer's rendezvous connection (its lease expired with
    /// every renewal unanswered — the home rendezvous is gone).
    pub fn clear_connection(&mut self) {
        self.connection = None;
    }

    /// Advances the ring-failover cursor: the next connect attempt targets
    /// the next shard in ring order after the (dead) home. Resets the
    /// renewal-miss count — the misses belonged to the old target.
    pub fn bump_failover(&mut self) {
        self.failover_attempts = self.failover_attempts.wrapping_add(1);
        self.renewal_misses = 0;
    }

    /// Counts one housekeeping tick at which the current home looked dead
    /// (lease fully expired, or a connect left unanswered); returns the
    /// consecutive-miss count. A granted lease resets it — a single lost
    /// datagram on a lossy link must not migrate the edge off its shard.
    pub fn note_renewal_miss(&mut self) -> u32 {
        self.renewal_misses = self.renewal_misses.saturating_add(1);
        self.renewal_misses
    }

    /// How many ring steps past its hash-assigned home shard this edge is
    /// currently leasing (0 = still at home).
    pub fn failover_attempts(&self) -> u32 {
        self.failover_attempts
    }

    /// Marks that a connect request was sent and is awaiting a lease grant.
    pub fn note_connect_sent(&mut self) {
        self.connect_pending = true;
    }

    /// Whether a connect request is still unanswered.
    pub fn connect_pending(&self) -> bool {
        self.connect_pending
    }

    /// Removes expired client leases (and their load reports); returns how
    /// many were dropped.
    pub fn prune(&mut self, now: SimTime) -> usize {
        let before = self.clients.len();
        self.clients.retain(|_, lease| lease.expires_at > now);
        let clients = &self.clients;
        self.client_reports.retain(|peer, _| clients.contains_key(peer));
        before - self.clients.len()
    }

    /// Records that this edge peer obtained a lease from a rendezvous.
    pub fn set_connection(&mut self, peer: PeerId, address: SimAddress, lease: SimDuration, now: SimTime) {
        self.connection = Some(RendezvousConnection {
            peer,
            address,
            lease_expires_at: now + lease,
        });
        // The failover cursor deliberately stays where it is: the current
        // target *is* this edge's home now, original or adopted.
        self.connect_pending = false;
        self.renewal_misses = 0;
    }

    /// The rendezvous this edge peer is connected to, if any.
    pub fn connection(&self) -> Option<&RendezvousConnection> {
        self.connection.as_ref()
    }

    /// Whether the edge peer's lease needs renewing (expired or expiring
    /// within the given margin).
    pub fn needs_renewal(&self, now: SimTime, margin: SimDuration) -> bool {
        match &self.connection {
            Some(conn) => conn.lease_expires_at <= now + margin,
            None => !self.seed_addresses.is_empty(),
        }
    }

    /// Duplicate suppression for propagated messages: returns `true` when the
    /// id has already been seen (and counts it), `false` the first time.
    pub fn seen_before(&mut self, id: Uuid, now: SimTime) -> bool {
        if self.seen.contains_key(&id) {
            self.duplicates_dropped += 1;
            return true;
        }
        self.seen.insert(id, now);
        self.seen_order.push_back(id);
        if self.seen_order.len() > SEEN_WINDOW {
            // O(1) eviction; `Vec::remove(0)` here used to shift the whole
            // window on every insert once it filled.
            if let Some(oldest) = self.seen_order.pop_front() {
                self.seen.remove(&oldest);
            }
        }
        false
    }

    /// Counts a propagation.
    pub fn note_propagated(&mut self) {
        self.propagated += 1;
    }

    /// Counters: `(propagated, duplicates_dropped, connected_clients)`.
    pub fn counters(&self) -> (u64, u64, usize) {
        (self.propagated, self.duplicates_dropped, self.clients.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::TransportKind;

    fn addr(host: u32) -> SimAddress {
        SimAddress::new(TransportKind::Tcp, host, 9701)
    }

    #[test]
    fn client_leases_register_and_expire() {
        let mut rdv = RendezvousService::new(true, vec![]);
        let lease = rdv.register_client(PeerId::derive("a"), vec![addr(1)], SimTime::ZERO);
        assert_eq!(lease, DEFAULT_LEASE);
        assert!(rdv.has_client(PeerId::derive("a")));
        assert_eq!(rdv.client_endpoints(PeerId::derive("a")).unwrap().len(), 1);
        assert_eq!(rdv.prune(SimTime::from_secs(60)), 0);
        assert_eq!(rdv.prune(SimTime::from_secs(121)), 1);
        assert!(!rdv.has_client(PeerId::derive("a")));
    }

    #[test]
    fn unregister_removes_clients() {
        let mut rdv = RendezvousService::new(true, vec![]);
        rdv.register_client(PeerId::derive("a"), vec![], SimTime::ZERO);
        rdv.unregister_client(PeerId::derive("a"));
        assert!(rdv.clients().is_empty());
    }

    #[test]
    fn edge_peer_renewal_logic() {
        let mut edge = RendezvousService::new(false, vec![addr(9)]);
        // Not connected yet, but has seeds: should try.
        assert!(edge.needs_renewal(SimTime::ZERO, SimDuration::from_secs(10)));
        edge.set_connection(PeerId::derive("rdv"), addr(9), DEFAULT_LEASE, SimTime::ZERO);
        assert!(!edge.needs_renewal(SimTime::from_secs(10), SimDuration::from_secs(10)));
        assert!(edge.needs_renewal(SimTime::from_secs(115), SimDuration::from_secs(10)));
        assert_eq!(edge.connection().unwrap().peer, PeerId::derive("rdv"));
    }

    #[test]
    fn peer_without_seeds_never_renews() {
        let isolated = RendezvousService::new(false, vec![]);
        assert!(!isolated.needs_renewal(SimTime::from_secs(1_000), SimDuration::from_secs(10)));
    }

    #[test]
    fn duplicate_suppression_window() {
        let mut rdv = RendezvousService::new(true, vec![]);
        let id = Uuid::derive("msg-1");
        assert!(!rdv.seen_before(id, SimTime::ZERO));
        assert!(rdv.seen_before(id, SimTime::ZERO));
        let (_, dups, _) = rdv.counters();
        assert_eq!(dups, 1);
    }

    #[test]
    fn seen_window_is_bounded() {
        let mut rdv = RendezvousService::new(true, vec![]);
        for i in 0..(SEEN_WINDOW + 10) {
            rdv.seen_before(Uuid::derive(&format!("m{i}")), SimTime::ZERO);
        }
        // The very first id fell out of the window, so it is "new" again.
        assert!(!rdv.seen_before(Uuid::derive("m0"), SimTime::ZERO));
    }

    #[test]
    fn mesh_links_register_refresh_and_drop() {
        let mut rdv = RendezvousService::new(true, vec![]);
        let peer = PeerId::derive("rdv-2");
        assert!(rdv.add_mesh_link(peer, addr(2)));
        assert!(!rdv.add_mesh_link(peer, addr(3)), "refresh is not a new link");
        assert_eq!(rdv.mesh_link_address(peer), Some(addr(3)));
        assert!(rdv.has_mesh_link(peer));
        assert_eq!(rdv.mesh_degree(), 1);
        assert_eq!(rdv.mesh_link_ids(), vec![peer]);
        rdv.remove_mesh_link(peer);
        assert!(!rdv.has_mesh_link(peer));
        assert_eq!(rdv.mesh_degree(), 0);
    }

    /// Regression test for the seen-window eviction edge: two *distinct* ids
    /// arriving exactly as the window reaches capacity must evict only the
    /// oldest filler entries — never each other.
    #[test]
    fn seen_window_at_capacity_keeps_both_newest_entries() {
        let mut rdv = RendezvousService::new(true, vec![]);
        for i in 0..(SEEN_WINDOW - 1) {
            rdv.seen_before(Uuid::derive(&format!("filler-{i}")), SimTime::ZERO);
        }
        let a = Uuid::derive("edge-a");
        let b = Uuid::derive("edge-b");
        // `a` lands exactly at capacity, `b` one past it (evicting filler-0).
        assert!(!rdv.seen_before(a, SimTime::ZERO));
        assert!(!rdv.seen_before(b, SimTime::ZERO));
        assert!(rdv.seen_before(a, SimTime::ZERO), "a must survive b's arrival");
        assert!(rdv.seen_before(b, SimTime::ZERO), "b must survive a's re-check");
        assert!(
            !rdv.seen_before(Uuid::derive("filler-0"), SimTime::ZERO),
            "only the oldest filler entries leave the window"
        );
        assert!(
            rdv.seen_before(
                Uuid::derive(&format!("filler-{}", SEEN_WINDOW - 2)),
                SimTime::ZERO
            ),
            "recent fillers stay"
        );
    }

    /// The seen window under a mega-scale id stream: 20 000 distinct ids
    /// (well past the 4096 window) must leave memory pinned at exactly
    /// `SEEN_WINDOW` entries with strictly oldest-first eviction.
    #[test]
    fn seen_window_holds_at_ten_thousand_plus_ids() {
        const TOTAL: usize = 20_000;
        let mut rdv = RendezvousService::new(true, vec![]);
        for i in 0..TOTAL {
            assert!(!rdv.seen_before(Uuid::derive(&format!("m{i}")), SimTime::ZERO));
        }
        assert_eq!(rdv.seen.len(), SEEN_WINDOW, "the id map stays at the bound");
        assert_eq!(rdv.seen_order.len(), SEEN_WINDOW, "the FIFO stays at the bound");
        // Every id in the newest window is still rejected as a duplicate...
        for i in (TOTAL - SEEN_WINDOW)..TOTAL {
            assert!(rdv.seen_before(Uuid::derive(&format!("m{i}")), SimTime::ZERO));
        }
        // ...and the id just past the window's edge has been forgotten.
        assert!(!rdv.seen_before(
            Uuid::derive(&format!("m{}", TOTAL - SEEN_WINDOW - 1)),
            SimTime::ZERO
        ));
    }

    #[test]
    fn load_table_records_and_lists_deterministically() {
        let mut rdv = RendezvousService::new(true, vec![]);
        let load = LoadReport {
            events_relayed: 5,
            fan_out: 3,
            mailbox_depth: 0,
            lease_count: 3,
        };
        rdv.record_shard_load(PeerId::derive("rdv-b"), addr(2), load, SimTime::from_secs(1));
        rdv.record_shard_load(PeerId::derive("rdv-a"), addr(3), load, SimTime::from_secs(2));
        let table = rdv.load_table();
        assert_eq!(table.len(), 2);
        assert_eq!(table, rdv.load_table(), "listing is stable");
        let entry = rdv.shard_load(PeerId::derive("rdv-b")).unwrap();
        assert_eq!(entry.last_heard, SimTime::from_secs(1));
        assert_eq!(entry.address, addr(2));
        assert_eq!(entry.report.events_relayed, 5);
        assert!(rdv.shard_load(PeerId::derive("unknown")).is_none());
    }

    #[test]
    fn own_load_reflects_leases_links_and_client_reports() {
        let mut rdv = RendezvousService::new(true, vec![]);
        rdv.register_client(PeerId::derive("a"), vec![addr(1)], SimTime::ZERO);
        rdv.register_client(PeerId::derive("b"), vec![addr(2)], SimTime::ZERO);
        rdv.add_mesh_link(PeerId::derive("rdv-2"), addr(9));
        rdv.note_propagated();
        rdv.note_propagated();
        rdv.record_client_load(
            PeerId::derive("a"),
            LoadReport {
                mailbox_depth: 7,
                ..LoadReport::default()
            },
        );
        let load = rdv.own_load(2, 10);
        assert_eq!(load.events_relayed, 12, "propagated + wire relays");
        assert_eq!(load.fan_out, 3, "2 leases + 1 mesh link");
        assert_eq!(load.lease_count, 2);
        assert_eq!(load.mailbox_depth, 7, "worst client mailbox wins");
        // Pruning an expired client drops its report too.
        rdv.prune(SimTime::from_secs(121));
        assert_eq!(rdv.own_load(0, 0).mailbox_depth, 0);
    }

    #[test]
    fn mesh_hello_accounting_and_address_lookup() {
        let mut rdv = RendezvousService::new(true, vec![]);
        assert_eq!(rdv.mesh_hellos_sent(), 0);
        rdv.note_mesh_hello();
        rdv.note_mesh_hello();
        assert_eq!(rdv.mesh_hellos_sent(), 2);
        assert!(!rdv.has_mesh_link_at(addr(2)));
        rdv.add_mesh_link(PeerId::derive("rdv-2"), addr(2));
        assert!(rdv.has_mesh_link_at(addr(2)));
    }

    #[test]
    fn edge_failover_cursor_and_pending_flag() {
        let mut edge = RendezvousService::new(false, vec![addr(9)]);
        assert_eq!(edge.failover_attempts(), 0);
        assert!(!edge.connect_pending());
        edge.note_connect_sent();
        assert!(edge.connect_pending());
        edge.set_connection(PeerId::derive("rdv"), addr(9), DEFAULT_LEASE, SimTime::ZERO);
        assert!(!edge.connect_pending(), "a grant settles the pending connect");
        edge.clear_connection();
        assert!(edge.connection().is_none());
        edge.bump_failover();
        edge.bump_failover();
        assert_eq!(edge.failover_attempts(), 2);
        // A later grant does not rewind the cursor: the adopted home sticks.
        edge.set_connection(PeerId::derive("rdv-2"), addr(2), DEFAULT_LEASE, SimTime::ZERO);
        assert_eq!(edge.failover_attempts(), 2);
    }

    #[test]
    fn clients_listing_is_deterministic() {
        let mut rdv = RendezvousService::new(true, vec![]);
        rdv.register_client(PeerId::derive("b"), vec![], SimTime::ZERO);
        rdv.register_client(PeerId::derive("a"), vec![], SimTime::ZERO);
        let first = rdv.clients();
        let second = rdv.clients();
        assert_eq!(first, second);
        assert_eq!(first.len(), 2);
        let ids: Vec<_> = first.iter().map(|(peer, _)| *peer).collect();
        assert_eq!(
            rdv.client_ids(),
            ids,
            "client_ids matches the full listing's order"
        );
    }
}
