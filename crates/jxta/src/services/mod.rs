//! JXTA services: the building blocks of the service layer.
//!
//! Each service is a plain state machine (no I/O of its own); the
//! [`crate::peer::JxtaPeer`] platform wires them to the network and to each
//! other, mirroring the JXTA service layer of the paper's Section 2.

pub mod discovery;
pub mod membership;
pub mod peerinfo;
pub mod rendezvous;
pub mod wire;

pub use discovery::DiscoveryService;
pub use membership::{MembershipService, MembershipState};
pub use peerinfo::PeerInfoService;
pub use rendezvous::{RendezvousService, ShardLoadEntry};
pub use wire::{OutputPipeState, WireService};
