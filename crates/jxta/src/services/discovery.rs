//! The discovery service: local advertisement cache plus the logic of the
//! Peer Discovery Protocol.
//!
//! `publish` writes to the local cache ("stable storage"); `remotePublish`
//! additionally pushes the advertisement to other peers; remote queries ask
//! other peers to search *their* caches. Incoming advertisements are absorbed
//! into the cache and reported upward exactly once each (newness), which is
//! what the paper's `AdvertisementsFinder.handleNewAdvertisement` relies on.

use crate::adv::{AdvKind, AnyAdvertisement};
use crate::cm::{CacheManager, SearchFilter, DEFAULT_LOCAL_LIFETIME, DEFAULT_REMOTE_LIFETIME};
use crate::protocols::pdp::{DiscoveryQuery, DiscoveryResponse};
use simnet::{SimDuration, SimTime};

/// The per-peer discovery service.
#[derive(Debug)]
pub struct DiscoveryService {
    cache: CacheManager,
    local_lifetime: SimDuration,
    remote_lifetime: SimDuration,
    queries_sent: u64,
    queries_answered: u64,
    responses_absorbed: u64,
}

impl Default for DiscoveryService {
    fn default() -> Self {
        DiscoveryService::new()
    }
}

impl DiscoveryService {
    /// Creates a discovery service with default advertisement lifetimes.
    pub fn new() -> Self {
        DiscoveryService {
            cache: CacheManager::new(),
            local_lifetime: DEFAULT_LOCAL_LIFETIME,
            remote_lifetime: DEFAULT_REMOTE_LIFETIME,
            queries_sent: 0,
            queries_answered: 0,
            responses_absorbed: 0,
        }
    }

    /// Publishes an advertisement to the local cache only.
    ///
    /// Returns `true` if it was not already cached.
    pub fn publish_local(&mut self, adv: AnyAdvertisement, now: SimTime) -> bool {
        self.cache.publish(adv, now, self.local_lifetime)
    }

    /// Searches the local cache (`getLocalAdvertisements`).
    pub fn local(&self, kind: AdvKind, filter: &SearchFilter, now: SimTime) -> Vec<AnyAdvertisement> {
        self.cache.search(kind, filter, now)
    }

    /// Discards cached advertisements (`flushAdvertisements`).
    pub fn flush(&mut self, kind: Option<AdvKind>) {
        self.cache.flush(kind);
    }

    /// Answers a remote discovery query from the local cache, honouring the
    /// query's threshold.
    pub fn answer(&mut self, query: &DiscoveryQuery, now: SimTime) -> Vec<AnyAdvertisement> {
        self.queries_answered += 1;
        let mut hits = self.cache.search(query.kind, &query.filter, now);
        hits.truncate(query.threshold);
        hits
    }

    /// Absorbs advertisements from a discovery response or an unsolicited
    /// push; returns only the ones that were new to this peer.
    pub fn absorb(&mut self, advertisements: Vec<AnyAdvertisement>, now: SimTime) -> Vec<AnyAdvertisement> {
        self.responses_absorbed += 1;
        let mut fresh = Vec::new();
        for adv in advertisements {
            if self.cache.publish(adv.clone(), now, self.remote_lifetime) {
                fresh.push(adv);
            }
        }
        fresh
    }

    /// Absorbs a full discovery response (advertisements plus the responder's
    /// own peer advertisement).
    pub fn absorb_response(&mut self, response: &DiscoveryResponse, now: SimTime) -> Vec<AnyAdvertisement> {
        let mut advs = response.advertisements.clone();
        advs.push(response.responder.clone().into());
        self.absorb(advs, now)
    }

    /// Notes that a remote query was issued (statistics only).
    pub fn note_query_sent(&mut self) {
        self.queries_sent += 1;
    }

    /// Removes expired cache entries.
    pub fn expire(&mut self, now: SimTime) -> usize {
        self.cache.expire(now)
    }

    /// Direct read access to the cache (used by tests and the peer platform).
    pub fn cache(&self) -> &CacheManager {
        &self.cache
    }

    /// Counters: `(queries_sent, queries_answered, responses_absorbed)`.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.queries_sent, self.queries_answered, self.responses_absorbed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adv::{PeerAdvertisement, PeerGroupAdvertisement};
    use crate::id::{PeerGroupId, PeerId};

    fn group(name: &str) -> AnyAdvertisement {
        PeerGroupAdvertisement::new(PeerGroupId::derive(name), name, PeerId::derive("creator")).into()
    }

    fn requester() -> PeerAdvertisement {
        PeerAdvertisement::new(PeerId::derive("req"), "req", PeerGroupId::world())
    }

    #[test]
    fn answer_honours_threshold_and_filter() {
        let mut ds = DiscoveryService::new();
        let now = SimTime::ZERO;
        for i in 0..10 {
            ds.publish_local(group(&format!("ps-Group{i}")), now);
        }
        ds.publish_local(group("unrelated"), now);
        let query = DiscoveryQuery::new(AdvKind::Group, SearchFilter::by_name("ps-*"), 4, requester());
        let hits = ds.answer(&query, now);
        assert_eq!(hits.len(), 4);
        assert!(hits.iter().all(|a| a.display_name().starts_with("ps-")));
    }

    #[test]
    fn absorb_reports_only_new_advertisements() {
        let mut ds = DiscoveryService::new();
        let now = SimTime::ZERO;
        let fresh = ds.absorb(vec![group("a"), group("b")], now);
        assert_eq!(fresh.len(), 2);
        let again = ds.absorb(vec![group("a"), group("c")], now);
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].display_name(), "c");
    }

    #[test]
    fn absorb_response_includes_responder_peer_adv() {
        let mut ds = DiscoveryService::new();
        let now = SimTime::ZERO;
        let response = DiscoveryResponse::new(AdvKind::Group, vec![group("g")], requester());
        let fresh = ds.absorb_response(&response, now);
        assert_eq!(fresh.len(), 2);
        assert_eq!(ds.local(AdvKind::Peer, &SearchFilter::any(), now).len(), 1);
    }

    #[test]
    fn flush_and_expire() {
        let mut ds = DiscoveryService::new();
        let now = SimTime::ZERO;
        ds.publish_local(group("a"), now);
        ds.flush(Some(AdvKind::Group));
        assert!(ds.local(AdvKind::Group, &SearchFilter::any(), now).is_empty());
        ds.publish_local(group("b"), now);
        let far_future = SimTime::from_secs(100_000);
        assert_eq!(ds.expire(far_future), 1);
    }

    #[test]
    fn counters_track_activity() {
        let mut ds = DiscoveryService::new();
        ds.note_query_sent();
        ds.answer(
            &DiscoveryQuery::new(AdvKind::Adv, SearchFilter::any(), 1, requester()),
            SimTime::ZERO,
        );
        ds.absorb(vec![], SimTime::ZERO);
        assert_eq!(ds.counters(), (1, 1, 1));
    }
}
