//! The membership service (Peer Membership Protocol state).
//!
//! Each peer tracks the groups it has joined; peers that *created* a group
//! act as its membership authority and evaluate apply/join requests against
//! the group's [`MembershipPolicy`].

use crate::adv::{MembershipPolicy, PeerGroupAdvertisement};
use crate::id::{PeerGroupId, PeerId};
use crate::protocols::pmp::{Credential, CredentialRequirement, MembershipVerdict};
use simnet::SimTime;
use std::collections::BTreeMap;

/// This peer's standing in one group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipState {
    /// An apply has been sent; requirements not yet known.
    Applied,
    /// A join has been sent; verdict not yet received.
    Joining,
    /// Joined.
    Member,
    /// The authority rejected us.
    Rejected,
}

/// Per-peer membership state, for both the applicant and the authority role.
#[derive(Debug, Default)]
pub struct MembershipService {
    /// Groups this peer administers (it created them), with their policies.
    /// Ordered maps throughout: `groups()` walks these, and its result feeds
    /// protocol traffic.
    authored: BTreeMap<PeerGroupId, MembershipPolicy>,
    /// Members admitted by this peer, per authored group.
    admitted: BTreeMap<PeerGroupId, Vec<PeerId>>,
    /// This peer's own standing in groups it applied to.
    memberships: BTreeMap<PeerGroupId, (MembershipState, SimTime)>,
}

impl MembershipService {
    /// Creates an empty membership service.
    pub fn new() -> Self {
        MembershipService::default()
    }

    /// Registers a group this peer created and will act as authority for.
    pub fn author_group(&mut self, adv: &PeerGroupAdvertisement) {
        self.authored.insert(adv.group_id, adv.membership.clone());
        self.admitted.entry(adv.group_id).or_default();
    }

    /// Whether this peer is the membership authority for `group`.
    pub fn is_authority_for(&self, group: PeerGroupId) -> bool {
        self.authored.contains_key(&group)
    }

    /// The credential requirements of an authored group.
    pub fn requirements(&self, group: PeerGroupId) -> Option<CredentialRequirement> {
        self.authored.get(&group).map(|policy| match policy {
            MembershipPolicy::Open => CredentialRequirement::None,
            MembershipPolicy::Password(_) => CredentialRequirement::Password,
        })
    }

    /// Evaluates a join request against an authored group's policy.
    pub fn evaluate_join(
        &mut self,
        group: PeerGroupId,
        applicant: PeerId,
        credential: &Credential,
    ) -> MembershipVerdict {
        let Some(policy) = self.authored.get(&group) else {
            return MembershipVerdict::Rejected("not the membership authority for this group".to_owned());
        };
        let ok = match (policy, credential) {
            (MembershipPolicy::Open, _) => true,
            (MembershipPolicy::Password(expected), Credential::Password(given)) => expected == given,
            (MembershipPolicy::Password(_), Credential::None) => false,
        };
        if ok {
            let members = self.admitted.entry(group).or_default();
            if !members.contains(&applicant) {
                members.push(applicant);
            }
            MembershipVerdict::Accepted
        } else {
            MembershipVerdict::Rejected("invalid credential".to_owned())
        }
    }

    /// Removes an admitted member (leave).
    pub fn evaluate_leave(&mut self, group: PeerGroupId, applicant: PeerId) -> MembershipVerdict {
        if let Some(members) = self.admitted.get_mut(&group) {
            members.retain(|m| *m != applicant);
        }
        MembershipVerdict::Left
    }

    /// The members this authority has admitted to `group`.
    pub fn admitted(&self, group: PeerGroupId) -> &[PeerId] {
        self.admitted.get(&group).map_or(&[], Vec::as_slice)
    }

    /// Records this peer's own standing in a group it applied to.
    pub fn set_state(&mut self, group: PeerGroupId, state: MembershipState, now: SimTime) {
        self.memberships.insert(group, (state, now));
    }

    /// This peer's standing in a group, if it ever applied.
    pub fn state(&self, group: PeerGroupId) -> Option<MembershipState> {
        self.memberships.get(&group).map(|(s, _)| *s)
    }

    /// Whether this peer is a member of `group` (either it joined, or it
    /// authored the group).
    pub fn is_member(&self, group: PeerGroupId) -> bool {
        self.is_authority_for(group) || matches!(self.state(group), Some(MembershipState::Member))
    }

    /// The groups this peer belongs to (authored or joined), in
    /// deterministic order.
    pub fn groups(&self) -> Vec<PeerGroupId> {
        let mut groups: Vec<PeerGroupId> = self
            .authored
            .keys()
            .copied()
            .chain(
                self.memberships
                    .iter()
                    .filter(|(_, (s, _))| *s == MembershipState::Member)
                    .map(|(g, _)| *g),
            )
            .collect();
        groups.sort();
        groups.dedup();
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_group(name: &str) -> PeerGroupAdvertisement {
        PeerGroupAdvertisement::new(PeerGroupId::derive(name), name, PeerId::derive("author"))
    }

    fn password_group(name: &str, pw: &str) -> PeerGroupAdvertisement {
        open_group(name).with_membership(MembershipPolicy::Password(pw.to_owned()))
    }

    #[test]
    fn open_groups_admit_anyone() {
        let mut ms = MembershipService::new();
        let adv = open_group("g");
        ms.author_group(&adv);
        assert!(ms.is_authority_for(adv.group_id));
        assert_eq!(ms.requirements(adv.group_id), Some(CredentialRequirement::None));
        let verdict = ms.evaluate_join(adv.group_id, PeerId::derive("x"), &Credential::None);
        assert_eq!(verdict, MembershipVerdict::Accepted);
        assert_eq!(ms.admitted(adv.group_id).len(), 1);
    }

    #[test]
    fn password_groups_check_credentials() {
        let mut ms = MembershipService::new();
        let adv = password_group("secret", "hunter2");
        ms.author_group(&adv);
        assert_eq!(
            ms.requirements(adv.group_id),
            Some(CredentialRequirement::Password)
        );
        let denied = ms.evaluate_join(
            adv.group_id,
            PeerId::derive("x"),
            &Credential::Password("wrong".into()),
        );
        assert!(matches!(denied, MembershipVerdict::Rejected(_)));
        let denied = ms.evaluate_join(adv.group_id, PeerId::derive("x"), &Credential::None);
        assert!(matches!(denied, MembershipVerdict::Rejected(_)));
        let ok = ms.evaluate_join(
            adv.group_id,
            PeerId::derive("x"),
            &Credential::Password("hunter2".into()),
        );
        assert_eq!(ok, MembershipVerdict::Accepted);
    }

    #[test]
    fn join_is_idempotent_and_leave_removes() {
        let mut ms = MembershipService::new();
        let adv = open_group("g");
        ms.author_group(&adv);
        let peer = PeerId::derive("x");
        ms.evaluate_join(adv.group_id, peer, &Credential::None);
        ms.evaluate_join(adv.group_id, peer, &Credential::None);
        assert_eq!(ms.admitted(adv.group_id).len(), 1);
        assert_eq!(ms.evaluate_leave(adv.group_id, peer), MembershipVerdict::Left);
        assert!(ms.admitted(adv.group_id).is_empty());
    }

    #[test]
    fn non_authority_rejects_joins() {
        let mut ms = MembershipService::new();
        let verdict = ms.evaluate_join(
            PeerGroupId::derive("unknown"),
            PeerId::derive("x"),
            &Credential::None,
        );
        assert!(matches!(verdict, MembershipVerdict::Rejected(_)));
    }

    #[test]
    fn own_membership_state_tracking() {
        let mut ms = MembershipService::new();
        let group = PeerGroupId::derive("g");
        assert!(!ms.is_member(group));
        ms.set_state(group, MembershipState::Applied, SimTime::ZERO);
        assert_eq!(ms.state(group), Some(MembershipState::Applied));
        ms.set_state(group, MembershipState::Member, SimTime::from_secs(1));
        assert!(ms.is_member(group));
        assert_eq!(ms.groups(), vec![group]);
    }

    #[test]
    fn authored_groups_count_as_memberships() {
        let mut ms = MembershipService::new();
        let adv = open_group("mine");
        ms.author_group(&adv);
        assert!(ms.is_member(adv.group_id));
        assert_eq!(ms.groups(), vec![adv.group_id]);
    }
}
