//! JXTA identifiers.
//!
//! Every JXTA resource — peer, peer group, pipe, module, codat — is named by a
//! UUID-flavoured identifier rendered as a `urn:jxta:` URN. Identity is
//! deliberately divorced from network addresses: a peer keeps its id across
//! reboots, DHCP changes and network moves, and the Pipe Binding Protocol
//! re-associates pipes with the peer's *current* addresses.

use rand::Rng;
use std::fmt;
use std::str::FromStr;

/// A 128-bit universally unique identifier.
///
/// Generation is driven by the caller-provided RNG so that simulations remain
/// deterministic for a given seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Uuid(pub u128);

impl Uuid {
    /// The nil UUID.
    pub const NIL: Uuid = Uuid(0);

    /// Generates a fresh UUID from `rng`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Uuid(rng.gen())
    }

    /// Derives a UUID deterministically from a string seed (FNV-1a folded to
    /// 128 bits). Used for well-known ids such as the World peer group.
    pub fn derive(seed: &str) -> Self {
        let mut hash_lo: u64 = 0xcbf2_9ce4_8422_2325;
        let mut hash_hi: u64 = 0x6c62_272e_07bb_0142;
        for byte in seed.bytes() {
            hash_lo ^= byte as u64;
            hash_lo = hash_lo.wrapping_mul(0x0000_0100_0000_01B3);
            hash_hi ^= (byte as u64).rotate_left(17);
            hash_hi = hash_hi.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Uuid(((hash_hi as u128) << 64) | hash_lo as u128)
    }

    /// Renders the UUID as 32 lowercase hex digits.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses 32 hex digits.
    pub fn from_hex(s: &str) -> Result<Self, ParseIdError> {
        if s.len() != 32 {
            return Err(ParseIdError(s.to_owned()));
        }
        u128::from_str_radix(s, 16)
            .map(Uuid)
            .map_err(|_| ParseIdError(s.to_owned()))
    }
}

impl fmt::Display for Uuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Error returned when an id string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIdError(String);

impl fmt::Display for ParseIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid jxta id: {}", self.0)
    }
}

impl std::error::Error for ParseIdError {}

macro_rules! jxta_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub Uuid);

        impl $name {
            /// The URN prefix used when rendering this id kind.
            pub const URN_TAG: &'static str = $tag;

            /// Generates a fresh id from `rng`.
            pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
                $name(Uuid::generate(rng))
            }

            /// Derives a well-known id deterministically from a seed string.
            pub fn derive(seed: &str) -> Self {
                $name(Uuid::derive(concat!($tag, ":").to_owned().as_str()))
                    .mixed_with(seed)
            }

            fn mixed_with(self, seed: &str) -> Self {
                let mixed = Uuid::derive(&format!("{}:{}", self.0.to_hex(), seed));
                $name(mixed)
            }

            /// The underlying UUID.
            pub const fn uuid(self) -> Uuid {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "urn:jxta:{}-{}", $tag, self.0.to_hex())
            }
        }

        impl FromStr for $name {
            type Err = ParseIdError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                let err = || ParseIdError(s.to_owned());
                let rest = s.strip_prefix("urn:jxta:").ok_or_else(err)?;
                let (tag, hex) = rest.split_once('-').ok_or_else(err)?;
                if tag != $tag {
                    return Err(err());
                }
                Uuid::from_hex(hex).map($name).map_err(|_| err())
            }
        }
    };
}

jxta_id! {
    /// Identifies a peer (a device running JXTA).
    PeerId, "peer"
}
jxta_id! {
    /// Identifies a peer group.
    PeerGroupId, "group"
}
jxta_id! {
    /// Identifies a pipe (a virtual communication channel).
    PipeId, "pipe"
}
jxta_id! {
    /// Identifies a module / service implementation.
    ModuleId, "module"
}
jxta_id! {
    /// Identifies a codat (code-and-data unit shared in a group).
    CodatId, "codat"
}

impl PeerGroupId {
    /// The well-known "World" peer group that every peer implicitly belongs
    /// to; discovery of other groups starts here.
    pub fn world() -> Self {
        PeerGroupId::derive("jxta-world-group")
    }

    /// The well-known default "Net" peer group.
    pub fn net() -> Self {
        PeerGroupId::derive("jxta-net-group")
    }
}

/// A query identifier used by the resolver to correlate responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct QueryId(pub u64);

impl QueryId {
    /// Returns the next query id after this one.
    pub fn next(self) -> QueryId {
        QueryId(self.0.wrapping_add(1))
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uuid_hex_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let id = Uuid::generate(&mut rng);
        assert_eq!(Uuid::from_hex(&id.to_hex()).unwrap(), id);
        assert_eq!(id.to_hex().len(), 32);
    }

    #[test]
    fn derive_is_deterministic_and_distinct() {
        assert_eq!(Uuid::derive("abc"), Uuid::derive("abc"));
        assert_ne!(Uuid::derive("abc"), Uuid::derive("abd"));
        assert_eq!(PeerGroupId::world(), PeerGroupId::world());
        assert_ne!(PeerGroupId::world(), PeerGroupId::net());
    }

    #[test]
    fn id_display_and_parse_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let peer = PeerId::generate(&mut rng);
        let parsed: PeerId = peer.to_string().parse().unwrap();
        assert_eq!(parsed, peer);
        assert!(peer.to_string().starts_with("urn:jxta:peer-"));

        let pipe = PipeId::generate(&mut rng);
        let parsed: PipeId = pipe.to_string().parse().unwrap();
        assert_eq!(parsed, pipe);
    }

    #[test]
    fn parse_rejects_wrong_tag_and_garbage() {
        let mut rng = StdRng::seed_from_u64(3);
        let peer = PeerId::generate(&mut rng);
        assert!(peer.to_string().parse::<PipeId>().is_err());
        assert!("urn:jxta:peer-zz".parse::<PeerId>().is_err());
        assert!("not-a-urn".parse::<PeerId>().is_err());
        assert!("urn:jxta:peernohex".parse::<PeerId>().is_err());
    }

    #[test]
    fn different_kinds_derive_different_ids_for_same_seed() {
        assert_ne!(PeerId::derive("x").uuid(), PipeId::derive("x").uuid());
    }

    #[test]
    fn query_id_increments() {
        let q = QueryId(41);
        assert_eq!(q.next(), QueryId(42));
        assert_eq!(q.next().to_string(), "query-42");
    }

    #[test]
    fn generated_ids_are_unique_in_practice() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(PeerId::generate(&mut rng)));
        }
    }
}
