//! Upcalls from the JXTA platform to the application (or TPS) layer.
//!
//! The peer platform is written sans-I/O-callback style: handling a datagram
//! or timer produces a list of [`JxtaEvent`]s that the owning node drains with
//! [`crate::peer::JxtaPeer::take_events`] and interprets — the Rust equivalent
//! of JXTA's listener interfaces (`DiscoveryListener`, pipe `InputStream`s,
//! rendezvous events, ...).

use crate::adv::{AnyAdvertisement, RouteAdvertisement};
use crate::id::{PeerGroupId, PeerId, PipeId};
use crate::message::Message;
use crate::protocols::pip::PeerInfoResponse;
use crate::protocols::pmp::MembershipVerdict;

/// An event produced by the JXTA platform for its application layer.
#[derive(Debug, Clone, PartialEq)]
pub enum JxtaEvent {
    /// A new (previously unseen) advertisement was learned, through discovery
    /// responses, pushes or rendezvous connections.
    AdvertisementDiscovered {
        /// The advertisement.
        adv: AnyAdvertisement,
        /// The peer it was learned from.
        source: PeerId,
    },
    /// A message arrived on a wire (many-to-many) pipe this peer listens on.
    WireMessageReceived {
        /// The pipe the message arrived on.
        pipe_id: PipeId,
        /// The peer that originally published the message.
        src_peer: PeerId,
        /// The application message.
        message: Message,
    },
    /// A pipe-binding response arrived: `peer` hosts an input pipe for
    /// `pipe_id` and has been bound to the local output pipe.
    PipeResolved {
        /// The pipe that was resolved.
        pipe_id: PipeId,
        /// The listening peer.
        peer: PeerId,
    },
    /// This peer obtained (or renewed) a lease with a rendezvous.
    RendezvousConnected {
        /// The rendezvous peer.
        rdv: PeerId,
    },
    /// This rendezvous established a new mesh link to a fellow rendezvous
    /// (sharded rendezvous-mesh deployments).
    MeshLinked {
        /// The newly linked rendezvous peer.
        rdv: PeerId,
    },
    /// The rebalancing controller declared a fellow rendezvous dead: its
    /// load reports stopped for the configured number of report intervals.
    /// The local rendezvous drops the mesh link; the dead shard's edges
    /// re-lease with the ring adopter as their leases expire.
    ShardDead {
        /// The rendezvous whose shard went dark.
        rdv: PeerId,
    },
    /// A load report arrived from a rendezvous previously declared dead —
    /// its shard is serving again (the mesh link heals via the next hello).
    ShardRevived {
        /// The rendezvous that came back.
        rdv: PeerId,
    },
    /// A membership response arrived for a group this peer applied to.
    MembershipResult {
        /// The group concerned.
        group: PeerGroupId,
        /// The verdict.
        verdict: MembershipVerdict,
    },
    /// A Peer Information Protocol response arrived.
    PeerInfoReceived {
        /// The reported status.
        info: PeerInfoResponse,
    },
    /// An Endpoint Routing Protocol response arrived and was recorded.
    RouteLearned {
        /// The learned route.
        route: RouteAdvertisement,
    },
}

impl JxtaEvent {
    /// Convenience predicate used by application event loops.
    pub fn is_wire_message(&self) -> bool {
        matches!(self, JxtaEvent::WireMessageReceived { .. })
    }

    /// Convenience predicate used by application event loops.
    pub fn is_advertisement(&self) -> bool {
        matches!(self, JxtaEvent::AdvertisementDiscovered { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_classify_events() {
        let adv_event = JxtaEvent::RendezvousConnected {
            rdv: PeerId::derive("r"),
        };
        assert!(!adv_event.is_wire_message());
        assert!(!adv_event.is_advertisement());
        let wire = JxtaEvent::WireMessageReceived {
            pipe_id: PipeId::derive("p"),
            src_peer: PeerId::derive("s"),
            message: Message::new(),
        };
        assert!(wire.is_wire_message());
    }
}
