//! JXTA messages.
//!
//! A JXTA message is an ordered collection of named elements, each carrying a
//! MIME type and an opaque body. Protocols add their own elements (a resolver
//! query, a wire header, a serialized event ...) and messages are copied with
//! [`Message::dup`] before being handed to an output pipe, exactly as the
//! paper's `WireServiceFinder.publish()` does (`myOutputPipe.send(msg.dup())`).

use bytes::Bytes;
use std::fmt;

/// A single named element of a [`Message`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageElement {
    /// The namespace of the element (`"jxta"` for protocol elements,
    /// application-chosen otherwise).
    pub namespace: String,
    /// The element name.
    pub name: String,
    /// The MIME type of the body.
    pub mime_type: String,
    /// The element body.
    pub body: Bytes,
}

impl MessageElement {
    /// Creates an element with an explicit MIME type.
    pub fn new(
        namespace: impl Into<String>,
        name: impl Into<String>,
        mime_type: impl Into<String>,
        body: impl Into<Bytes>,
    ) -> Self {
        MessageElement {
            namespace: namespace.into(),
            name: name.into(),
            mime_type: mime_type.into(),
            body: body.into(),
        }
    }

    /// Creates a UTF-8 text element (`text/plain`).
    pub fn text(namespace: impl Into<String>, name: impl Into<String>, body: impl Into<String>) -> Self {
        MessageElement::new(
            namespace,
            name,
            "text/plain",
            Bytes::from(body.into().into_bytes()),
        )
    }

    /// Creates an XML element (`text/xml`).
    pub fn xml(namespace: impl Into<String>, name: impl Into<String>, body: impl Into<String>) -> Self {
        MessageElement::new(namespace, name, "text/xml", Bytes::from(body.into().into_bytes()))
    }

    /// Creates a binary element (`application/octet-stream`).
    pub fn binary(namespace: impl Into<String>, name: impl Into<String>, body: impl Into<Bytes>) -> Self {
        MessageElement::new(namespace, name, "application/octet-stream", body)
    }

    /// The body interpreted as UTF-8 text (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The size of the element when encoded on the wire.
    pub fn wire_size(&self) -> usize {
        // 3 length-prefixed strings + 1 length-prefixed body + fixed header
        self.namespace.len() + self.name.len() + self.mime_type.len() + self.body.len() + 16
    }
}

/// A JXTA message: an ordered list of named [`MessageElement`]s.
///
/// # Examples
///
/// ```
/// use jxta::message::{Message, MessageElement};
///
/// let mut msg = Message::new();
/// msg.add(MessageElement::text("jxta", "SrcPeer", "urn:jxta:peer-1234"));
/// msg.add(MessageElement::binary("app", "payload", vec![1u8, 2, 3]));
/// assert_eq!(msg.element("jxta", "SrcPeer").unwrap().body_text(), "urn:jxta:peer-1234");
///
/// let copy = msg.dup();
/// let bytes = copy.to_bytes();
/// let decoded = Message::from_bytes(&bytes).unwrap();
/// assert_eq!(decoded, msg);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Message {
    elements: Vec<MessageElement>,
}

impl Message {
    /// Creates an empty message.
    pub fn new() -> Self {
        Message { elements: Vec::new() }
    }

    /// Adds an element to the end of the message.
    pub fn add(&mut self, element: MessageElement) -> &mut Self {
        self.elements.push(element);
        self
    }

    /// Builder-style [`Message::add`].
    pub fn with(mut self, element: MessageElement) -> Self {
        self.elements.push(element);
        self
    }

    /// Removes all elements with the given namespace and name, returning how
    /// many were removed.
    pub fn remove(&mut self, namespace: &str, name: &str) -> usize {
        let before = self.elements.len();
        self.elements
            .retain(|e| !(e.namespace == namespace && e.name == name));
        before - self.elements.len()
    }

    /// The first element matching namespace and name.
    pub fn element(&self, namespace: &str, name: &str) -> Option<&MessageElement> {
        self.elements
            .iter()
            .find(|e| e.namespace == namespace && e.name == name)
    }

    /// The text body of the first matching element, if present.
    pub fn element_text(&self, namespace: &str, name: &str) -> Option<String> {
        self.element(namespace, name).map(MessageElement::body_text)
    }

    /// All elements, in order.
    pub fn elements(&self) -> &[MessageElement] {
        &self.elements
    }

    /// The number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the message has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// A deep copy of the message (JXTA's `Message.dup()`); elements share
    /// their immutable bodies cheaply.
    pub fn dup(&self) -> Message {
        self.clone()
    }

    /// The total encoded size in bytes.
    pub fn wire_size(&self) -> usize {
        8 + self.elements.iter().map(MessageElement::wire_size).sum::<usize>()
    }

    /// Encodes the message to its wire representation.
    pub fn to_bytes(&self) -> Bytes {
        let mut out = Vec::with_capacity(self.wire_size());
        out.extend_from_slice(b"JXM1");
        out.extend_from_slice(&(self.elements.len() as u32).to_be_bytes());
        for element in &self.elements {
            write_string(&mut out, &element.namespace);
            write_string(&mut out, &element.name);
            write_string(&mut out, &element.mime_type);
            out.extend_from_slice(&(element.body.len() as u32).to_be_bytes());
            out.extend_from_slice(&element.body);
        }
        Bytes::from(out)
    }

    /// Decodes a message from its wire representation.
    ///
    /// # Errors
    ///
    /// Returns [`MessageDecodeError`] if the magic, counts or lengths are
    /// inconsistent with the buffer.
    pub fn from_bytes(bytes: &[u8]) -> Result<Message, MessageDecodeError> {
        let mut cursor = Cursor { buf: bytes, pos: 0 };
        let magic = cursor.take(4)?;
        if magic != b"JXM1" {
            return Err(MessageDecodeError::BadMagic);
        }
        let count = cursor.read_u32()? as usize;
        if count > 0xFFFF {
            return Err(MessageDecodeError::TooManyElements(count));
        }
        let mut elements = Vec::with_capacity(count);
        for _ in 0..count {
            let namespace = cursor.read_string()?;
            let name = cursor.read_string()?;
            let mime_type = cursor.read_string()?;
            let len = cursor.read_u32()? as usize;
            let body = Bytes::copy_from_slice(cursor.take(len)?);
            elements.push(MessageElement {
                namespace,
                name,
                mime_type,
                body,
            });
        }
        if cursor.pos != bytes.len() {
            return Err(MessageDecodeError::TrailingBytes);
        }
        Ok(Message { elements })
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Message[{} elements, {} bytes]",
            self.elements.len(),
            self.wire_size()
        )
    }
}

fn write_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], MessageDecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(MessageDecodeError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn read_u32(&mut self) -> Result<u32, MessageDecodeError> {
        let bytes = self.take(4)?;
        Ok(u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    fn read_string(&mut self) -> Result<String, MessageDecodeError> {
        let len = self.read_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| MessageDecodeError::BadUtf8)
    }
}

/// Errors produced by [`Message::from_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageDecodeError {
    /// The 4-byte magic prefix was not `JXM1`.
    BadMagic,
    /// The buffer ended before the declared content.
    Truncated,
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// The element count is implausibly large.
    TooManyElements(usize),
    /// Bytes remained after the last declared element.
    TrailingBytes,
}

impl fmt::Display for MessageDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MessageDecodeError::BadMagic => f.write_str("bad message magic"),
            MessageDecodeError::Truncated => f.write_str("truncated message"),
            MessageDecodeError::BadUtf8 => f.write_str("message string is not valid utf-8"),
            MessageDecodeError::TooManyElements(n) => write!(f, "implausible element count {n}"),
            MessageDecodeError::TrailingBytes => f.write_str("trailing bytes after message"),
        }
    }
}

impl std::error::Error for MessageDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Message {
        Message::new()
            .with(MessageElement::text("jxta", "SrcPeer", "urn:jxta:peer-1"))
            .with(MessageElement::xml("jxta", "Adv", "<Adv><Name>x</Name></Adv>"))
            .with(MessageElement::binary("app", "payload", vec![0u8, 1, 2, 255]))
    }

    #[test]
    fn roundtrip_encoding() {
        let msg = sample();
        let decoded = Message::from_bytes(&msg.to_bytes()).unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(decoded.len(), 3);
    }

    #[test]
    fn dup_is_deep_equal() {
        let msg = sample();
        let copy = msg.dup();
        assert_eq!(copy, msg);
    }

    #[test]
    fn element_lookup_and_removal() {
        let mut msg = sample();
        assert!(msg.element("jxta", "SrcPeer").is_some());
        assert!(msg.element("jxta", "missing").is_none());
        assert_eq!(msg.element_text("jxta", "SrcPeer").unwrap(), "urn:jxta:peer-1");
        assert_eq!(msg.remove("jxta", "SrcPeer"), 1);
        assert_eq!(msg.remove("jxta", "SrcPeer"), 0);
        assert_eq!(msg.len(), 2);
    }

    #[test]
    fn decode_rejects_corruption() {
        let msg = sample();
        let bytes = msg.to_bytes().to_vec();
        assert_eq!(Message::from_bytes(b"nope"), Err(MessageDecodeError::BadMagic));
        assert_eq!(
            Message::from_bytes(&bytes[..bytes.len() - 1]),
            Err(MessageDecodeError::Truncated)
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            Message::from_bytes(&trailing),
            Err(MessageDecodeError::TrailingBytes)
        );
        let mut huge_count = bytes.clone();
        huge_count[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(
            Message::from_bytes(&huge_count),
            Err(MessageDecodeError::TooManyElements(u32::MAX as usize))
        );
    }

    #[test]
    fn wire_size_matches_encoding_length_roughly() {
        let msg = sample();
        let encoded = msg.to_bytes().len();
        // wire_size is an upper-bound estimate used for charging CPU/bandwidth.
        assert!(msg.wire_size() >= encoded);
        assert!(msg.wire_size() < encoded + 64);
    }

    #[test]
    fn empty_message_roundtrips() {
        let msg = Message::new();
        assert!(msg.is_empty());
        assert_eq!(Message::from_bytes(&msg.to_bytes()).unwrap(), msg);
    }
}
