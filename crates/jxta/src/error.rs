//! Error types for the JXTA layer.

use crate::adv::AdvParseError;
use crate::message::MessageDecodeError;
use crate::xml::XmlError;
use std::fmt;

/// Errors surfaced by the JXTA peer and its services.
#[derive(Debug, Clone, PartialEq)]
pub enum JxtaError {
    /// A received datagram could not be decoded as a JXTA message.
    BadMessage(MessageDecodeError),
    /// An embedded XML document could not be parsed.
    BadXml(String),
    /// An advertisement could not be parsed.
    BadAdvertisement(String),
    /// A message was missing a required element.
    MissingElement(String),
    /// The requested pipe is not known / not resolved yet.
    UnknownPipe(String),
    /// The requested peer group is not known or not joined.
    UnknownGroup(String),
    /// Membership was denied by the group's policy.
    MembershipDenied(String),
    /// A send failed synchronously at the simulated transport.
    Transport(String),
    /// The requested service is not present in the peer group.
    ServiceNotFound(String),
}

impl fmt::Display for JxtaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JxtaError::BadMessage(e) => write!(f, "malformed jxta message: {e}"),
            JxtaError::BadXml(e) => write!(f, "malformed xml: {e}"),
            JxtaError::BadAdvertisement(e) => write!(f, "malformed advertisement: {e}"),
            JxtaError::MissingElement(name) => write!(f, "message is missing element {name}"),
            JxtaError::UnknownPipe(p) => write!(f, "unknown or unresolved pipe {p}"),
            JxtaError::UnknownGroup(g) => write!(f, "unknown peer group {g}"),
            JxtaError::MembershipDenied(r) => write!(f, "membership denied: {r}"),
            JxtaError::Transport(e) => write!(f, "transport error: {e}"),
            JxtaError::ServiceNotFound(s) => write!(f, "service not found: {s}"),
        }
    }
}

impl std::error::Error for JxtaError {}

impl From<MessageDecodeError> for JxtaError {
    fn from(e: MessageDecodeError) -> Self {
        JxtaError::BadMessage(e)
    }
}

impl From<XmlError> for JxtaError {
    fn from(e: XmlError) -> Self {
        JxtaError::BadXml(e.to_string())
    }
}

impl From<AdvParseError> for JxtaError {
    fn from(e: AdvParseError) -> Self {
        JxtaError::BadAdvertisement(e.to_string())
    }
}

impl From<simnet::SendError> for JxtaError {
    fn from(e: simnet::SendError) -> Self {
        JxtaError::Transport(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_information() {
        let e: JxtaError = MessageDecodeError::BadMagic.into();
        assert!(e.to_string().contains("magic"));
        let e: JxtaError = XmlError::UnexpectedEof.into();
        assert!(e.to_string().contains("xml"));
        let e: JxtaError = AdvParseError::new("nope").into();
        assert!(e.to_string().contains("nope"));
        let e: JxtaError = simnet::SendError::TransportMismatch.into();
        assert!(e.to_string().contains("transport"));
    }

    #[test]
    fn error_messages_are_lowercase_and_concise() {
        let e = JxtaError::UnknownPipe("urn:jxta:pipe-1".into());
        let msg = e.to_string();
        assert!(msg.starts_with("unknown"));
        assert!(!msg.ends_with('.'));
    }
}
