//! The peer platform: one `JxtaPeer` per simulated device, assembling the
//! endpoint layer, the six protocols and the services into a working stack.
//!
//! The peer is deliberately *not* a [`simnet::SimNode`] itself: applications
//! (the ski-rental apps, the TPS engine) own a `JxtaPeer` and forward their
//! node's `on_start` / `on_datagram` / `on_timer` hooks to it, then drain the
//! [`JxtaEvent`]s it produced. This sans-I/O composition keeps the layering of
//! the paper's Figure 9 (application → TPS → JXTA → network) explicit in the
//! code.

use crate::adv::{AdvKind, AnyAdvertisement, PeerAdvertisement, PeerGroupAdvertisement, PipeAdvertisement};
use crate::cm::SearchFilter;
use crate::endpoint::{EndpointService, WireMessage, WirePacket};
use crate::error::JxtaError;
use crate::events::JxtaEvent;
use crate::id::{PeerGroupId, PeerId, PipeId, QueryId, Uuid};
use crate::message::Message;
use crate::protocols::erp::{RouteQuery, RouteResponse};
use crate::protocols::pbp::{PipeBindQuery, PipeBindResponse};
use crate::protocols::pdp::{DiscoveryQuery, DiscoveryResponse};
use crate::protocols::pip::{PeerInfoResponse, PingQuery};
use crate::protocols::pmp::{
    Credential, MembershipOp, MembershipQuery, MembershipResponse, MembershipVerdict,
};
use crate::protocols::prp::{ResolverQuery, ResolverResponse};
use crate::protocols::{handlers, ProtocolPayload};
use crate::services::{
    DiscoveryService, MembershipService, MembershipState, PeerInfoService, RendezvousService, WireService,
};
use bytes::Bytes;
use dissem::{RebalanceController, RebalanceEvent};
use rand::Rng;
use simnet::{NodeContext, SimAddress, SimDuration, SimTime, TransportKind};
use std::cell::RefCell;
use std::rc::Rc;
use telemetry::trace::{DropCause, SpanKind, TraceCollector, TraceId, TraceSpan, BROADCAST};
use telemetry::{LoadReport, MetricsRegistry};

/// The trace collector shared by every instrumented layer of one simulated
/// deployment. The simulator is single-threaded, so plain `Rc<RefCell<..>>`
/// sharing is enough; a peer holding `None` pays nothing for tracing.
pub type SharedTraceCollector = Rc<RefCell<TraceCollector>>;

/// Folds a 128-bit peer id into the 64-bit trace handle used by
/// [`telemetry::trace`] spans. Deterministic, and never the reserved
/// [`BROADCAST`] handle.
pub fn trace_handle(peer: PeerId) -> u64 {
    let raw = peer.0 .0;
    let folded = ((raw >> 64) as u64) ^ (raw as u64);
    if folded == BROADCAST {
        1
    } else {
        folded
    }
}

/// Timer tag used by the peer's periodic housekeeping.
pub const TIMER_HOUSEKEEPING: u64 = 0x4A58_0001;

/// Whether a timer tag belongs to the JXTA platform (the owning node should
/// forward it to [`JxtaPeer::on_timer`]).
pub fn is_jxta_timer(tag: u64) -> bool {
    (tag >> 16) == 0x4A58
}

/// Per-message CPU cost model, calibrated so that the reproduced figures land
/// in the same order of magnitude as the paper's JXTA 1.0 / JDK 1.4-beta /
/// Sun Ultra 10 testbed (hundreds of milliseconds per published event, with
/// a large variance).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Fixed cost of decoding any received message.
    pub decode_fixed: SimDuration,
    /// Additional decode cost per payload byte, in microseconds.
    pub decode_per_byte_us: u64,
    /// Fixed cost of encoding and handing a message to the transport.
    pub send_fixed: SimDuration,
    /// Additional send cost per payload byte, in microseconds.
    pub send_per_byte_us: u64,
    /// Cost of servicing one resolved listener connection during a wire
    /// publish (dominates the paper's invocation time).
    pub wire_listener_fixed: SimDuration,
    /// Cost of handling a resolver query (cache search, XML work).
    pub resolver_handle_fixed: SimDuration,
    /// Relative jitter applied to every charged cost (`0.25` = ±25 %).
    pub jitter_fraction: f64,
}

impl CostModel {
    /// The JXTA 1.0-era defaults used by the paper reproduction.
    pub fn jxta_1_0() -> Self {
        CostModel {
            decode_fixed: SimDuration::from_millis(3),
            decode_per_byte_us: 2,
            send_fixed: SimDuration::from_millis(9),
            send_per_byte_us: 4,
            wire_listener_fixed: SimDuration::from_millis(150),
            resolver_handle_fixed: SimDuration::from_millis(6),
            jitter_fraction: 0.25,
        }
    }

    /// A free cost model for functional unit tests where virtual CPU time is
    /// irrelevant.
    pub fn free() -> Self {
        CostModel {
            decode_fixed: SimDuration::ZERO,
            decode_per_byte_us: 0,
            send_fixed: SimDuration::ZERO,
            send_per_byte_us: 0,
            wire_listener_fixed: SimDuration::ZERO,
            resolver_handle_fixed: SimDuration::ZERO,
            jitter_fraction: 0.0,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::jxta_1_0()
    }
}

/// Static configuration of a peer.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerConfig {
    /// Human-readable peer name.
    pub name: String,
    /// Whether this peer offers rendezvous (and relay) service.
    pub rendezvous: bool,
    /// Addresses of seed rendezvous peers an edge peer connects to.
    pub seed_rendezvous: Vec<SimAddress>,
    /// Whether the peer is behind a firewall (it then advertises only its
    /// HTTP endpoint, since inbound TCP would be dropped anyway).
    pub behind_firewall: bool,
    /// The peer group this peer boots into.
    pub default_group: PeerGroupId,
    /// Per-message CPU costs.
    pub costs: CostModel,
    /// Interval of the housekeeping timer (cache expiry, lease renewal,
    /// advertisement re-publication).
    pub housekeeping_interval: SimDuration,
    /// Propagation hop budget for queries and wire packets.
    pub default_ttl: u8,
    /// How wire publishes are disseminated (see the `dissem` crate). The
    /// default is the paper-faithful direct fan-out.
    pub dissemination: dissem::DisseminationConfig,
}

impl PeerConfig {
    /// Configuration of an ordinary ("edge") peer.
    pub fn edge(name: impl Into<String>) -> Self {
        PeerConfig {
            name: name.into(),
            rendezvous: false,
            seed_rendezvous: Vec::new(),
            behind_firewall: false,
            default_group: PeerGroupId::net(),
            costs: CostModel::jxta_1_0(),
            housekeeping_interval: SimDuration::from_secs(30),
            default_ttl: 3,
            dissemination: dissem::DisseminationConfig::default(),
        }
    }

    /// Configuration of a rendezvous/router peer.
    pub fn rendezvous(name: impl Into<String>) -> Self {
        PeerConfig {
            rendezvous: true,
            ..PeerConfig::edge(name)
        }
    }

    /// Builder-style seed rendezvous addresses.
    pub fn with_seeds(mut self, seeds: Vec<SimAddress>) -> Self {
        self.seed_rendezvous = seeds;
        self
    }

    /// Builder-style firewall flag.
    pub fn with_firewalled(mut self, behind_firewall: bool) -> Self {
        self.behind_firewall = behind_firewall;
        self
    }

    /// Builder-style cost-model override.
    pub fn with_costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Builder-style dissemination-strategy override.
    pub fn with_dissemination(mut self, dissemination: dissem::DisseminationConfig) -> Self {
        self.dissemination = dissemination;
        self
    }
}

/// The JXTA peer platform.
#[derive(Debug)]
pub struct JxtaPeer {
    config: PeerConfig,
    peer_id: PeerId,
    discovery: DiscoveryService,
    rendezvous: RendezvousService,
    wire: WireService,
    membership: MembershipService,
    endpoint: EndpointService,
    info: PeerInfoService,
    next_query: QueryId,
    events: Vec<JxtaEvent>,
    started: bool,
    local_transports: Vec<TransportKind>,
    local_addresses: Vec<SimAddress>,
    rebalance: RebalanceController<PeerId>,
    mailbox_depth: u32,
    tracer: Option<SharedTraceCollector>,
    defer_delivery_spans: bool,
    /// Reusable `(client, address)` buffer for the rendezvous fan-down
    /// loops: taken before the loop, refilled from the lease table, restored
    /// after — so forwarding one event to a 100k-client shard allocates
    /// nothing per event (and nothing per client).
    fanout_scratch: Vec<(PeerId, SimAddress)>,
}

impl JxtaPeer {
    /// Creates a peer whose id is derived deterministically from its name.
    pub fn new(config: PeerConfig) -> Self {
        let peer_id = PeerId::derive(&config.name);
        Self::with_id(config, peer_id)
    }

    /// Creates a peer with an explicit id.
    pub fn with_id(config: PeerConfig, peer_id: PeerId) -> Self {
        let rendezvous = RendezvousService::new(config.rendezvous, config.seed_rendezvous.clone());
        JxtaPeer {
            peer_id,
            discovery: DiscoveryService::new(),
            rendezvous,
            wire: WireService::with_config(&config.dissemination),
            membership: MembershipService::new(),
            endpoint: EndpointService::new(),
            info: PeerInfoService::new(),
            next_query: QueryId(0),
            events: Vec::new(),
            started: false,
            local_transports: Vec::new(),
            local_addresses: Vec::new(),
            rebalance: RebalanceController::new(config.dissemination.rebalance),
            mailbox_depth: 0,
            tracer: None,
            fanout_scratch: Vec::new(),
            defer_delivery_spans: false,
            config,
        }
    }

    /// The peer's stable identifier.
    pub fn peer_id(&self) -> PeerId {
        self.peer_id
    }

    /// The peer's configuration.
    pub fn config(&self) -> &PeerConfig {
        &self.config
    }

    /// Whether `on_start` has run.
    pub fn is_started(&self) -> bool {
        self.started
    }

    /// The discovery service (read access).
    pub fn discovery(&self) -> &DiscoveryService {
        &self.discovery
    }

    /// The wire service (read access).
    pub fn wire(&self) -> &WireService {
        &self.wire
    }

    /// The rendezvous service (read access).
    pub fn rendezvous(&self) -> &RendezvousService {
        &self.rendezvous
    }

    /// The membership service (read access).
    pub fn membership(&self) -> &MembershipService {
        &self.membership
    }

    /// The endpoint/route table (read access).
    pub fn endpoint(&self) -> &EndpointService {
        &self.endpoint
    }

    /// The peer information service (read access).
    pub fn info(&self) -> &PeerInfoService {
        &self.info
    }

    /// Drains the events produced since the last call.
    pub fn take_events(&mut self) -> Vec<JxtaEvent> {
        std::mem::take(&mut self.events)
    }

    /// Reports the application-layer mailbox depth the next outgoing
    /// [`telemetry::LoadReport`] should carry (the TPS engine sets this from
    /// its session mailbox at every pump; zero where no mailbox exists).
    pub fn set_mailbox_depth(&mut self, depth: u32) {
        self.mailbox_depth = depth;
    }

    /// Installs a shared [`TraceCollector`] so every copy of every wire
    /// message this peer touches records causal [`TraceSpan`]s. Off by
    /// default; a peer without a collector skips all span bookkeeping.
    ///
    /// With `defer_delivery` set, the peer records every hop span *except*
    /// the terminal `Delivered` / duplicate-drop spans: a layer above (the
    /// TPS engine, which runs its own cross-pipe event-id dedup) takes over
    /// that responsibility so each copy gets exactly one verdict span.
    pub fn set_trace_collector(&mut self, tracer: SharedTraceCollector, defer_delivery: bool) {
        tracer
            .borrow_mut()
            .register_node(trace_handle(self.peer_id), self.config.name.clone());
        self.tracer = Some(tracer);
        self.defer_delivery_spans = defer_delivery;
    }

    /// The installed trace collector, if any.
    pub fn trace_collector(&self) -> Option<&SharedTraceCollector> {
        self.tracer.as_ref()
    }

    /// This peer's 64-bit trace handle (see [`trace_handle`]).
    pub fn trace_node(&self) -> u64 {
        trace_handle(self.peer_id)
    }

    /// Records one span for each traced event id, if tracing is on.
    fn record_spans(&self, now: SimTime, ids: &[TraceId], kind: SpanKind) {
        let Some(tracer) = &self.tracer else { return };
        let node = trace_handle(self.peer_id);
        let mut tracer = tracer.borrow_mut();
        for id in ids {
            tracer.record(TraceSpan {
                id: *id,
                at_us: now.as_micros(),
                node,
                kind,
            });
        }
    }

    /// Classifies a unicast wire copy headed for `peer`: across the
    /// rendezvous mesh, down a client lease, or a plain point-to-point hop.
    fn classify_send(&self, peer: PeerId) -> SpanKind {
        let to = trace_handle(peer);
        if self.rendezvous.mesh_link_ids().contains(&peer) {
            SpanKind::MeshRelay { to }
        } else if self.rendezvous.is_rendezvous() && self.rendezvous.client_ids().contains(&peer) {
            SpanKind::FanDown { to }
        } else {
            SpanKind::WireOut { to }
        }
    }

    /// The first point-to-point address this peer listens on, if started.
    fn primary_address(&self) -> Option<SimAddress> {
        self.local_addresses
            .iter()
            .copied()
            .find(|a| a.transport.is_point_to_point())
    }

    /// The deployment's shard ring: every rendezvous address (this peer's
    /// own plus its seeds), ascending, truncated to the configured
    /// `mesh_shards` under the mesh strategy. Builders hand out seed lists
    /// in ascending address order, so this ring matches the seed list the
    /// edges hash and fail over on — including the truncation: an edge's
    /// connect target is always `seeds[(home + attempts) % shards]`, so
    /// rendezvous beyond the shard count never serve a hash range and must
    /// not appear in the adoption ring either.
    pub fn shard_ring(&self) -> Vec<SimAddress> {
        let mut ring: Vec<SimAddress> = self
            .rendezvous
            .seed_addresses()
            .iter()
            .copied()
            .filter(|a| a.transport.is_point_to_point())
            .chain(self.primary_address())
            .collect();
        ring.sort();
        ring.dedup();
        if self.config.dissemination.kind == dissem::StrategyKind::RendezvousMesh {
            ring.truncate(self.config.dissemination.mesh_shards.max(1));
        }
        ring
    }

    /// The shard indices this rendezvous currently serves: its own, plus
    /// every dead shard whose ring adopter it is (the deterministic rule of
    /// [`dissem::adopter_of`]). Edges walking their failover ring land on
    /// exactly these shards' leases. Empty on edge peers.
    pub fn owned_shards(&self) -> Vec<usize> {
        if !self.rendezvous.is_rendezvous() {
            return Vec::new();
        }
        let ring = self.shard_ring();
        let Some(own_addr) = self.primary_address() else {
            return Vec::new();
        };
        let Some(own_index) = ring.iter().position(|&a| a == own_addr) else {
            return Vec::new();
        };
        let alive: Vec<bool> = ring
            .iter()
            .map(|&addr| {
                if addr == own_addr {
                    return true;
                }
                // A shard is dead only when the controller says so; a seed
                // we never heard from at all is treated optimistically (it
                // may simply not have booted yet).
                !self.peer_at(addr).is_some_and(|p| self.rebalance.is_dead(p))
            })
            .collect();
        dissem::adoption_map(&alive)
            .into_iter()
            .enumerate()
            .filter(|&(_, owner)| owner == Some(own_index))
            .map(|(index, _)| index)
            .collect()
    }

    /// The dead shards' hash ranges this rendezvous has adopted (its
    /// [`JxtaPeer::owned_shards`] minus its own).
    pub fn adopted_shards(&self) -> Vec<usize> {
        let ring = self.shard_ring();
        let own_index = self
            .primary_address()
            .and_then(|own| ring.iter().position(|&a| a == own));
        self.owned_shards()
            .into_iter()
            .filter(|&index| Some(index) != own_index)
            .collect()
    }

    /// The fellow rendezvous the controller currently considers dead.
    pub fn dead_shards(&self) -> Vec<PeerId> {
        self.rebalance.dead_peers()
    }

    /// The rendezvous peer known to live at `addr`, from the mesh links or
    /// the load table (which outlives link removal).
    fn peer_at(&self, addr: SimAddress) -> Option<PeerId> {
        self.rendezvous
            .mesh_link_ids()
            .into_iter()
            .find(|&p| self.rendezvous.mesh_link_address(p) == Some(addr))
            .or_else(|| {
                self.rendezvous
                    .load_table()
                    .into_iter()
                    .find(|(_, entry)| entry.address == addr)
                    .map(|(peer, _)| peer)
            })
    }

    /// Exports this peer's counters into a metrics registry under
    /// `<prefix>.*`: wire and rendezvous service counters, mesh state, and
    /// (rendezvous role) one `shard<i>.*` group per load-table row, keyed
    /// by ring position — the per-shard relay counts of the telemetry plane.
    pub fn export_metrics(&self, registry: &mut MetricsRegistry, prefix: &str) {
        let (sent, received, duplicates) = self.wire.counters();
        registry.set_counter(format!("{prefix}.wire.sent"), sent);
        registry.set_counter(format!("{prefix}.wire.received"), received);
        registry.set_counter(format!("{prefix}.wire.duplicates"), duplicates);
        registry.set_counter(format!("{prefix}.wire.forwarded"), self.wire.forwarded());
        let (propagated, rdv_duplicates, clients) = self.rendezvous.counters();
        registry.set_counter(format!("{prefix}.rdv.propagated"), propagated);
        registry.set_counter(format!("{prefix}.rdv.duplicates"), rdv_duplicates);
        registry.set_gauge(format!("{prefix}.rdv.clients"), clients as i64);
        registry.set_gauge(
            format!("{prefix}.rdv.mesh_links"),
            self.rendezvous.mesh_degree() as i64,
        );
        registry.set_counter(
            format!("{prefix}.rdv.mesh_hellos"),
            self.rendezvous.mesh_hellos_sent(),
        );
        registry.set_gauge(format!("{prefix}.mailbox_depth"), i64::from(self.mailbox_depth));
        if self.rendezvous.is_rendezvous() {
            let ring = self.shard_ring();
            for (peer, entry) in self.rendezvous.load_table() {
                let shard = ring
                    .iter()
                    .position(|&a| a == entry.address)
                    .map_or_else(|| peer.to_string(), |i| i.to_string());
                registry.set_counter(
                    format!("{prefix}.shard{shard}.relayed"),
                    entry.report.events_relayed,
                );
                registry.set_gauge(
                    format!("{prefix}.shard{shard}.leases"),
                    i64::from(entry.report.lease_count),
                );
                registry.set_gauge(
                    format!("{prefix}.shard{shard}.dead"),
                    i64::from(self.rebalance.is_dead(peer)),
                );
            }
        }
    }

    /// The peer's own advertisement, reflecting its current addresses.
    pub fn peer_advertisement(&self, ctx: &NodeContext<'_>) -> PeerAdvertisement {
        let endpoints: Vec<SimAddress> = ctx
            .local_addresses()
            .iter()
            .copied()
            .filter(|a| a.transport.is_point_to_point())
            .filter(|a| !self.config.behind_firewall || a.transport == TransportKind::Http)
            .collect();
        PeerAdvertisement::new(self.peer_id, self.config.name.clone(), self.config.default_group)
            .with_endpoints(endpoints)
            .with_rendezvous(self.config.rendezvous)
    }

    // ------------------------------------------------------------------
    // lifecycle hooks (called by the owning SimNode)
    // ------------------------------------------------------------------

    /// Must be called from the owning node's `on_start`.
    pub fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
        self.started = true;
        self.info.start(ctx.now());
        self.local_transports = ctx.local_addresses().iter().map(|a| a.transport).collect();
        self.local_addresses = ctx.local_addresses().to_vec();
        let own_adv: AnyAdvertisement = self.peer_advertisement(ctx).into();
        self.discovery.publish_local(own_adv, ctx.now());
        self.connect_to_rendezvous(ctx, true);
        ctx.set_timer(self.config.housekeeping_interval, TIMER_HOUSEKEEPING);
    }

    /// Must be called from the owning node's `on_timer` for JXTA timer tags
    /// (see [`is_jxta_timer`]). Returns `true` if the tag was consumed.
    pub fn on_timer(&mut self, ctx: &mut NodeContext<'_>, tag: u64) -> bool {
        if tag != TIMER_HOUSEKEEPING {
            return false;
        }
        let now = ctx.now();
        self.discovery.expire(now);
        self.rendezvous.prune(now);
        self.wire.housekeeping(now);
        // Refresh our own advertisement locally so it never ages out.
        let own_adv: AnyAdvertisement = self.peer_advertisement(ctx).into();
        self.discovery.publish_local(own_adv, now);
        // The load-report plane and the rebalancing controller piggyback on
        // this tick; the edge failover check must precede the renewal check
        // so a just-cleared connection reconnects in the same tick.
        self.housekeep_load_plane(ctx);
        if self
            .rendezvous
            .needs_renewal(now, self.config.housekeeping_interval)
        {
            self.connect_to_rendezvous(ctx, false);
        }
        ctx.set_timer(self.config.housekeeping_interval, TIMER_HOUSEKEEPING);
        true
    }

    /// Must be called from the owning node's `on_address_changed`.
    ///
    /// Re-publishes the peer advertisement (locally and to the network) so
    /// that other peers' pipe bindings converge on the new addresses — the
    /// Pipe Binding Protocol scenario of the paper's Figure 5.
    pub fn on_address_changed(&mut self, ctx: &mut NodeContext<'_>, _old: SimAddress, _new: SimAddress) {
        let adv = self.peer_advertisement(ctx);
        self.discovery.publish_local(adv.clone().into(), ctx.now());
        let wm = WireMessage::Publish {
            adv_xml: AnyAdvertisement::from(adv).to_xml_string(),
            src_peer: self.peer_id,
        };
        self.propagate(ctx, &wm, None);
        // Re-establish the rendezvous lease from the new address.
        self.local_addresses = ctx.local_addresses().to_vec();
        self.connect_to_rendezvous(ctx, true);
    }

    /// Must be called from the owning node's `on_datagram`.
    pub fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, datagram: &simnet::Datagram) {
        self.info.note_received(datagram.payload.len());
        self.charge_decode(ctx, datagram.payload.len());
        // Not JXTA traffic → ignore, as a real stack would.
        let Ok(message) = WireMessage::from_bytes(&datagram.payload) else {
            return;
        };
        let reply_addr = if datagram.src_addr.is_multicast() {
            None
        } else {
            Some(datagram.src_addr)
        };
        self.handle_wire_message(ctx, message, reply_addr);
    }

    // ------------------------------------------------------------------
    // public operations (discovery)
    // ------------------------------------------------------------------

    /// Publishes an advertisement to the local cache only
    /// (`DiscoveryService.publish`).
    pub fn publish_local(&mut self, ctx: &NodeContext<'_>, adv: AnyAdvertisement) -> bool {
        self.discovery.publish_local(adv, ctx.now())
    }

    /// Publishes an advertisement locally *and* pushes it to the network
    /// (`DiscoveryService.remotePublish`).
    pub fn remote_publish(&mut self, ctx: &mut NodeContext<'_>, adv: AnyAdvertisement) {
        self.discovery.publish_local(adv.clone(), ctx.now());
        let wm = WireMessage::Publish {
            adv_xml: adv.to_xml_string(),
            src_peer: self.peer_id,
        };
        self.propagate(ctx, &wm, None);
    }

    /// Searches the local cache (`getLocalAdvertisements`).
    pub fn local_advertisements(
        &self,
        ctx: &NodeContext<'_>,
        kind: AdvKind,
        filter: &SearchFilter,
    ) -> Vec<AnyAdvertisement> {
        self.discovery.local(kind, filter, ctx.now())
    }

    /// Sends a remote discovery query (`getRemoteAdvertisements`), returning
    /// the query id. Matching advertisements arrive later as
    /// [`JxtaEvent::AdvertisementDiscovered`] events.
    pub fn discover_remote(
        &mut self,
        ctx: &mut NodeContext<'_>,
        kind: AdvKind,
        filter: SearchFilter,
        threshold: usize,
    ) -> QueryId {
        self.next_query = self.next_query.next();
        let query_id = self.next_query;
        let dq = DiscoveryQuery::new(kind, filter, threshold, self.peer_advertisement(ctx));
        let mut rq = ResolverQuery::new(handlers::PDP, query_id, self.peer_id, dq.to_xml_string());
        rq.hops_left = self.config.default_ttl;
        self.discovery.note_query_sent();
        let wm = WireMessage::ResolverQuery(rq);
        self.propagate(ctx, &wm, None);
        query_id
    }

    /// Discards cached advertisements (`flushAdvertisements`).
    pub fn flush_advertisements(&mut self, kind: Option<AdvKind>) {
        self.discovery.flush(kind);
    }

    // ------------------------------------------------------------------
    // public operations (groups, membership)
    // ------------------------------------------------------------------

    /// Registers a group this peer created: it becomes the group's membership
    /// authority and the advertisement is published locally.
    pub fn author_group(&mut self, ctx: &NodeContext<'_>, adv: &PeerGroupAdvertisement) {
        self.membership.author_group(adv);
        self.discovery.publish_local(adv.clone().into(), ctx.now());
    }

    /// Applies for membership of a group (PMP `apply`): asks the group's
    /// creator for its credential requirements.
    pub fn membership_apply(&mut self, ctx: &mut NodeContext<'_>, group: &PeerGroupAdvertisement) -> QueryId {
        self.membership_request(ctx, group, MembershipOp::Apply, MembershipState::Applied)
    }

    /// Joins a group (PMP `join`) presenting a credential.
    pub fn membership_join(
        &mut self,
        ctx: &mut NodeContext<'_>,
        group: &PeerGroupAdvertisement,
        credential: Credential,
    ) -> QueryId {
        self.membership_request(
            ctx,
            group,
            MembershipOp::Join(credential),
            MembershipState::Joining,
        )
    }

    /// Leaves a group (PMP `leave`).
    pub fn membership_leave(&mut self, ctx: &mut NodeContext<'_>, group: &PeerGroupAdvertisement) -> QueryId {
        self.membership_request(ctx, group, MembershipOp::Leave, MembershipState::Applied)
    }

    fn membership_request(
        &mut self,
        ctx: &mut NodeContext<'_>,
        group: &PeerGroupAdvertisement,
        op: MembershipOp,
        pending: MembershipState,
    ) -> QueryId {
        self.next_query = self.next_query.next();
        let query_id = self.next_query;
        let query = MembershipQuery {
            group_id: group.group_id,
            applicant: self.peer_id,
            op,
        };
        // If we are the authority ourselves, short-circuit locally.
        if self.membership.is_authority_for(group.group_id) {
            let verdict = self.evaluate_membership(&query);
            self.apply_membership_verdict(ctx.now(), group.group_id, &verdict);
            self.events.push(JxtaEvent::MembershipResult {
                group: group.group_id,
                verdict,
            });
            return query_id;
        }
        self.membership.set_state(group.group_id, pending, ctx.now());
        let rq = ResolverQuery::new(handlers::PMP, query_id, self.peer_id, query.to_xml_string());
        let wm = WireMessage::ResolverQuery(rq);
        if !self.send_to_peer(ctx, group.creator, &wm) {
            self.propagate(ctx, &wm, None);
        }
        query_id
    }

    // ------------------------------------------------------------------
    // public operations (pipes / wire)
    // ------------------------------------------------------------------

    /// Creates a local input (listening) end of a wire pipe and publishes the
    /// pipe advertisement locally so PBP queries can find it.
    pub fn create_wire_input_pipe(&mut self, ctx: &NodeContext<'_>, pipe: &PipeAdvertisement) -> bool {
        self.discovery.publish_local(pipe.clone().into(), ctx.now());
        self.wire.create_input_pipe(pipe.pipe_id)
    }

    /// Closes the local input end of a wire pipe.
    pub fn close_wire_input_pipe(&mut self, pipe_id: PipeId) {
        self.wire.close_input_pipe(pipe_id);
    }

    /// Creates (or refreshes) the output end of a wire pipe and launches a
    /// Pipe Binding Protocol resolution for its current listeners; resolved
    /// listeners arrive as [`JxtaEvent::PipeResolved`] events.
    pub fn resolve_wire_output_pipe(
        &mut self,
        ctx: &mut NodeContext<'_>,
        pipe: &PipeAdvertisement,
    ) -> QueryId {
        self.wire.output_pipe_mut(pipe.pipe_id);
        self.discovery.publish_local(pipe.clone().into(), ctx.now());
        self.next_query = self.next_query.next();
        let query_id = self.next_query;
        let query = PipeBindQuery {
            pipe_id: pipe.pipe_id,
            requester: self.peer_id,
        };
        let mut rq = ResolverQuery::new(handlers::PBP, query_id, self.peer_id, query.to_xml_string());
        rq.hops_left = self.config.default_ttl;
        let wm = WireMessage::ResolverQuery(rq);
        self.propagate(ctx, &wm, None);
        query_id
    }

    /// The number of listeners currently bound to an output pipe.
    pub fn wire_listener_count(&self, pipe_id: PipeId) -> usize {
        self.wire
            .output_pipe(pipe_id)
            .map_or(0, super::services::wire::OutputPipeState::len)
    }

    /// Publishes an application [`Message`] on a wire pipe.
    ///
    /// Copy selection is delegated to the wire service's dissemination
    /// strategy (see [`PeerConfig::dissemination`] and the `dissem` crate).
    /// Under the paper-baseline direct fan-out, one copy goes to every
    /// resolved listener, each charged with the per-listener connection cost
    /// — the dominant term of the paper's Figure 18 invocation time. Other
    /// strategies (rendezvous tree, gossip) send fewer publisher-side copies
    /// and move the fan-out into the overlay.
    ///
    /// Returns the number of direct copies sent.
    ///
    /// # Errors
    ///
    /// Returns [`JxtaError::UnknownPipe`] if no output pipe was created for
    /// `pipe_id`.
    pub fn wire_send(
        &mut self,
        ctx: &mut NodeContext<'_>,
        pipe_id: PipeId,
        message: &Message,
    ) -> Result<usize, JxtaError> {
        self.wire_send_traced(ctx, pipe_id, message, Vec::new())
    }

    /// [`JxtaPeer::wire_send`] with explicit event trace ids, one per event
    /// packed inside `message` (the TPS engine allocates ids before
    /// marshalling so a batched publish carries one id per event). With an
    /// empty list and a collector installed the peer allocates a single id
    /// itself, so bare-JXTA applications get traced transparently.
    pub fn wire_send_traced(
        &mut self,
        ctx: &mut NodeContext<'_>,
        pipe_id: PipeId,
        message: &Message,
        mut trace_ids: Vec<TraceId>,
    ) -> Result<usize, JxtaError> {
        if self.wire.output_pipe(pipe_id).is_none() {
            return Err(JxtaError::UnknownPipe(pipe_id.to_string()));
        }
        if let Some(tracer) = &self.tracer {
            if trace_ids.is_empty() {
                let id = tracer.borrow_mut().allocate(trace_handle(self.peer_id));
                trace_ids.push(id);
                self.record_spans(ctx.now(), &trace_ids, SpanKind::Published);
            }
        } else {
            // No collector: never put trace elements on the wire.
            trace_ids.clear();
        }
        let plan = self.wire.plan_publish(
            pipe_id,
            self.peer_id,
            &self.rendezvous,
            self.config.default_ttl,
            ctx.rng(),
        );
        let listeners = self
            .wire
            .output_pipe(pipe_id)
            .expect("checked above")
            .listeners
            .clone();
        let msg_id = Uuid::generate(ctx.rng());
        let packet = WirePacket {
            pipe_id,
            msg_id,
            src_peer: self.peer_id,
            // The strategy owns the hop budget: gossip in particular may need
            // more hops than the resolver-query default to cover deep
            // overlays, so the configured `gossip_ttl` is not clamped here.
            ttl: plan.ttl,
            payload: message.to_bytes(),
            trace_ids: trace_ids.clone(),
        };
        // Seed the local seen-window with our own message id so a copy
        // gossiped back to the publisher is dropped instead of re-forwarded.
        self.wire.seen_before(pipe_id, msg_id);
        let wm = WireMessage::WireData(packet);
        // Encode once: every direct copy below shares this buffer.
        let encoded = wm.to_bytes();
        self.wire.note_sent();
        let mut sent = 0;
        for peer in &plan.unicast {
            // Every unicast copy costs one per-connection service charge;
            // the plan's length is therefore the publisher-side cost profile
            // of the strategy.
            let listener_cost = self.jittered(ctx, self.config.costs.wire_listener_fixed);
            ctx.charge(listener_cost);
            // Prefer the freshest route (kept up to date by re-published peer
            // advertisements after address changes) over the endpoints frozen
            // in the pipe binding, so that pipes survive peers moving.
            let addr = self.wire_peer_address(*peer, listeners.get(peer).map(Vec::as_slice));
            match addr {
                Some(addr) => {
                    self.transmit_encoded(ctx, addr, &encoded);
                    self.record_spans(ctx.now(), &trace_ids, self.classify_send(*peer));
                    sent += 1;
                }
                None => {
                    // No usable direct address: fall back to relaying.
                    if self.send_to_peer(ctx, *peer, &wm) {
                        self.record_spans(ctx.now(), &trace_ids, self.classify_send(*peer));
                        sent += 1;
                    } else {
                        self.record_spans(
                            ctx.now(),
                            &trace_ids,
                            SpanKind::Dropped {
                                cause: DropCause::NoRoute,
                            },
                        );
                    }
                }
            }
        }
        if sent == 0 || plan.propagate {
            // Nothing resolved yet (or the strategy asked for it): propagate
            // so early subscribers still hear us.
            self.propagate(ctx, &wm, None);
            self.record_spans(ctx.now(), &trace_ids, SpanKind::WireOut { to: BROADCAST });
        }
        Ok(sent)
    }

    // ------------------------------------------------------------------
    // public operations (PIP / ERP)
    // ------------------------------------------------------------------

    /// Queries another peer's status (PIP); the answer arrives as a
    /// [`JxtaEvent::PeerInfoReceived`] event.
    pub fn query_peer_info(&mut self, ctx: &mut NodeContext<'_>, target: PeerId) -> QueryId {
        self.next_query = self.next_query.next();
        let query_id = self.next_query;
        let query = PingQuery { target };
        let rq = ResolverQuery::new(handlers::PIP, query_id, self.peer_id, query.to_xml_string());
        let wm = WireMessage::ResolverQuery(rq);
        if !self.send_to_peer(ctx, target, &wm) {
            self.propagate(ctx, &wm, None);
        }
        query_id
    }

    /// Queries the routing infrastructure for a route to `dest` (ERP); the
    /// answer arrives as a [`JxtaEvent::RouteLearned`] event.
    pub fn query_route(&mut self, ctx: &mut NodeContext<'_>, dest: PeerId) -> QueryId {
        self.next_query = self.next_query.next();
        let query_id = self.next_query;
        let query = RouteQuery {
            dest,
            requester: self.peer_id,
        };
        let rq = ResolverQuery::new(handlers::ERP, query_id, self.peer_id, query.to_xml_string());
        let wm = WireMessage::ResolverQuery(rq);
        self.propagate(ctx, &wm, None);
        query_id
    }

    /// This peer's own PIP snapshot (uptime, traffic).
    pub fn info_snapshot(&self, ctx: &NodeContext<'_>) -> PeerInfoResponse {
        self.info.snapshot(self.peer_id, ctx.now())
    }

    // ------------------------------------------------------------------
    // internals: cost charging and transmission
    // ------------------------------------------------------------------

    fn jittered(&self, ctx: &mut NodeContext<'_>, base: SimDuration) -> SimDuration {
        let f = self.config.costs.jitter_fraction;
        if f <= 0.0 || base == SimDuration::ZERO {
            return base;
        }
        let u: f64 = ctx.rng().gen_range(0.0..1.0);
        base.mul_f64(1.0 - f + 2.0 * f * u)
    }

    fn charge_decode(&mut self, ctx: &mut NodeContext<'_>, bytes: usize) {
        let base = self.config.costs.decode_fixed
            + SimDuration::from_micros(self.config.costs.decode_per_byte_us * bytes as u64);
        let cost = self.jittered(ctx, base);
        ctx.charge(cost);
    }

    fn charge_send(&mut self, ctx: &mut NodeContext<'_>, bytes: usize) {
        let base = self.config.costs.send_fixed
            + SimDuration::from_micros(self.config.costs.send_per_byte_us * bytes as u64);
        let cost = self.jittered(ctx, base);
        ctx.charge(cost);
    }

    fn transmit(&mut self, ctx: &mut NodeContext<'_>, addr: SimAddress, wm: &WireMessage) {
        let bytes = wm.to_bytes();
        self.transmit_encoded(ctx, addr, &bytes);
    }

    /// Sends an already-encoded wire message: the same per-recipient cost
    /// charge and traffic accounting as [`JxtaPeer::transmit`], minus the
    /// codec. Fan-out paths encode the message once and share the buffer —
    /// `Bytes` is `Arc`-backed, so each extra recipient costs a refcount
    /// bump instead of a re-serialisation.
    fn transmit_encoded(&mut self, ctx: &mut NodeContext<'_>, addr: SimAddress, bytes: &Bytes) {
        self.charge_send(ctx, bytes.len());
        self.info.note_sent(bytes.len());
        let _ = ctx.send(addr, bytes.clone());
    }

    fn transmit_multicast(&mut self, ctx: &mut NodeContext<'_>, wm: &WireMessage) {
        let bytes = wm.to_bytes();
        self.charge_send(ctx, bytes.len());
        self.info.note_sent(bytes.len());
        let _ = ctx.send_multicast(bytes);
    }

    /// Resolves the freshest usable address for `peer`: learned routes first
    /// (kept current by re-published peer advertisements after address
    /// changes), then the endpoints frozen in `frozen` (a pipe binding or a
    /// client lease), then a rendezvous-to-rendezvous mesh link, then our
    /// rendezvous connection if `peer` is our rendezvous. Shared by the
    /// publish and forward paths so the priority order cannot drift between
    /// them.
    fn wire_peer_address(&self, peer: PeerId, frozen: Option<&[SimAddress]>) -> Option<SimAddress> {
        self.endpoint
            .best_address(peer, &self.local_transports)
            .or_else(|| {
                frozen.and_then(|endpoints| {
                    endpoints
                        .iter()
                        .copied()
                        .find(|a| self.local_transports.contains(&a.transport))
                })
            })
            .or_else(|| self.rendezvous.mesh_link_address(peer))
            .or_else(|| {
                self.rendezvous
                    .connection()
                    .filter(|conn| conn.peer == peer)
                    .map(|conn| conn.address)
            })
    }

    /// Sends to a specific peer using the best route known: direct endpoint,
    /// rendezvous client table, relay via our rendezvous, or a multicast
    /// relay envelope. Returns `false` if no route at all was available.
    fn send_to_peer(&mut self, ctx: &mut NodeContext<'_>, dest: PeerId, wm: &WireMessage) -> bool {
        if dest == self.peer_id {
            return false;
        }
        if let Some(addr) = self.endpoint.best_address(dest, &self.local_transports) {
            self.transmit(ctx, addr, wm);
            return true;
        }
        if let Some(endpoints) = self.rendezvous.client_endpoints(dest).map(<[SimAddress]>::to_vec) {
            if let Some(addr) = endpoints
                .iter()
                .copied()
                .find(|a| self.local_transports.contains(&a.transport))
            {
                self.transmit(ctx, addr, wm);
                return true;
            }
        }
        // Try a relay through a peer that might know the destination.
        if let Some(relay) = self.endpoint.relay_for(dest) {
            if let Some(addr) = self.endpoint.best_address(relay, &self.local_transports) {
                let envelope = WireMessage::Relay {
                    dest,
                    inner: wm.to_bytes(),
                };
                self.transmit(ctx, addr, &envelope);
                return true;
            }
        }
        if let Some(connection) = self.rendezvous.connection().cloned() {
            let envelope = WireMessage::Relay {
                dest,
                inner: wm.to_bytes(),
            };
            self.transmit(ctx, connection.address, &envelope);
            return true;
        }
        // A rendezvous that cannot resolve the destination forwards through
        // the mesh: the edge is leased to *some* shard, and that shard's
        // rendezvous knows its address (handle_relay checks its lease table).
        // O(mesh links) per message where the multicast fallback below would
        // be O(subnet).
        if self.rendezvous.is_rendezvous() {
            let links: Vec<SimAddress> = self
                .rendezvous
                .mesh_link_ids()
                .into_iter()
                .filter_map(|peer| self.rendezvous.mesh_link_address(peer))
                .collect();
            if !links.is_empty() {
                let envelope = WireMessage::Relay {
                    dest,
                    inner: wm.to_bytes(),
                };
                for addr in links {
                    self.transmit(ctx, addr, &envelope);
                }
                return true;
            }
        }
        // An edge that has seeds but no lease yet relays through the seeds
        // for the same reason propagate() does: pre-lease traffic must not
        // multicast a subnet that has rendezvous infrastructure.
        if !self.rendezvous.is_rendezvous() && !self.rendezvous.seed_addresses().is_empty() {
            let seeds: Vec<SimAddress> = self
                .rendezvous
                .seed_addresses()
                .iter()
                .copied()
                .filter(|a| self.local_transports.contains(&a.transport))
                .collect();
            if !seeds.is_empty() {
                let envelope = WireMessage::Relay {
                    dest,
                    inner: wm.to_bytes(),
                };
                for addr in seeds {
                    self.transmit(ctx, addr, &envelope);
                }
                return true;
            }
        }
        if self.local_transports.contains(&TransportKind::Multicast) {
            let envelope = WireMessage::Relay {
                dest,
                inner: wm.to_bytes(),
            };
            self.transmit_multicast(ctx, &envelope);
            return true;
        }
        false
    }

    /// Whether this edge knows any rendezvous it can route control traffic
    /// through: a granted lease, or (before the grant) configured seeds.
    fn has_rendezvous_path(&self) -> bool {
        self.rendezvous.connection().is_some() || !self.rendezvous.seed_addresses().is_empty()
    }

    /// Propagates a message to the neighbourhood: subnet multicast, our
    /// rendezvous (if we are an edge peer), and all connected clients (if we
    /// are a rendezvous), excluding `exclude`.
    fn propagate(&mut self, ctx: &mut NodeContext<'_>, wm: &WireMessage, exclude: Option<PeerId>) {
        self.rendezvous.note_propagated();
        // One encode shared by every leg below — on a rendezvous the client
        // leg alone can be the whole subscriber population of a shard.
        let encoded = wm.to_bytes();
        // An edge that knows rendezvous peers routes control traffic through
        // them instead of multicasting the subnet (the JXTA 2.0 edge
        // behaviour): on a large LAN the multicast leg makes every resolver
        // query and publish push an O(peers) broadcast that every receiver
        // must decode and often answer — O(peers²) per discovery round.
        // Before the lease is granted the seeds stand in for the connection;
        // only peers with no rendezvous path at all (rendezvous-less
        // deployments) keep the multicast leg their discovery relies on.
        if self.rendezvous.is_rendezvous() || !self.has_rendezvous_path() {
            if self.local_transports.contains(&TransportKind::Multicast) {
                self.transmit_multicast(ctx, wm);
            }
        } else if self.rendezvous.connection().is_none() {
            let seeds: Vec<SimAddress> = self
                .rendezvous
                .seed_addresses()
                .iter()
                .copied()
                .filter(|a| self.local_transports.contains(&a.transport))
                .collect();
            for seed in seeds {
                self.transmit_encoded(ctx, seed, &encoded);
            }
        }
        if let Some(connection) = self.rendezvous.connection().cloned() {
            if Some(connection.peer) != exclude {
                self.transmit_encoded(ctx, connection.address, &encoded);
            }
        }
        if self.rendezvous.is_rendezvous() {
            let mut targets = std::mem::take(&mut self.fanout_scratch);
            self.rendezvous
                .collect_client_targets(&self.local_transports, &mut targets);
            for &(peer, addr) in &targets {
                if Some(peer) == exclude || peer == self.peer_id {
                    continue;
                }
                self.transmit_encoded(ctx, addr, &encoded);
            }
            self.fanout_scratch = targets;
        }
    }

    fn connect_to_rendezvous(&mut self, ctx: &mut NodeContext<'_>, force_announce: bool) {
        if self.rendezvous.is_rendezvous() {
            // A rendezvous uses its seeds as fellow rendezvous: announce
            // mesh links to each (hello; answered with an ack announcement).
            self.announce_mesh_links(ctx, force_announce);
            return;
        }
        // Only seeds this peer can actually reach participate; filtering
        // *before* shard selection keeps mixed-transport deployments working
        // (hashing onto an unreachable seed would strand the edge).
        let seeds: Vec<SimAddress> = self
            .rendezvous
            .seed_addresses()
            .iter()
            .copied()
            .filter(|seed| self.local_transports.contains(&seed.transport))
            .collect();
        if seeds.is_empty() {
            return;
        }
        let wm = WireMessage::RendezvousConnect {
            peer: self.peer_advertisement(ctx),
        };
        // Under the sharded rendezvous mesh every edge leases with exactly
        // one rendezvous — the shard its peer-id hashes to among the first
        // `mesh_shards` usable seeds, plus the ring-failover offset the
        // rebalancing layer advances when that home stops answering (dead
        // shards are adopted by the next surviving seed in ring order; the
        // edge walks the same ring, so both sides converge without any
        // re-shard map on the wire). Every other strategy keeps the
        // original behaviour (try every seed; the last granted lease wins,
        // which on a single-rendezvous deployment is the only one).
        let shard_seeds: Vec<SimAddress> =
            if self.config.dissemination.kind == dissem::StrategyKind::RendezvousMesh {
                let shards = seeds.len().min(self.config.dissemination.mesh_shards.max(1));
                let home = dissem::shard_index(self.peer_id.0 .0, shards);
                let target = (home + self.rendezvous.failover_attempts() as usize) % shards;
                vec![seeds[target]]
            } else {
                seeds
            };
        for seed in shard_seeds {
            self.transmit(ctx, seed, &wm);
        }
        self.rendezvous.note_connect_sent();
    }

    /// Sends mesh-link announcements (rendezvous role only). At `on_start`
    /// (and after an address change) every seed is greeted; the housekeeping
    /// tick only re-announces to seeds whose link is missing or was dropped
    /// (e.g. by the rebalancing controller), so an established mesh costs no
    /// steady-state hello chatter while lost links still heal.
    fn announce_mesh_links(&mut self, ctx: &mut NodeContext<'_>, force: bool) {
        let seeds = self.rendezvous.seed_addresses().to_vec();
        if seeds.is_empty() {
            return;
        }
        let local_addresses = ctx.local_addresses().to_vec();
        let wm = WireMessage::MeshLink {
            peer: self.peer_advertisement(ctx),
            ack: false,
        };
        for seed in seeds {
            if !self.local_transports.contains(&seed.transport) || local_addresses.contains(&seed) {
                continue;
            }
            if !force && self.rendezvous.has_mesh_link_at(seed) {
                continue;
            }
            self.rendezvous.note_mesh_hello();
            self.transmit(ctx, seed, &wm);
        }
    }

    // ------------------------------------------------------------------
    // internals: the load-report plane and the rebalancing controller
    // ------------------------------------------------------------------

    /// One housekeeping pass of the load-report plane. Edges: detect a dead
    /// home (lease expired with every renewal unanswered), advance the ring
    /// failover, and piggyback a load report to the current rendezvous.
    /// Rendezvous: refresh the local load-table entry, gossip it across the
    /// mesh links, and run the dead-shard detector over the table.
    fn housekeep_load_plane(&mut self, ctx: &mut NodeContext<'_>) {
        // `rebalance.enabled` gates the whole plane — reports, gossip,
        // detection and edge failover — so a disabled configuration is the
        // exact pre-controller behaviour the ablation baseline compares
        // against, traffic included.
        if !self.config.dissemination.rebalance.enabled {
            return;
        }
        let now = ctx.now();
        if !self.rendezvous.is_rendezvous() {
            if self.config.dissemination.kind == dissem::StrategyKind::RendezvousMesh {
                let expired = self
                    .rendezvous
                    .connection()
                    .is_some_and(|conn| conn.lease_expires_at <= now);
                let unanswered = self.rendezvous.connection().is_none()
                    && self.rendezvous.connect_pending()
                    && !self.rendezvous.seed_addresses().is_empty();
                if (expired || unanswered) && self.rendezvous.note_renewal_miss() >= 2 {
                    // The home rendezvous sat out a whole lease and two
                    // consecutive housekeeping ticks (one lost datagram on a
                    // lossy link is not a dead home): walk the ring to its
                    // adopter.
                    self.rendezvous.clear_connection();
                    self.rendezvous.bump_failover();
                }
            }
            if let Some(connection) = self.rendezvous.connection().cloned() {
                let report = LoadReport {
                    events_relayed: self.wire.counters().0,
                    fan_out: 0,
                    mailbox_depth: self.mailbox_depth,
                    lease_count: 0,
                };
                let wm = WireMessage::LoadReport {
                    peer: self.peer_id,
                    report,
                };
                self.transmit(ctx, connection.address, &wm);
            }
            return;
        }
        // Rendezvous role: refresh our own entry and gossip it.
        let own_load = self
            .rendezvous
            .own_load(self.mailbox_depth, self.wire.forwarded());
        if let Some(own_addr) = self.primary_address() {
            self.rendezvous
                .record_shard_load(self.peer_id, own_addr, own_load, now);
        }
        let wm = WireMessage::LoadReport {
            peer: self.peer_id,
            report: own_load,
        };
        for peer in self.rendezvous.mesh_link_ids() {
            if let Some(addr) = self.rendezvous.mesh_link_address(peer) {
                self.transmit(ctx, addr, &wm);
            }
        }
        // Dead-shard detection over the gossiped table. Dropping the mesh
        // link stops forwarding copies into a black hole; the housekeeping
        // announce (see `announce_mesh_links`) keeps probing the seed
        // address, so a revived rendezvous re-links automatically.
        let transitions = self
            .rebalance
            .tick(now.as_millis(), self.config.housekeeping_interval.as_millis());
        for transition in transitions {
            if let RebalanceEvent::ShardDead(rdv) = transition {
                // Keep (or create) the dead peer's load-table row before the
                // link goes: the address is what maps the peer back to its
                // ring position for adoption and for the operator report. A
                // rendezvous that died before its first report only ever
                // announced itself, so the row may not exist yet.
                if self.rendezvous.shard_load(rdv).is_none() {
                    if let Some(address) = self.rendezvous.mesh_link_address(rdv) {
                        self.rendezvous
                            .record_shard_load(rdv, address, LoadReport::default(), now);
                    }
                }
                self.rendezvous.remove_mesh_link(rdv);
                self.events.push(JxtaEvent::ShardDead { rdv });
            }
        }
    }

    fn handle_load_report(
        &mut self,
        ctx: &mut NodeContext<'_>,
        peer: PeerId,
        report: LoadReport,
        _reply_addr: Option<SimAddress>,
    ) {
        if !self.rendezvous.is_rendezvous() || peer == self.peer_id {
            return;
        }
        let now = ctx.now();
        if self.rendezvous.has_client(peer) {
            self.rendezvous.record_client_load(peer, report);
            return;
        }
        // Only peers we know as (possibly former) mesh links count as shard
        // entries — fellow rendezvous always hello before they report. A
        // report from anyone else is an edge whose lease was pruned while
        // the datagram was in flight; feeding it to the dead-shard detector
        // would later declare a phantom shard dead, so it is dropped.
        let address = self
            .rendezvous
            .mesh_link_address(peer)
            .or_else(|| self.rendezvous.shard_load(peer).map(|entry| entry.address));
        let Some(address) = address else { return };
        self.rendezvous.record_shard_load(peer, address, report, now);
        if let Some(RebalanceEvent::ShardRevived(rdv)) = self.rebalance.note_report(peer, now.as_millis()) {
            self.events.push(JxtaEvent::ShardRevived { rdv });
        }
    }

    // ------------------------------------------------------------------
    // internals: inbound dispatch
    // ------------------------------------------------------------------

    fn handle_wire_message(
        &mut self,
        ctx: &mut NodeContext<'_>,
        message: WireMessage,
        reply_addr: Option<SimAddress>,
    ) {
        match message {
            WireMessage::ResolverQuery(query) => self.handle_resolver_query(ctx, query),
            WireMessage::ResolverResponse(response) => self.handle_resolver_response(ctx, response),
            WireMessage::RendezvousConnect { peer } => self.handle_rdv_connect(ctx, peer, reply_addr),
            WireMessage::MeshLink { peer, ack } => self.handle_mesh_link(ctx, peer, ack, reply_addr),
            WireMessage::RendezvousLease {
                rdv,
                granted,
                lease_ms,
            } => self.handle_rdv_lease(ctx, rdv, granted, lease_ms, reply_addr),
            WireMessage::Publish { adv_xml, src_peer } => self.handle_publish(ctx, &adv_xml, src_peer),
            WireMessage::LoadReport { peer, report } => {
                self.handle_load_report(ctx, peer, report, reply_addr);
            }
            WireMessage::WireData(packet) => self.handle_wire_data(ctx, packet),
            WireMessage::Relay { dest, inner } => self.handle_relay(ctx, dest, inner),
        }
    }

    fn handle_rdv_connect(
        &mut self,
        ctx: &mut NodeContext<'_>,
        peer: PeerAdvertisement,
        reply_addr: Option<SimAddress>,
    ) {
        if !self.rendezvous.is_rendezvous() {
            return;
        }
        let lease = self
            .rendezvous
            .register_client(peer.peer_id, peer.endpoints.clone(), ctx.now());
        self.endpoint.learn_from_peer_adv(&peer);
        let fresh = self.discovery.absorb(vec![peer.clone().into()], ctx.now());
        for adv in fresh {
            self.events.push(JxtaEvent::AdvertisementDiscovered {
                adv,
                source: peer.peer_id,
            });
        }
        let response = WireMessage::RendezvousLease {
            rdv: self.peer_id,
            granted: true,
            lease_ms: lease.as_millis(),
        };
        let target = peer
            .endpoints
            .iter()
            .copied()
            .find(|a| self.local_transports.contains(&a.transport))
            .or(reply_addr);
        if let Some(addr) = target {
            self.transmit(ctx, addr, &response);
        }
    }

    fn handle_mesh_link(
        &mut self,
        ctx: &mut NodeContext<'_>,
        peer: PeerAdvertisement,
        ack: bool,
        reply_addr: Option<SimAddress>,
    ) {
        // Only rendezvous peers keep mesh links, and only with other
        // rendezvous peers (the advertisement carries the role flag).
        if !self.rendezvous.is_rendezvous() || !peer.is_rendezvous || peer.peer_id == self.peer_id {
            return;
        }
        let address = peer
            .endpoints
            .iter()
            .copied()
            .find(|a| self.local_transports.contains(&a.transport))
            .or(reply_addr);
        let Some(address) = address else { return };
        let fresh = self.rendezvous.add_mesh_link(peer.peer_id, address);
        self.endpoint.learn_from_peer_adv(&peer);
        // A mesh announcement is a liveness signal: it seeds the dead-shard
        // detector for peers that die before their first load report, and a
        // hello from a dead-declared peer is the revival signal itself.
        if let Some(RebalanceEvent::ShardRevived(rdv)) =
            self.rebalance.note_report(peer.peer_id, ctx.now().as_millis())
        {
            self.events.push(JxtaEvent::ShardRevived { rdv });
        }
        if fresh {
            self.events.push(JxtaEvent::MeshLinked { rdv: peer.peer_id });
        }
        if !ack {
            // Answer a hello with our own announcement so the link is
            // bidirectional; acks are never answered (no ping-pong).
            let response = WireMessage::MeshLink {
                peer: self.peer_advertisement(ctx),
                ack: true,
            };
            self.transmit(ctx, address, &response);
        }
    }

    fn handle_rdv_lease(
        &mut self,
        ctx: &mut NodeContext<'_>,
        rdv: PeerId,
        granted: bool,
        lease_ms: u64,
        reply_addr: Option<SimAddress>,
    ) {
        if !granted {
            return;
        }
        let Some(addr) = reply_addr else { return };
        self.rendezvous
            .set_connection(rdv, addr, SimDuration::from_millis(lease_ms), ctx.now());
        self.endpoint.learn_endpoints(rdv, vec![addr]);
        self.events.push(JxtaEvent::RendezvousConnected { rdv });
    }

    fn handle_publish(&mut self, ctx: &mut NodeContext<'_>, adv_xml: &str, src_peer: PeerId) {
        let Ok(adv) = AnyAdvertisement::parse(adv_xml) else {
            return;
        };
        if let Some(peer_adv) = adv.as_peer() {
            self.endpoint.learn_from_peer_adv(peer_adv);
        }
        let fresh = self.discovery.absorb(vec![adv.clone()], ctx.now());
        for adv in fresh {
            self.events.push(JxtaEvent::AdvertisementDiscovered {
                adv,
                source: src_peer,
            });
        }
        // Rendezvous peers index pushes and replicate them across the
        // rendezvous mesh (the SRDI model), so an advertisement published in
        // one shard is indexed by every rendezvous and any edge's query finds
        // it there. Pushes deliberately do NOT re-fan down to clients: that
        // would cost O(clients) per publish — O(peers²) when every starting
        // edge pushes its own advertisements — and edges pull what they need
        // through resolver queries anyway. The seen-window absorbs the echo a
        // mesh neighbour sends back.
        if self.rendezvous.is_rendezvous() {
            let push_instance = Uuid::derive(&format!("publish/{src_peer}/{adv_xml}"));
            if self.rendezvous.seen_before(push_instance, ctx.now()) {
                return;
            }
            let wm = WireMessage::Publish {
                adv_xml: adv_xml.to_owned(),
                src_peer,
            };
            for peer in self.rendezvous.mesh_link_ids() {
                if peer == src_peer {
                    continue;
                }
                if let Some(addr) = self.rendezvous.mesh_link_address(peer) {
                    self.transmit(ctx, addr, &wm);
                }
            }
        }
    }

    fn propagate_to_clients_only(
        &mut self,
        ctx: &mut NodeContext<'_>,
        wm: &WireMessage,
        exclude: Option<PeerId>,
    ) {
        // The fan-down loop of a rendezvous: one encode for the whole lease
        // table, shared per client, and one reusable target buffer instead
        // of cloning every lease.
        let encoded = wm.to_bytes();
        let mut targets = std::mem::take(&mut self.fanout_scratch);
        self.rendezvous
            .collect_client_targets(&self.local_transports, &mut targets);
        for &(peer, addr) in &targets {
            if Some(peer) == exclude {
                continue;
            }
            self.transmit_encoded(ctx, addr, &encoded);
        }
        self.fanout_scratch = targets;
    }

    fn handle_wire_data(&mut self, ctx: &mut NodeContext<'_>, packet: WirePacket) {
        // Wire traffic is deduplicated by the wire service's per-pipe
        // seen-window: copies of the same message arriving over several
        // propagation paths (direct, tree, gossip) are delivered and
        // forwarded at most once.
        let first_sight = !self.wire.seen_before(packet.pipe_id, packet.msg_id);
        let traced = self.tracer.is_some() && !packet.trace_ids.is_empty();
        let from_elsewhere = packet.src_peer != self.peer_id;
        if traced && from_elsewhere {
            self.record_spans(
                ctx.now(),
                &packet.trace_ids,
                SpanKind::WireIn {
                    from: trace_handle(packet.src_peer),
                },
            );
            if !first_sight {
                // This copy dies right here in the wire dedup window.
                self.record_spans(
                    ctx.now(),
                    &packet.trace_ids,
                    SpanKind::Dropped {
                        cause: DropCause::Duplicate,
                    },
                );
            }
        }
        if from_elsewhere && self.wire.has_input_pipe(packet.pipe_id) && first_sight {
            if let Ok(message) = Message::from_bytes(&packet.payload) {
                self.wire.note_received();
                if traced && !self.defer_delivery_spans {
                    self.record_spans(ctx.now(), &packet.trace_ids, SpanKind::Delivered);
                }
                self.events.push(JxtaEvent::WireMessageReceived {
                    pipe_id: packet.pipe_id,
                    src_peer: packet.src_peer,
                    message,
                });
            }
        }
        // On-receive forwarding is the strategy's decision: under direct
        // fan-out and the rendezvous tree only rendezvous peers fan copies
        // down their leases, and only the first-seen copy is forwarded;
        // gossip instead re-samples a fresh fanout for *every* received copy
        // (duplicates included, TTL-bounded) — that repetition is what
        // spreads a rumour past the first neighbourhood sample.
        let forward_this_copy = first_sight || self.wire.forwards_duplicates();
        if forward_this_copy && packet.ttl > 0 {
            let plan = self.wire.plan_forward(
                self.peer_id,
                &self.rendezvous,
                packet.src_peer,
                packet.ttl,
                ctx.rng(),
            );
            if plan.forward.is_empty() {
                return;
            }
            // A planted latency regression for validating the SLO watchdog:
            // the rendezvous stalls for 1.5 virtual seconds before fanning an
            // event down its forward plan. Every copy still arrives — the
            // delivery invariants stay green — but the p99 latency ceiling
            // does not. Test builds only, behind an off-by-default feature.
            #[cfg(feature = "latency-canary")]
            if self.rendezvous.is_rendezvous() {
                ctx.charge(simnet::SimDuration::from_millis(1500));
            }
            let forwarded = WireMessage::WireData(WirePacket {
                ttl: packet.ttl - 1,
                ..packet.clone()
            });
            // Encode the forwarded packet once; the fan-down of a 100k-client
            // shard then shares one buffer instead of re-running the codec
            // per member.
            let encoded = forwarded.to_bytes();
            let mut copies = 0;
            for peer in plan.forward {
                if let Some(addr) = self.wire_peer_address(peer, self.rendezvous.client_endpoints(peer)) {
                    self.transmit_encoded(ctx, addr, &encoded);
                    if traced && from_elsewhere {
                        self.record_spans(ctx.now(), &packet.trace_ids, self.classify_send(peer));
                    }
                    copies += 1;
                }
            }
            self.wire.note_forwarded(copies);
        } else if traced
            && from_elsewhere
            && first_sight
            && packet.ttl == 0
            && !self.wire.has_input_pipe(packet.pipe_id)
        {
            // The hop budget ran out at a peer that is not a listener: this
            // copy dies here without reaching anyone.
            self.record_spans(
                ctx.now(),
                &packet.trace_ids,
                SpanKind::Dropped {
                    cause: DropCause::TtlExhausted,
                },
            );
        }
    }

    fn handle_relay(&mut self, ctx: &mut NodeContext<'_>, dest: PeerId, inner: bytes::Bytes) {
        if dest == self.peer_id {
            if let Ok(inner_message) = WireMessage::from_bytes(&inner) {
                self.handle_wire_message(ctx, inner_message, None);
            }
            return;
        }
        // Forward if we know how to reach the destination; otherwise drop.
        let addr = self
            .rendezvous
            .client_endpoints(dest)
            .and_then(|eps| {
                eps.iter()
                    .copied()
                    .find(|a| self.local_transports.contains(&a.transport))
            })
            .or_else(|| self.endpoint.best_address(dest, &self.local_transports));
        if let Some(addr) = addr {
            let wm = WireMessage::Relay { dest, inner };
            self.transmit(ctx, addr, &wm);
        }
    }

    fn handle_resolver_query(&mut self, ctx: &mut NodeContext<'_>, query: ResolverQuery) {
        // The same query instance often arrives twice (subnet multicast plus
        // the rendezvous lease connection); the rendezvous seen-window
        // suppresses the duplicate so it is neither re-forwarded nor
        // re-answered. Retries use fresh query ids and pass through.
        let query_instance = Uuid::derive(&format!(
            "{}/{}/{}",
            query.handler, query.src_peer, query.query_id.0
        ));
        if self.rendezvous.seen_before(query_instance, ctx.now()) {
            return;
        }
        let handle_cost = self.jittered(ctx, self.config.costs.resolver_handle_fixed);
        ctx.charge(handle_cost);
        // Rendezvous peers forward queries onward (scoped by the hop budget)
        // — but a discovery (PDP) query whose threshold the local cache
        // already satisfies is answered from the cache instead of being
        // walked to every client. The walk exists to find advertisements the
        // rendezvous index lacks; once edges have remote-published their
        // advertisements the index answers everything and the per-round
        // query flood (O(clients) per query, O(clients²) per finder round)
        // disappears. Cold starts still flood and behave exactly as before.
        if self.rendezvous.is_rendezvous() && query.hops_left > 0 && self.should_walk_clients(ctx, &query) {
            let mut forwarded = query.clone();
            forwarded.hops_left -= 1;
            let wm = WireMessage::ResolverQuery(forwarded);
            self.propagate_to_clients_only(ctx, &wm, Some(query.src_peer));
        }
        let response_body = match query.handler.as_str() {
            handlers::PDP => self.answer_pdp(ctx, &query),
            handlers::PIP => self.answer_pip(ctx, &query),
            handlers::PMP => self.answer_pmp(ctx, &query),
            handlers::PBP => self.answer_pbp(ctx, &query),
            handlers::ERP => self.answer_erp(ctx, &query),
            _ => None,
        };
        if let Some(body) = response_body {
            let response = ResolverResponse::answering(&query, self.peer_id, body);
            let wm = WireMessage::ResolverResponse(response);
            self.send_to_peer(ctx, query.src_peer, &wm);
        }
    }

    /// Whether a rendezvous should walk (re-flood) a resolver query to its
    /// clients. Non-PDP queries always walk — their answers live on specific
    /// peers (pipe listeners, group authorities, ping targets), not in the
    /// rendezvous cache. PDP queries walk only while the local index knows
    /// *nothing* matching the filter: every remotely-published advertisement
    /// is replicated to every rendezvous via the mesh, so an empty result
    /// means the advertisement (if it exists) was only ever published
    /// locally on some edge — exactly the case the client walk exists for.
    fn should_walk_clients(&self, ctx: &NodeContext<'_>, query: &ResolverQuery) -> bool {
        if query.handler != handlers::PDP {
            return true;
        }
        let Ok(dq) = DiscoveryQuery::from_xml_string(&query.body) else {
            return true;
        };
        self.discovery.local(dq.kind, &dq.filter, ctx.now()).is_empty()
    }

    fn answer_pdp(&mut self, ctx: &mut NodeContext<'_>, query: &ResolverQuery) -> Option<String> {
        let dq = DiscoveryQuery::from_xml_string(&query.body).ok()?;
        // Learn about the requester from the advertisement it embedded.
        self.endpoint.learn_from_peer_adv(&dq.requester);
        let fresh = self
            .discovery
            .absorb(vec![dq.requester.clone().into()], ctx.now());
        for adv in fresh {
            self.events.push(JxtaEvent::AdvertisementDiscovered {
                adv,
                source: dq.requester.peer_id,
            });
        }
        let hits = self.discovery.answer(&dq, ctx.now());
        if hits.is_empty() {
            return None;
        }
        let my_adv = self.peer_advertisement(ctx);
        Some(DiscoveryResponse::new(dq.kind, hits, my_adv).to_xml_string())
    }

    fn answer_pip(&mut self, ctx: &mut NodeContext<'_>, query: &ResolverQuery) -> Option<String> {
        let ping = PingQuery::from_xml_string(&query.body).ok()?;
        if ping.target != self.peer_id {
            return None;
        }
        Some(self.info.snapshot(self.peer_id, ctx.now()).to_xml_string())
    }

    fn answer_pmp(&mut self, ctx: &mut NodeContext<'_>, query: &ResolverQuery) -> Option<String> {
        let mq = MembershipQuery::from_xml_string(&query.body).ok()?;
        if !self.membership.is_authority_for(mq.group_id) {
            return None;
        }
        let _ = ctx;
        let verdict = self.evaluate_membership(&mq);
        Some(
            MembershipResponse {
                group_id: mq.group_id,
                verdict,
            }
            .to_xml_string(),
        )
    }

    fn evaluate_membership(&mut self, query: &MembershipQuery) -> MembershipVerdict {
        match &query.op {
            MembershipOp::Apply => match self.membership.requirements(query.group_id) {
                Some(req) => MembershipVerdict::Requirements(req),
                None => MembershipVerdict::Rejected("unknown group".to_owned()),
            },
            MembershipOp::Join(credential) => {
                self.membership
                    .evaluate_join(query.group_id, query.applicant, credential)
            }
            MembershipOp::Renew => {
                if self
                    .membership
                    .admitted(query.group_id)
                    .contains(&query.applicant)
                {
                    MembershipVerdict::Accepted
                } else {
                    MembershipVerdict::Rejected("not a member".to_owned())
                }
            }
            MembershipOp::Leave => self.membership.evaluate_leave(query.group_id, query.applicant),
        }
    }

    fn answer_pbp(&mut self, ctx: &mut NodeContext<'_>, query: &ResolverQuery) -> Option<String> {
        let bind = PipeBindQuery::from_xml_string(&query.body).ok()?;
        if !self.wire.has_input_pipe(bind.pipe_id) {
            return None;
        }
        let endpoints = self.peer_advertisement(ctx).endpoints;
        Some(
            PipeBindResponse {
                pipe_id: bind.pipe_id,
                peer: self.peer_id,
                endpoints,
            }
            .to_xml_string(),
        )
    }

    fn answer_erp(&mut self, ctx: &mut NodeContext<'_>, query: &ResolverQuery) -> Option<String> {
        let rq = RouteQuery::from_xml_string(&query.body).ok()?;
        let _ = ctx;
        if rq.dest == self.peer_id {
            return None; // the requester already reached us; nothing to add
        }
        let known_endpoints = self
            .rendezvous
            .client_endpoints(rq.dest)
            .map(<[SimAddress]>::to_vec)
            .or_else(|| {
                self.endpoint
                    .best_address(rq.dest, &self.local_transports)
                    .map(|a| vec![a])
            })?;
        let route = if self.rendezvous.is_rendezvous() {
            crate::adv::RouteAdvertisement::via_relay(rq.dest, self.peer_id, known_endpoints)
        } else {
            crate::adv::RouteAdvertisement::direct(rq.dest, known_endpoints)
        };
        Some(RouteResponse { route }.to_xml_string())
    }

    fn handle_resolver_response(&mut self, ctx: &mut NodeContext<'_>, response: ResolverResponse) {
        match response.handler.as_str() {
            handlers::PDP => {
                if let Ok(dr) = DiscoveryResponse::from_xml_string(&response.body) {
                    self.endpoint.learn_from_peer_adv(&dr.responder);
                    let fresh = self.discovery.absorb_response(&dr, ctx.now());
                    for adv in fresh {
                        if let Some(peer_adv) = adv.as_peer() {
                            self.endpoint.learn_from_peer_adv(peer_adv);
                        }
                        self.events.push(JxtaEvent::AdvertisementDiscovered {
                            adv,
                            source: response.src_peer,
                        });
                    }
                }
            }
            handlers::PIP => {
                if let Ok(info) = PeerInfoResponse::from_xml_string(&response.body) {
                    self.events.push(JxtaEvent::PeerInfoReceived { info });
                }
            }
            handlers::PMP => {
                if let Ok(mr) = MembershipResponse::from_xml_string(&response.body) {
                    self.apply_membership_verdict(ctx.now(), mr.group_id, &mr.verdict);
                    self.events.push(JxtaEvent::MembershipResult {
                        group: mr.group_id,
                        verdict: mr.verdict,
                    });
                }
            }
            handlers::PBP => {
                if let Ok(bind) = PipeBindResponse::from_xml_string(&response.body) {
                    self.endpoint.learn_endpoints(bind.peer, bind.endpoints.clone());
                    self.wire
                        .output_pipe_mut(bind.pipe_id)
                        .bind(bind.peer, bind.endpoints);
                    self.events.push(JxtaEvent::PipeResolved {
                        pipe_id: bind.pipe_id,
                        peer: bind.peer,
                    });
                }
            }
            handlers::ERP => {
                if let Ok(rr) = RouteResponse::from_xml_string(&response.body) {
                    self.endpoint.learn_route(&rr.route);
                    self.events.push(JxtaEvent::RouteLearned { route: rr.route });
                }
            }
            _ => {}
        }
    }

    fn apply_membership_verdict(&mut self, now: SimTime, group: PeerGroupId, verdict: &MembershipVerdict) {
        match verdict {
            MembershipVerdict::Accepted => self.membership.set_state(group, MembershipState::Member, now),
            MembershipVerdict::Rejected(_) => {
                self.membership.set_state(group, MembershipState::Rejected, now);
            }
            MembershipVerdict::Requirements(_) => {
                self.membership.set_state(group, MembershipState::Applied, now);
            }
            MembershipVerdict::Left => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageElement;
    use crate::peergroup::PeerGroup;
    use simnet::{Datagram, Network, NetworkBuilder, NodeConfig, NodeId, SimNode, SubnetId, TimerToken};

    /// Minimal application node wrapping a bare `JxtaPeer`, used to exercise
    /// the platform end-to-end on a simulated network.
    struct TestApp {
        peer: JxtaPeer,
        events: Vec<JxtaEvent>,
    }

    impl TestApp {
        fn new(config: PeerConfig) -> Self {
            TestApp {
                peer: JxtaPeer::new(config.with_costs(CostModel::free())),
                events: Vec::new(),
            }
        }
        fn drain(&mut self) {
            self.events.extend(self.peer.take_events());
        }
    }

    impl SimNode for TestApp {
        fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
            self.peer.on_start(ctx);
            self.drain();
        }
        fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, dg: Datagram) {
            self.peer.on_datagram(ctx, &dg);
            self.drain();
        }
        fn on_timer(&mut self, ctx: &mut NodeContext<'_>, _token: TimerToken, tag: u64) {
            if is_jxta_timer(tag) {
                self.peer.on_timer(ctx, tag);
            }
            self.drain();
        }
        fn on_address_changed(&mut self, ctx: &mut NodeContext<'_>, old: SimAddress, new: SimAddress) {
            self.peer.on_address_changed(ctx, old, new);
            self.drain();
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// Builds a network with one rendezvous and `edges` edge peers, all on
    /// the same subnet, seeded to the rendezvous.
    fn build_network(edges: usize) -> (Network, NodeId, Vec<NodeId>) {
        let mut builder = NetworkBuilder::new(42);
        let rdv_id = builder.add_node(
            Box::new(TestApp::new(PeerConfig::rendezvous("rdv"))),
            NodeConfig::lan_peer(SubnetId(0)),
        );
        let mut net_partial = Vec::new();
        // The rendezvous is node 0 and gets host 10.0.0.1 / TCP 9701.
        let rdv_addr = SimAddress::new(TransportKind::Tcp, 0x0A00_0001, 9701);
        for i in 0..edges {
            let config = PeerConfig::edge(format!("edge-{i}")).with_seeds(vec![rdv_addr]);
            let id = builder.add_node(Box::new(TestApp::new(config)), NodeConfig::lan_peer(SubnetId(0)));
            net_partial.push(id);
        }
        (builder.build(), rdv_id, net_partial)
    }

    fn events_of(net: &Network, node: NodeId) -> Vec<JxtaEvent> {
        net.node_ref::<TestApp>(node).unwrap().events.clone()
    }

    #[test]
    fn edge_peers_obtain_rendezvous_leases() {
        let (mut net, rdv, edges) = build_network(2);
        net.run_for(SimDuration::from_secs(2));
        for edge in &edges {
            let connected = events_of(&net, *edge)
                .iter()
                .any(|e| matches!(e, JxtaEvent::RendezvousConnected { .. }));
            assert!(connected, "edge peer {edge} never connected to the rendezvous");
        }
        let rdv_app = net.node_ref::<TestApp>(rdv).unwrap();
        assert_eq!(rdv_app.peer.rendezvous().counters().2, 2);
    }

    #[test]
    fn remote_discovery_finds_advertisements_published_elsewhere() {
        let (mut net, _rdv, edges) = build_network(2);
        net.run_for(SimDuration::from_secs(2));
        let publisher = edges[0];
        let searcher = edges[1];

        // The publisher creates and remote-publishes a ps- group advertisement.
        let group = PeerGroup::for_event_type("SkiRental", PeerId::derive("edge-0"));
        net.invoke::<TestApp, _>(publisher, |app, ctx| {
            app.peer.author_group(ctx, group.advertisement());
        });
        // The searcher issues a remote discovery query for ps-* groups.
        net.invoke::<TestApp, _>(searcher, |app, ctx| {
            app.peer
                .discover_remote(ctx, AdvKind::Group, SearchFilter::by_name("ps-*"), 10);
        });
        net.run_for(SimDuration::from_secs(5));

        let found = events_of(&net, searcher).iter().any(|e| match e {
            JxtaEvent::AdvertisementDiscovered { adv, .. } => adv.display_name() == "ps-SkiRental",
            _ => false,
        });
        assert!(
            found,
            "searcher never discovered the ps-SkiRental group advertisement"
        );
    }

    #[test]
    fn wire_pipe_resolution_and_publication_deliver_events() {
        let (mut net, _rdv, edges) = build_network(2);
        net.run_for(SimDuration::from_secs(2));
        let subscriber = edges[0];
        let publisher = edges[1];
        let group = PeerGroup::for_event_type("SkiRental", PeerId::derive("edge-1"));
        let pipe = group.wire_pipe().unwrap().clone();

        net.invoke::<TestApp, _>(subscriber, |app, ctx| {
            app.peer.create_wire_input_pipe(ctx, &pipe);
        });
        net.invoke::<TestApp, _>(publisher, |app, ctx| {
            app.peer.resolve_wire_output_pipe(ctx, &pipe);
        });
        net.run_for(SimDuration::from_secs(5));

        // The publisher resolved the subscriber as a listener.
        let resolved = events_of(&net, publisher)
            .iter()
            .any(|e| matches!(e, JxtaEvent::PipeResolved { .. }));
        assert!(resolved, "output pipe never resolved a listener");
        assert_eq!(
            net.node_ref::<TestApp>(publisher)
                .unwrap()
                .peer
                .wire_listener_count(pipe.pipe_id),
            1
        );

        // Publishing reaches the subscriber.
        let mut message = Message::new();
        message.add(MessageElement::text("app", "offer", "Salomon, 14 CHF/day"));
        let sent = net.invoke::<TestApp, _>(publisher, |app, ctx| {
            app.peer.wire_send(ctx, pipe.pipe_id, &message).unwrap()
        });
        assert_eq!(sent, 1);
        net.run_for(SimDuration::from_secs(3));
        let received = events_of(&net, subscriber).iter().any(|e| match e {
            JxtaEvent::WireMessageReceived { message: m, .. } => {
                m.element_text("app", "offer").as_deref() == Some("Salomon, 14 CHF/day")
            }
            _ => false,
        });
        assert!(received, "subscriber never received the wire message");
    }

    #[test]
    fn membership_join_against_remote_authority() {
        let (mut net, _rdv, edges) = build_network(2);
        net.run_for(SimDuration::from_secs(2));
        let authority = edges[0];
        let applicant = edges[1];
        let group = PeerGroup::for_event_type("Private", PeerId::derive("edge-0"));

        net.invoke::<TestApp, _>(authority, |app, ctx| {
            app.peer.author_group(ctx, group.advertisement());
        });
        // The applicant needs to know the authority's endpoints; discovery
        // via the rendezvous provides them.
        net.invoke::<TestApp, _>(applicant, |app, ctx| {
            app.peer
                .discover_remote(ctx, AdvKind::Peer, SearchFilter::any(), 10);
        });
        net.run_for(SimDuration::from_secs(3));
        net.invoke::<TestApp, _>(applicant, |app, ctx| {
            app.peer
                .membership_join(ctx, group.advertisement(), Credential::None);
        });
        net.run_for(SimDuration::from_secs(3));

        let accepted = events_of(&net, applicant).iter().any(|e| {
            matches!(
                e,
                JxtaEvent::MembershipResult {
                    verdict: MembershipVerdict::Accepted,
                    ..
                }
            )
        });
        assert!(accepted, "membership join was never accepted");
        assert!(net
            .node_ref::<TestApp>(applicant)
            .unwrap()
            .peer
            .membership()
            .is_member(group.group_id()));
    }

    #[test]
    fn peer_info_query_returns_uptime() {
        let (mut net, rdv, edges) = build_network(1);
        net.run_for(SimDuration::from_secs(2));
        let asker = edges[0];
        let rdv_peer_id = net.node_ref::<TestApp>(rdv).unwrap().peer.peer_id();
        net.invoke::<TestApp, _>(asker, |app, ctx| {
            app.peer.query_peer_info(ctx, rdv_peer_id);
        });
        net.run_for(SimDuration::from_secs(2));
        let info = events_of(&net, asker).iter().find_map(|e| match e {
            JxtaEvent::PeerInfoReceived { info } => Some(info.clone()),
            _ => None,
        });
        let info = info.expect("no PIP response received");
        assert_eq!(info.peer, rdv_peer_id);
        assert!(info.messages_received > 0);
    }

    #[test]
    fn housekeeping_timer_keeps_running() {
        let (mut net, rdv, _edges) = build_network(0);
        net.run_until(SimTime::from_secs(120));
        // After two minutes the housekeeping timer has fired several times.
        assert!(net.stats_of(rdv).timers_fired >= 3);
    }

    #[test]
    fn shard_ring_truncates_to_the_configured_mesh_shards() {
        // The edge failover walks `seeds[(home + attempts) % mesh_shards]`,
        // so the adoption ring must stop at the same boundary: rendezvous
        // beyond the shard count never serve a hash range.
        let seeds: Vec<SimAddress> = (0..3)
            .map(|i| SimAddress::new(TransportKind::Tcp, 0x0A00_0010 + i, 9701))
            .collect();
        let meshy = JxtaPeer::new(
            PeerConfig::rendezvous("rdv-extra")
                .with_seeds(seeds.clone())
                .with_dissemination(dissem::DisseminationConfig::rendezvous_mesh(2)),
        );
        assert_eq!(meshy.shard_ring(), seeds[..2].to_vec());
        let tree = JxtaPeer::new(
            PeerConfig::rendezvous("rdv-tree")
                .with_seeds(seeds.clone())
                .with_dissemination(dissem::DisseminationConfig::rendezvous_tree()),
        );
        assert_eq!(tree.shard_ring(), seeds, "non-mesh strategies keep the full ring");
    }

    #[test]
    fn wire_send_without_output_pipe_errors() {
        let (mut net, _rdv, edges) = build_network(1);
        net.run_for(SimDuration::from_secs(1));
        let publisher = edges[0];
        let err = net.invoke::<TestApp, _>(publisher, |app, ctx| {
            app.peer.wire_send(ctx, PipeId::derive("nope"), &Message::new())
        });
        assert!(matches!(err, Err(JxtaError::UnknownPipe(_))));
    }
}
