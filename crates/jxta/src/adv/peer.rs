//! Peer advertisements.

use super::{AdvKind, AdvParseError, Advertisement};
use crate::id::{PeerGroupId, PeerId};
use crate::xml::XmlElement;
use simnet::SimAddress;

/// Advertises a peer: its id, name, group membership, current transport
/// endpoints and whether it offers rendezvous service.
///
/// The endpoint list is what the Pipe Binding Protocol and the Endpoint
/// Routing Protocol consult to reach the peer; re-publishing the
/// advertisement after an address change is how peers stay reachable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerAdvertisement {
    /// The peer's stable identifier.
    pub peer_id: PeerId,
    /// A human-readable peer name.
    pub name: String,
    /// The peer group this advertisement was published in.
    pub group_id: PeerGroupId,
    /// The peer's current transport addresses.
    pub endpoints: Vec<SimAddress>,
    /// Whether this peer acts as a rendezvous (and relay/router).
    pub is_rendezvous: bool,
    /// Free-form description.
    pub description: String,
}

impl PeerAdvertisement {
    /// Creates a peer advertisement with no endpoints.
    pub fn new(peer_id: PeerId, name: impl Into<String>, group_id: PeerGroupId) -> Self {
        PeerAdvertisement {
            peer_id,
            name: name.into(),
            group_id,
            endpoints: Vec::new(),
            is_rendezvous: false,
            description: String::new(),
        }
    }

    /// Builder-style endpoint list override.
    pub fn with_endpoints(mut self, endpoints: Vec<SimAddress>) -> Self {
        self.endpoints = endpoints;
        self
    }

    /// Builder-style rendezvous flag.
    pub fn with_rendezvous(mut self, is_rendezvous: bool) -> Self {
        self.is_rendezvous = is_rendezvous;
        self
    }

    /// The first endpoint for the given transport, if advertised.
    pub fn endpoint_for(&self, transport: simnet::TransportKind) -> Option<SimAddress> {
        self.endpoints.iter().copied().find(|a| a.transport == transport)
    }
}

impl Advertisement for PeerAdvertisement {
    const ROOT: &'static str = "jxta:PeerAdvertisement";

    fn kind(&self) -> AdvKind {
        AdvKind::Peer
    }

    fn unique_key(&self) -> String {
        self.peer_id.to_string()
    }

    fn display_name(&self) -> String {
        self.name.clone()
    }

    fn to_xml(&self) -> XmlElement {
        let mut root = XmlElement::new(Self::ROOT)
            .text_child("Pid", self.peer_id.to_string())
            .text_child("Name", self.name.clone())
            .text_child("Gid", self.group_id.to_string())
            .text_child("Rdv", if self.is_rendezvous { "true" } else { "false" })
            .text_child("Desc", self.description.clone());
        let mut endpoints = XmlElement::new("Endpoints");
        for addr in &self.endpoints {
            endpoints.push_child(XmlElement::with_text("Addr", addr.to_string()));
        }
        root.push_child(endpoints);
        root
    }

    fn from_xml(xml: &XmlElement) -> Result<Self, AdvParseError> {
        if xml.name != Self::ROOT {
            return Err(AdvParseError::new(format!("expected {} root", Self::ROOT)));
        }
        let peer_id = xml
            .child_text("Pid")
            .ok_or_else(|| AdvParseError::new("peer advertisement missing <Pid>"))?
            .parse()
            .map_err(|e| AdvParseError::new(format!("bad peer id: {e}")))?;
        let group_id = xml
            .child_text("Gid")
            .ok_or_else(|| AdvParseError::new("peer advertisement missing <Gid>"))?
            .parse()
            .map_err(|e| AdvParseError::new(format!("bad group id: {e}")))?;
        let name = xml.child_text_or_empty("Name").to_owned();
        let description = xml.child_text_or_empty("Desc").to_owned();
        let is_rendezvous = xml.child_text_or_empty("Rdv") == "true";
        let mut endpoints = Vec::new();
        if let Some(eps) = xml.first_child("Endpoints") {
            for addr in eps.children_named("Addr") {
                let parsed: SimAddress = addr
                    .text
                    .trim()
                    .parse()
                    .map_err(|e| AdvParseError::new(format!("bad endpoint address: {e}")))?;
                endpoints.push(parsed);
            }
        }
        Ok(PeerAdvertisement {
            peer_id,
            name,
            group_id,
            endpoints,
            is_rendezvous,
            description,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use simnet::TransportKind;

    fn sample() -> PeerAdvertisement {
        let mut rng = StdRng::seed_from_u64(5);
        PeerAdvertisement::new(PeerId::generate(&mut rng), "alice", PeerGroupId::world())
            .with_endpoints(vec![
                SimAddress::new(TransportKind::Tcp, 0x0A000001, 9701),
                SimAddress::new(TransportKind::Http, 0x0A000001, 9702),
            ])
            .with_rendezvous(true)
    }

    #[test]
    fn xml_roundtrip_preserves_endpoints() {
        let adv = sample();
        let parsed = PeerAdvertisement::from_xml(&adv.to_xml()).unwrap();
        assert_eq!(parsed, adv);
        assert_eq!(parsed.endpoints.len(), 2);
        assert!(parsed.is_rendezvous);
    }

    #[test]
    fn endpoint_lookup_by_transport() {
        let adv = sample();
        assert!(adv.endpoint_for(TransportKind::Tcp).is_some());
        assert!(adv.endpoint_for(TransportKind::Bluetooth).is_none());
    }

    #[test]
    fn parse_rejects_missing_or_bad_fields() {
        let bad = XmlElement::new(PeerAdvertisement::ROOT).text_child("Name", "x");
        assert!(PeerAdvertisement::from_xml(&bad).is_err());
        let mut adv = sample().to_xml();
        // Corrupt the first endpoint address in place.
        let endpoints = adv.children.iter_mut().find(|c| c.name == "Endpoints").unwrap();
        endpoints.children[0].text = "not an address".to_owned();
        assert!(PeerAdvertisement::from_xml(&adv).is_err());
    }

    #[test]
    fn unique_key_is_peer_id() {
        let adv = sample();
        assert_eq!(adv.unique_key(), adv.peer_id.to_string());
        assert_eq!(adv.kind(), AdvKind::Peer);
    }
}
