//! Module implementation advertisements.

use super::{AdvKind, AdvParseError, Advertisement};
use crate::id::ModuleId;
use crate::xml::XmlElement;

/// Advertises an implementation of a module (a loadable service/"codat"
/// implementation in JXTA terms).
///
/// The reproduction uses this mainly for completeness of the advertisement
/// factory and the `getGroupImpl`/`setGroupImpl` plumbing of the paper's
/// `AdvertisementsCreator`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleImplAdvertisement {
    /// The module's identifier.
    pub module_id: ModuleId,
    /// Human-readable description.
    pub description: String,
    /// A code reference (class/crate name).
    pub code: String,
}

impl ModuleImplAdvertisement {
    /// Creates a module implementation advertisement.
    pub fn new(module_id: ModuleId, description: impl Into<String>, code: impl Into<String>) -> Self {
        ModuleImplAdvertisement {
            module_id,
            description: description.into(),
            code: code.into(),
        }
    }
}

impl Advertisement for ModuleImplAdvertisement {
    const ROOT: &'static str = "jxta:ModuleImplAdvertisement";

    fn kind(&self) -> AdvKind {
        AdvKind::Adv
    }

    fn unique_key(&self) -> String {
        format!("module:{}", self.module_id)
    }

    fn display_name(&self) -> String {
        self.code.clone()
    }

    fn to_xml(&self) -> XmlElement {
        XmlElement::new(Self::ROOT)
            .text_child("Mid", self.module_id.to_string())
            .text_child("Desc", self.description.clone())
            .text_child("Code", self.code.clone())
    }

    fn from_xml(xml: &XmlElement) -> Result<Self, AdvParseError> {
        if xml.name != Self::ROOT {
            return Err(AdvParseError::new(format!("expected {} root", Self::ROOT)));
        }
        let module_id = xml
            .child_text("Mid")
            .ok_or_else(|| AdvParseError::new("module advertisement missing <Mid>"))?
            .parse()
            .map_err(|e| AdvParseError::new(format!("bad module id: {e}")))?;
        Ok(ModuleImplAdvertisement {
            module_id,
            description: xml.child_text_or_empty("Desc").to_owned(),
            code: xml.child_text_or_empty("Code").to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let adv = ModuleImplAdvertisement::new(
            ModuleId::derive("wire"),
            "wire service impl",
            "jxta::services::wire",
        );
        let parsed = ModuleImplAdvertisement::from_xml(&adv.to_xml()).unwrap();
        assert_eq!(parsed, adv);
        assert_eq!(parsed.kind(), AdvKind::Adv);
        assert_eq!(parsed.display_name(), "jxta::services::wire");
    }

    #[test]
    fn rejects_missing_module_id() {
        let bad = XmlElement::new(ModuleImplAdvertisement::ROOT).text_child("Code", "x");
        assert!(ModuleImplAdvertisement::from_xml(&bad).is_err());
    }
}
