//! Advertisements: the XML documents JXTA peers publish to describe
//! resources (peers, pipes, peer groups, services, routes, modules).
//!
//! Every advertisement can be serialised to XML and parsed back, carries a
//! *unique key* used by caches and by the paper's `findAdvertisement`
//! duplicate check, and is aged out of caches after its lifetime expires.

mod group;
mod module_impl;
mod peer;
mod pipe;
mod route;
mod service;

pub use group::{MembershipPolicy, PeerGroupAdvertisement};
pub use module_impl::ModuleImplAdvertisement;
pub use peer::PeerAdvertisement;
pub use pipe::{PipeAdvertisement, PipeType};
pub use route::RouteAdvertisement;
pub use service::ServiceAdvertisement;

use crate::xml::XmlElement;
use std::fmt;

/// The discovery category an advertisement belongs to, mirroring JXTA's
/// `Discovery.PEER` / `Discovery.GROUP` / `Discovery.ADV` constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AdvKind {
    /// Peer advertisements (`Discovery.PEER`).
    Peer,
    /// Peer group advertisements (`Discovery.GROUP`).
    Group,
    /// Everything else — pipes, services, routes, modules (`Discovery.ADV`).
    Adv,
}

impl AdvKind {
    /// All kinds, in the order JXTA enumerates them.
    pub const ALL: [AdvKind; 3] = [AdvKind::Peer, AdvKind::Group, AdvKind::Adv];
}

impl fmt::Display for AdvKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AdvKind::Peer => "PEER",
            AdvKind::Group => "GROUP",
            AdvKind::Adv => "ADV",
        };
        f.write_str(s)
    }
}

/// Error returned when an advertisement cannot be parsed from XML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdvParseError {
    /// Human-readable description of what was wrong.
    pub reason: String,
}

impl AdvParseError {
    pub(crate) fn new(reason: impl Into<String>) -> Self {
        AdvParseError {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for AdvParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid advertisement: {}", self.reason)
    }
}

impl std::error::Error for AdvParseError {}

/// Behaviour common to all advertisement types.
pub trait Advertisement: Sized + Clone {
    /// The XML root element name of this advertisement type.
    const ROOT: &'static str;

    /// The discovery category this advertisement belongs to.
    fn kind(&self) -> AdvKind;

    /// A key that identifies "the same" advertisement across re-publications
    /// (typically the resource id); used for de-duplication in caches.
    fn unique_key(&self) -> String;

    /// The human-readable name carried by the advertisement, if any.
    fn display_name(&self) -> String;

    /// Serialises to an XML element tree.
    fn to_xml(&self) -> XmlElement;

    /// Parses from an XML element tree.
    ///
    /// # Errors
    ///
    /// Returns [`AdvParseError`] if required children are missing or ids do
    /// not parse.
    fn from_xml(xml: &XmlElement) -> Result<Self, AdvParseError>;
}

/// A type-erased advertisement, as stored in caches and carried in messages.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyAdvertisement {
    /// A peer advertisement.
    Peer(PeerAdvertisement),
    /// A peer group advertisement.
    Group(PeerGroupAdvertisement),
    /// A pipe advertisement.
    Pipe(PipeAdvertisement),
    /// A service advertisement.
    Service(ServiceAdvertisement),
    /// A route advertisement.
    Route(RouteAdvertisement),
    /// A module implementation advertisement.
    ModuleImpl(ModuleImplAdvertisement),
}

impl AnyAdvertisement {
    /// The discovery category of the wrapped advertisement.
    pub fn kind(&self) -> AdvKind {
        match self {
            AnyAdvertisement::Peer(a) => a.kind(),
            AnyAdvertisement::Group(a) => a.kind(),
            AnyAdvertisement::Pipe(a) => a.kind(),
            AnyAdvertisement::Service(a) => a.kind(),
            AnyAdvertisement::Route(a) => a.kind(),
            AnyAdvertisement::ModuleImpl(a) => a.kind(),
        }
    }

    /// The duplicate-suppression key of the wrapped advertisement.
    pub fn unique_key(&self) -> String {
        match self {
            AnyAdvertisement::Peer(a) => a.unique_key(),
            AnyAdvertisement::Group(a) => a.unique_key(),
            AnyAdvertisement::Pipe(a) => a.unique_key(),
            AnyAdvertisement::Service(a) => a.unique_key(),
            AnyAdvertisement::Route(a) => a.unique_key(),
            AnyAdvertisement::ModuleImpl(a) => a.unique_key(),
        }
    }

    /// The display name of the wrapped advertisement.
    pub fn display_name(&self) -> String {
        match self {
            AnyAdvertisement::Peer(a) => a.display_name(),
            AnyAdvertisement::Group(a) => a.display_name(),
            AnyAdvertisement::Pipe(a) => a.display_name(),
            AnyAdvertisement::Service(a) => a.display_name(),
            AnyAdvertisement::Route(a) => a.display_name(),
            AnyAdvertisement::ModuleImpl(a) => a.display_name(),
        }
    }

    /// Serialises the wrapped advertisement to an XML string.
    pub fn to_xml_string(&self) -> String {
        match self {
            AnyAdvertisement::Peer(a) => a.to_xml().to_xml(),
            AnyAdvertisement::Group(a) => a.to_xml().to_xml(),
            AnyAdvertisement::Pipe(a) => a.to_xml().to_xml(),
            AnyAdvertisement::Service(a) => a.to_xml().to_xml(),
            AnyAdvertisement::Route(a) => a.to_xml().to_xml(),
            AnyAdvertisement::ModuleImpl(a) => a.to_xml().to_xml(),
        }
    }

    /// Parses an advertisement of any known type from an XML string,
    /// dispatching on the root element name (the JXTA `AdvertisementFactory`).
    ///
    /// # Errors
    ///
    /// Returns [`AdvParseError`] on malformed XML or an unknown root element.
    pub fn parse(xml_text: &str) -> Result<AnyAdvertisement, AdvParseError> {
        let xml = XmlElement::parse(xml_text).map_err(|e| AdvParseError::new(format!("xml error: {e}")))?;
        Self::from_xml(&xml)
    }

    /// Parses an advertisement of any known type from an XML element.
    pub fn from_xml(xml: &XmlElement) -> Result<AnyAdvertisement, AdvParseError> {
        match xml.name.as_str() {
            PeerAdvertisement::ROOT => Ok(AnyAdvertisement::Peer(PeerAdvertisement::from_xml(xml)?)),
            PeerGroupAdvertisement::ROOT => {
                Ok(AnyAdvertisement::Group(PeerGroupAdvertisement::from_xml(xml)?))
            }
            PipeAdvertisement::ROOT => Ok(AnyAdvertisement::Pipe(PipeAdvertisement::from_xml(xml)?)),
            ServiceAdvertisement::ROOT => Ok(AnyAdvertisement::Service(ServiceAdvertisement::from_xml(xml)?)),
            RouteAdvertisement::ROOT => Ok(AnyAdvertisement::Route(RouteAdvertisement::from_xml(xml)?)),
            ModuleImplAdvertisement::ROOT => Ok(AnyAdvertisement::ModuleImpl(
                ModuleImplAdvertisement::from_xml(xml)?,
            )),
            other => Err(AdvParseError::new(format!(
                "unknown advertisement root <{other}>"
            ))),
        }
    }

    /// Returns the wrapped peer advertisement, if this is one.
    pub fn as_peer(&self) -> Option<&PeerAdvertisement> {
        match self {
            AnyAdvertisement::Peer(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the wrapped peer group advertisement, if this is one.
    pub fn as_group(&self) -> Option<&PeerGroupAdvertisement> {
        match self {
            AnyAdvertisement::Group(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the wrapped pipe advertisement, if this is one.
    pub fn as_pipe(&self) -> Option<&PipeAdvertisement> {
        match self {
            AnyAdvertisement::Pipe(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the wrapped route advertisement, if this is one.
    pub fn as_route(&self) -> Option<&RouteAdvertisement> {
        match self {
            AnyAdvertisement::Route(a) => Some(a),
            _ => None,
        }
    }
}

impl From<PeerAdvertisement> for AnyAdvertisement {
    fn from(a: PeerAdvertisement) -> Self {
        AnyAdvertisement::Peer(a)
    }
}
impl From<PeerGroupAdvertisement> for AnyAdvertisement {
    fn from(a: PeerGroupAdvertisement) -> Self {
        AnyAdvertisement::Group(a)
    }
}
impl From<PipeAdvertisement> for AnyAdvertisement {
    fn from(a: PipeAdvertisement) -> Self {
        AnyAdvertisement::Pipe(a)
    }
}
impl From<ServiceAdvertisement> for AnyAdvertisement {
    fn from(a: ServiceAdvertisement) -> Self {
        AnyAdvertisement::Service(a)
    }
}
impl From<RouteAdvertisement> for AnyAdvertisement {
    fn from(a: RouteAdvertisement) -> Self {
        AnyAdvertisement::Route(a)
    }
}
impl From<ModuleImplAdvertisement> for AnyAdvertisement {
    fn from(a: ModuleImplAdvertisement) -> Self {
        AnyAdvertisement::ModuleImpl(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{PeerGroupId, PeerId, PipeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn factory_dispatches_on_root_element() {
        let mut rng = StdRng::seed_from_u64(1);
        let pipe = PipeAdvertisement::new(PipeId::generate(&mut rng), "SkiRental", PipeType::JxtaWire);
        let any: AnyAdvertisement = pipe.clone().into();
        let text = any.to_xml_string();
        let parsed = AnyAdvertisement::parse(&text).unwrap();
        assert_eq!(parsed, any);
        assert_eq!(parsed.as_pipe().unwrap().name, "SkiRental");
        assert_eq!(parsed.kind(), AdvKind::Adv);
    }

    #[test]
    fn factory_rejects_unknown_roots() {
        let err = AnyAdvertisement::parse("<Mystery/>").unwrap_err();
        assert!(err.to_string().contains("Mystery"));
        assert!(AnyAdvertisement::parse("<<<").is_err());
    }

    #[test]
    fn unique_keys_differ_between_kinds() {
        let mut rng = StdRng::seed_from_u64(2);
        let peer = PeerAdvertisement::new(PeerId::generate(&mut rng), "alice", PeerGroupId::world());
        let group =
            PeerGroupAdvertisement::new(PeerGroupId::generate(&mut rng), "ps-SkiRental", peer.peer_id);
        let any_peer: AnyAdvertisement = peer.into();
        let any_group: AnyAdvertisement = group.into();
        assert_ne!(any_peer.unique_key(), any_group.unique_key());
        assert_eq!(any_peer.kind(), AdvKind::Peer);
        assert_eq!(any_group.kind(), AdvKind::Group);
        assert!(any_group.as_peer().is_none());
        assert!(any_group.as_group().is_some());
    }

    #[test]
    fn kinds_display_like_jxta_constants() {
        assert_eq!(AdvKind::Peer.to_string(), "PEER");
        assert_eq!(AdvKind::Group.to_string(), "GROUP");
        assert_eq!(AdvKind::Adv.to_string(), "ADV");
        assert_eq!(AdvKind::ALL.len(), 3);
    }
}
