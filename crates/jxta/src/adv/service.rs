//! Service advertisements.

use super::{AdvKind, AdvParseError, Advertisement, PipeAdvertisement};
use crate::xml::XmlElement;

/// Advertises a service offered inside a peer group (the paper's
/// `ServiceAdvertisement`, lines 27–44 of its `AdvertisementsCreator`).
///
/// The wire service advertisement embeds the [`PipeAdvertisement`] of the
/// many-to-many pipe it communicates over — this is exactly the structure the
/// ski-rental application builds by hand when bypassing TPS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceAdvertisement {
    /// Service name (e.g. `"jxta.service.wire"`).
    pub name: String,
    /// Service version string.
    pub version: String,
    /// Documentation / implementation URI.
    pub uri: String,
    /// Code reference (class name in JXTA; a module name here).
    pub code: String,
    /// Security annotation.
    pub security: String,
    /// Searchable keywords (the paper stores the pipe/type name here).
    pub keywords: String,
    /// Extra string parameters (the resolver service stores peer ids here).
    pub params: Vec<String>,
    /// The pipe the service communicates over, if any.
    pub pipe: Option<PipeAdvertisement>,
}

impl ServiceAdvertisement {
    /// Creates a minimally-populated service advertisement.
    pub fn new(name: impl Into<String>) -> Self {
        ServiceAdvertisement {
            name: name.into(),
            version: "1.0".to_owned(),
            uri: String::new(),
            code: String::new(),
            security: String::new(),
            keywords: String::new(),
            params: Vec::new(),
            pipe: None,
        }
    }

    /// Builder-style pipe advertisement attachment.
    pub fn with_pipe(mut self, pipe: PipeAdvertisement) -> Self {
        self.pipe = Some(pipe);
        self
    }

    /// Builder-style keyword override.
    pub fn with_keywords(mut self, keywords: impl Into<String>) -> Self {
        self.keywords = keywords.into();
        self
    }

    /// Builder-style version override.
    pub fn with_version(mut self, version: impl Into<String>) -> Self {
        self.version = version.into();
        self
    }

    /// Appends a parameter (e.g. the local peer id for the resolver service).
    pub fn push_param(&mut self, param: impl Into<String>) {
        self.params.push(param.into());
    }
}

impl Advertisement for ServiceAdvertisement {
    const ROOT: &'static str = "jxta:ServiceAdvertisement";

    fn kind(&self) -> AdvKind {
        AdvKind::Adv
    }

    fn unique_key(&self) -> String {
        match &self.pipe {
            Some(pipe) => format!("svc:{}:{}", self.name, pipe.pipe_id),
            None => format!("svc:{}", self.name),
        }
    }

    fn display_name(&self) -> String {
        self.name.clone()
    }

    fn to_xml(&self) -> XmlElement {
        let mut root = XmlElement::new(Self::ROOT)
            .text_child("Name", self.name.clone())
            .text_child("Version", self.version.clone())
            .text_child("Uri", self.uri.clone())
            .text_child("Code", self.code.clone())
            .text_child("Security", self.security.clone())
            .text_child("Keywords", self.keywords.clone());
        let mut params = XmlElement::new("Params");
        for p in &self.params {
            params.push_child(XmlElement::with_text("Param", p.clone()));
        }
        root.push_child(params);
        if let Some(pipe) = &self.pipe {
            root.push_child(pipe.to_xml());
        }
        root
    }

    fn from_xml(xml: &XmlElement) -> Result<Self, AdvParseError> {
        if xml.name != Self::ROOT {
            return Err(AdvParseError::new(format!("expected {} root", Self::ROOT)));
        }
        let name = xml
            .child_text("Name")
            .ok_or_else(|| AdvParseError::new("service advertisement missing <Name>"))?
            .to_owned();
        let mut adv = ServiceAdvertisement::new(name);
        adv.version = xml.child_text_or_empty("Version").to_owned();
        adv.uri = xml.child_text_or_empty("Uri").to_owned();
        adv.code = xml.child_text_or_empty("Code").to_owned();
        adv.security = xml.child_text_or_empty("Security").to_owned();
        adv.keywords = xml.child_text_or_empty("Keywords").to_owned();
        if let Some(params) = xml.first_child("Params") {
            for p in params.children_named("Param") {
                adv.params.push(p.text.trim().to_owned());
            }
        }
        if let Some(pipe_xml) = xml.first_child(PipeAdvertisement::ROOT) {
            adv.pipe = Some(PipeAdvertisement::from_xml(pipe_xml)?);
        }
        Ok(adv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adv::PipeType;
    use crate::id::PipeId;

    #[test]
    fn xml_roundtrip_with_embedded_pipe() {
        let pipe = PipeAdvertisement::new(PipeId::derive("ski"), "SkiRental", PipeType::JxtaWire);
        let mut adv = ServiceAdvertisement::new("jxta.service.wire")
            .with_pipe(pipe)
            .with_keywords("SkiRental")
            .with_version("2.0");
        adv.push_param("urn:jxta:peer-deadbeef");
        let parsed = ServiceAdvertisement::from_xml(&adv.to_xml()).unwrap();
        assert_eq!(parsed, adv);
        assert_eq!(parsed.pipe.as_ref().unwrap().name, "SkiRental");
        assert_eq!(parsed.params.len(), 1);
    }

    #[test]
    fn unique_key_differs_with_and_without_pipe() {
        let bare = ServiceAdvertisement::new("jxta.service.resolver");
        let piped = ServiceAdvertisement::new("jxta.service.resolver").with_pipe(PipeAdvertisement::new(
            PipeId::derive("p"),
            "p",
            PipeType::JxtaUnicast,
        ));
        assert_ne!(bare.unique_key(), piped.unique_key());
    }

    #[test]
    fn parse_rejects_missing_name() {
        let bad = XmlElement::new(ServiceAdvertisement::ROOT).text_child("Version", "1.0");
        assert!(ServiceAdvertisement::from_xml(&bad).is_err());
    }
}
