//! Pipe advertisements.

use super::{AdvKind, AdvParseError, Advertisement};
use crate::id::PipeId;
use crate::xml::XmlElement;
use std::fmt;
use std::str::FromStr;

/// The kind of pipe an advertisement describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipeType {
    /// Asynchronous, unreliable, one-to-one pipe (the JXTA default).
    JxtaUnicast,
    /// One-to-many propagated pipe.
    JxtaPropagate,
    /// The many-to-many "wire" pipe used by the paper's applications.
    JxtaWire,
}

impl PipeType {
    /// The string used in the XML `Type` element.
    pub const fn as_str(self) -> &'static str {
        match self {
            PipeType::JxtaUnicast => "JxtaUnicast",
            PipeType::JxtaPropagate => "JxtaPropagate",
            PipeType::JxtaWire => "JxtaWire",
        }
    }
}

impl fmt::Display for PipeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for PipeType {
    type Err = AdvParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "JxtaUnicast" => Ok(PipeType::JxtaUnicast),
            "JxtaPropagate" => Ok(PipeType::JxtaPropagate),
            "JxtaWire" => Ok(PipeType::JxtaWire),
            other => Err(AdvParseError::new(format!("unknown pipe type {other}"))),
        }
    }
}

/// Advertises a pipe: its id, a human-readable name and its type.
///
/// In the paper's ski-rental application the pipe *name* carries the event
/// type name (`SkiRental`), which is what the TPS advertisement finder
/// searches for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipeAdvertisement {
    /// The pipe's stable identifier.
    pub pipe_id: PipeId,
    /// The human-readable pipe name (searchable through discovery).
    pub name: String,
    /// The pipe type.
    pub pipe_type: PipeType,
}

impl PipeAdvertisement {
    /// Creates a pipe advertisement.
    pub fn new(pipe_id: PipeId, name: impl Into<String>, pipe_type: PipeType) -> Self {
        PipeAdvertisement {
            pipe_id,
            name: name.into(),
            pipe_type,
        }
    }
}

impl Advertisement for PipeAdvertisement {
    const ROOT: &'static str = "jxta:PipeAdvertisement";

    fn kind(&self) -> AdvKind {
        AdvKind::Adv
    }

    fn unique_key(&self) -> String {
        self.pipe_id.to_string()
    }

    fn display_name(&self) -> String {
        self.name.clone()
    }

    fn to_xml(&self) -> XmlElement {
        XmlElement::new(Self::ROOT)
            .text_child("Id", self.pipe_id.to_string())
            .text_child("Type", self.pipe_type.to_string())
            .text_child("Name", self.name.clone())
    }

    fn from_xml(xml: &XmlElement) -> Result<Self, AdvParseError> {
        if xml.name != Self::ROOT {
            return Err(AdvParseError::new(format!("expected {} root", Self::ROOT)));
        }
        let pipe_id = xml
            .child_text("Id")
            .ok_or_else(|| AdvParseError::new("pipe advertisement missing <Id>"))?
            .parse()
            .map_err(|e| AdvParseError::new(format!("bad pipe id: {e}")))?;
        let pipe_type = xml
            .child_text("Type")
            .ok_or_else(|| AdvParseError::new("pipe advertisement missing <Type>"))?
            .parse()?;
        let name = xml.child_text_or_empty("Name").to_owned();
        Ok(PipeAdvertisement {
            pipe_id,
            name,
            pipe_type,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xml_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let adv = PipeAdvertisement::new(PipeId::generate(&mut rng), "SkiRental", PipeType::JxtaWire);
        let xml = adv.to_xml();
        assert_eq!(PipeAdvertisement::from_xml(&xml).unwrap(), adv);
        assert_eq!(adv.display_name(), "SkiRental");
        assert_eq!(adv.kind(), AdvKind::Adv);
    }

    #[test]
    fn parse_rejects_missing_fields() {
        let missing_id = XmlElement::new(PipeAdvertisement::ROOT).text_child("Type", "JxtaWire");
        assert!(PipeAdvertisement::from_xml(&missing_id).is_err());
        let bad_root = XmlElement::new("Nope");
        assert!(PipeAdvertisement::from_xml(&bad_root).is_err());
        let bad_type = XmlElement::new(PipeAdvertisement::ROOT)
            .text_child("Id", PipeId::derive("x").to_string())
            .text_child("Type", "JxtaTelepathy");
        assert!(PipeAdvertisement::from_xml(&bad_type).is_err());
    }

    #[test]
    fn pipe_types_roundtrip_as_strings() {
        for ty in [PipeType::JxtaUnicast, PipeType::JxtaPropagate, PipeType::JxtaWire] {
            assert_eq!(ty.as_str().parse::<PipeType>().unwrap(), ty);
        }
    }
}
